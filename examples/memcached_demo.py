"""Memcached under Orthrus: a cloud cache with asynchronous validation.

Drives the Memcached-style server (Listing 3's data/control split) with a
CacheLib-like skewed workload, first on healthy silicon and then with a
mercurial core whose defect sits in the ``set`` operator's hash
computation — the misplaced-bucket scenario of Listing 2.

Shows the three detection paths:
  * data-path re-execution mismatch (hash fault),
  * request-payload CRC at the data-path boundary (control-path fault),
  * client-side response CRC (response corruption).

Run:  python examples/memcached_demo.py
"""

from repro import Fault, FaultKind, Machine, OrthrusRuntime, Unit
from repro.apps.memcached import MemcachedServer
from repro.machine.instruction import Site
from repro.workloads import CacheLibWorkload


def drive(machine, label, n_ops=400):
    runtime = OrthrusRuntime(
        machine=machine, app_cores=[0], validation_cores=[1], mode="queued"
    )
    server = MemcachedServer(runtime, n_buckets=64)
    workload = CacheLibWorkload(n_keys=200, seed=42)
    for op in workload.ops(n_ops):
        server.handle(op)
    with runtime:
        runtime.drain()  # asynchronous validation catches up
    kinds = {}
    for event in runtime.report.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    print(
        f"{label:>24}: {n_ops} ops, {len(server.items())} keys live, "
        f"validated={runtime.validations}, detections={runtime.detections} {kinds or ''}"
    )
    return runtime


def main():
    print("Memcached-Orthrus demo\n")

    drive(Machine(cores_per_node=4, numa_nodes=1), "healthy fleet")

    hash_faulty = Machine(cores_per_node=4, numa_nodes=1)
    hash_faulty.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=3,
                             site=Site("mc.set", "hash64", 0)))
    drive(hash_faulty, "mercurial set-hash")

    rx_faulty = Machine(cores_per_node=4, numa_nodes=1)
    rx_faulty.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=130,
                           site=Site("mc.control.rx", "copy", 0)))
    drive(rx_faulty, "control-path payload")

    tx_faulty = Machine(cores_per_node=4, numa_nodes=1)
    tx_faulty.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=130,
                           site=Site("mc.control.tx", "copy", 0)))
    drive(tx_faulty, "response corruption")

    print(
        "\nData-path faults surface as re-execution mismatches; control-path\n"
        "payload/response corruption is caught by the CRC carried in each\n"
        "version header (Figure 3)."
    )


if __name__ == "__main__":
    main()
