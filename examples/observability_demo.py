"""The observability layer end to end: metrics, traces, and exporters.

Runs a queued-mode Memcached-style workload twice — once on healthy
silicon, once with a mercurial core — with an :class:`Observability`
handle attached, then shows every view of the run the layer offers:

  * the console summary table of the metrics registry,
  * a per-closure drill-down through the labeled counter families,
  * the structured trace replaying one closure's lifecycle
    (closure.run → queue.push → queue.pop → sampler.decision →
    validator.validate/skip),
  * the Prometheus text exposition and JSON snapshot round trip —
    what ``repro-bench perf --metrics-out`` writes and
    ``repro-bench obs-summary`` reads back.

Run:  python examples/observability_demo.py
"""

from repro import Fault, FaultKind, Machine, Observability, OrthrusRuntime, Unit
from repro.apps.memcached import MemcachedServer
from repro.machine.instruction import Site
from repro.obs import MetricsRegistry, console_summary, to_prometheus
from repro.runtime.sampling import AdaptiveSampler, SamplerConfig
from repro.workloads import CacheLibWorkload


def drive(machine, n_ops=400):
    obs = Observability()  # metrics + trace; omit to run uninstrumented
    runtime = OrthrusRuntime(
        machine=machine,
        app_cores=[0],
        validation_cores=[1],
        mode="queued",
        sampler=AdaptiveSampler(SamplerConfig(), seed=7),
        obs=obs,
    )
    server = MemcachedServer(runtime, n_buckets=64)
    workload = CacheLibWorkload(n_keys=200, seed=42)
    for op in workload.ops(n_ops):
        server.handle(op)
    with runtime:
        runtime.drain()
    return runtime, obs


def show_lifecycle(obs, seq):
    print(f"\ntrace of closure seq={seq}:")
    for event in obs.tracer.for_seq(seq):
        fields = {k: v for k, v in event.fields.items() if k != "seq"}
        print(f"  t={event.ts:<3g} {event.kind:<18} {fields}")


def main():
    print("Orthrus observability demo\n")

    healthy = Machine(cores_per_node=4, numa_nodes=1)
    runtime, obs = drive(healthy)

    print("== console summary (healthy run) ==")
    print(console_summary(obs.registry))

    print("== per-closure drill-down ==")
    for labels, counter in sorted(
        obs.registry.series("orthrus_validations_total"),
        key=lambda pair: pair[0]["closure"],
    ):
        print(f"  {labels['closure']:<10} validated {int(counter.value)} times")

    show_lifecycle(obs, seq=1)

    print("\n== prometheus text (first lines) ==")
    for line in to_prometheus(obs.registry).splitlines()[:8]:
        print(f"  {line}")

    # The JSON snapshot is what --metrics-out writes; it round-trips.
    snapshot = obs.registry.snapshot()
    restored = MetricsRegistry.from_snapshot(snapshot)
    assert restored.value("orthrus_validations_total") == obs.registry.value(
        "orthrus_validations_total"
    )
    print("\nsnapshot round trip OK "
          f"({int(restored.value('orthrus_validations_total'))} validations)")

    faulty = Machine(cores_per_node=4, numa_nodes=1)
    faulty.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=3,
                        site=Site("mc.set", "hash64", 0)))
    runtime, obs = drive(faulty)
    detections = obs.registry.series("orthrus_detections_total")
    print("\n== mercurial-core run ==")
    print(f"detections: {int(runtime.detections)}")
    for labels, counter in detections:
        print(f"  kind={labels['kind']:<10} closure={labels['closure']:<10} "
              f"count={int(counter.value)}")


if __name__ == "__main__":
    main()
