"""Phoenix word count under Orthrus (the paper's batch workload).

Runs the MapReduce word-count job over a synthetic Zipfian corpus, verifies
the result against the ground truth, then repeats with a mercurial core
whose floating-point unit corrupts the per-chunk statistics — the fp error
class that dominates batch-processing SDCs (Table 2).

Run:  python examples/mapreduce_wordcount.py
"""

from repro import Fault, FaultKind, Machine, OrthrusRuntime, Unit
from repro.apps.phoenix import WordCountJob
from repro.workloads import WordCountCorpus


def run_job(machine, corpus, label):
    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    job = WordCountJob(runtime, n_partitions=8)
    result = job.run(corpus.chunks())
    correct = result == corpus.reference_counts()
    print(
        f"{label:>16}: {corpus.n_words} words, {len(result)} distinct | "
        f"correct={correct} validated={runtime.validations} "
        f"detections={runtime.detections}"
    )
    return runtime, result


def main():
    print("Phoenix word count under Orthrus\n")
    corpus = WordCountCorpus(
        n_words=20_000, vocabulary_size=400, words_per_chunk=1000, seed=7
    )

    run_job(Machine(cores_per_node=4, numa_nodes=1), corpus, "healthy")

    mercurial = Machine(cores_per_node=4, numa_nodes=1)
    mercurial.arm(0, Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=51))
    runtime, _ = run_job(mercurial, corpus, "mercurial fpu")

    assert runtime.detections > 0
    sample = runtime.report.first
    print(f"\nfirst detection: {sample.kind} in {sample.closure}: {sample.detail}")
    print(
        "Each map/reduce task is one closure; re-executing it on a healthy\n"
        "core exposes the fp corruption in the task's output container."
    )


if __name__ == "__main__":
    main()
