"""The response layer end to end: detect → arbitrate → quarantine → repair.

Runs one full incident episode on a Memcached-style workload: core 0 is
armed with a persistent SIMD bitflip mid-workload, the inline validators
catch the divergences, a third core arbitrates each mismatch, the
mercurial core is quarantined, the blast radius is walked, and every
poisoned version is replayed on healthy silicon — ending with the heap
byte-identical to a fault-free reference run.

The episode's terminal artifact is the :class:`IncidentReport`: the demo
prints its summary, replays the incident timeline, then disarms the
fault and walks the quarantined core through probation back into
service.  Finally the report round-trips through JSON — what
``repro-bench respond --json`` writes for off-box shipping.

Run:  python examples/incident_response_demo.py
"""

from repro.harness.incident import IncidentConfig, run_incident, value_fault
from repro.harness.scenarios import memcached_scenario
from repro.response import IncidentReport, ResponseConfig


def main():
    print("Orthrus incident response demo\n")

    result = run_incident(
        memcached_scenario(n_keys=40),
        IncidentConfig(
            n_ops=120,
            fault=value_fault("mc.set"),
            faulty_core=0,
            arm_after=10,
            response=ResponseConfig(),
            probation=True,  # disarm after repair and probe the core back in
        ),
    )
    report = result.report

    print("== incident report ==")
    for line in report.summary_lines():
        print(f"  {line}")

    print("\n== timeline ==")
    for entry in report.timeline:
        print(f"  t={entry.time:<8g} {entry.kind:<20} {entry.detail}")

    print("\n== scoring against ground truth ==")
    print(f"  injected core      : {result.injected_core}")
    print(f"  attribution        : "
          f"{'correct' if result.attribution_correct else 'WRONG'}")
    print(f"  repair fidelity    : "
          f"{'byte-identical' if result.repaired else 'DIVERGED'} "
          f"(digest {result.final_digest:#x})")
    print(f"  readmitted cores   : {result.readmitted or 'none'}")
    print(f"  core 0 state       : "
          f"{result.coordinator.quarantine.state(0)}")

    # The report ships off-box as JSON and round-trips losslessly.
    restored = IncidentReport.from_json(report.to_json(indent=2))
    assert restored.to_dict() == report.to_dict()
    print(f"\nJSON round trip OK ({len(report.to_json())} bytes, "
          f"{len(report.timeline)} timeline entries)")


if __name__ == "__main__":
    main()
