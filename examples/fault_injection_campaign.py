"""A miniature fault-injection campaign (Appendix A end-to-end).

Profiles the Memcached scenario, plants mercurial faults across functional
units at the Alibaba 1:2:2:1 ratio, classifies every trial (fail-stop /
masked / SDC), and prints a small Table-2-style coverage report comparing
Orthrus against replication-based validation.

Run:  python examples/fault_injection_campaign.py
"""

from repro.faultinject import FaultInjectionCampaign, InjectionConfig
from repro.harness import PipelineConfig, memcached_scenario
from repro.machine.units import Unit


def main():
    print("Mini fault-injection campaign: Memcached, 32 faults\n")
    campaign = FaultInjectionCampaign(
        memcached_scenario(n_keys=80),
        workload_size=400,
        injection=InjectionConfig(n_faults=32, seed=2025, trigger_rate=1.0),
        make_pipeline=lambda: PipelineConfig(
            app_threads=2, validation_cores=2, seed=11, drain_grace_fraction=1.0
        ),
    )
    result = campaign.run()

    print(f"profiled instruction sites : {len(result.profiled_sites)}")
    outcomes = result.outcome_counts()
    print(
        "trial outcomes            : "
        + ", ".join(f"{kind.value}={count}" for kind, count in outcomes.items())
    )

    print("\nper-unit coverage (Table 2 shape):")
    print(f"{'unit':<8} {'SDCs':>5} {'RBV':>12} {'Orthrus':>12}")
    for unit in (Unit.ALU, Unit.FPU, Unit.SIMD, Unit.CACHE):
        row = result.coverage_table()[unit]
        if row.total_sdcs == 0:
            print(f"{unit.value:<8} {0:>5} {'-':>12} {'-':>12}")
            continue
        print(
            f"{unit.value:<8} {row.total_sdcs:>5} "
            f"{row.rbv_detected if row.rbv_detected is not None else '-':>9} "
            f"({row.rbv_rate:.0%}) "
            f"{row.orthrus_detected:>6} ({row.orthrus_rate:.0%})"
        )

    missed = [t for t in result.sdc_trials if not t.orthrus_detected]
    if missed:
        print("\nOrthrus misses (the §2.3 blind spots):")
        for trial in missed:
            print(f"  {trial.fault.site} [{trial.fault.kind.value}]")
    print(f"\noverall Orthrus detection rate: {result.detection_rate:.0%}")


if __name__ == "__main__":
    main()
