"""Quickstart: protect a tiny data operator with Orthrus.

Builds the smallest possible Orthrus-protected application — a bank
balance store (the paper's motivating example: a deflated balance returned
to a client is a catastrophic SDC) — then arms a mercurial core and shows
the corruption being caught by re-execution on a healthy core.

Run:  python examples/quickstart.py
"""

from repro import (
    Fault,
    FaultKind,
    Machine,
    OrthrusRuntime,
    Unit,
    closure,
    ops,
)


@closure(name="bank.deposit")
def deposit(account, amount):
    """A data operator: the only code allowed to touch the balance."""
    balance = account.load()
    account.store(ops().alu.add(balance, amount))


@closure(name="bank.balance")
def balance_of(account):
    """The externalizing operator — its result goes back to the client."""
    return account.load()


def run(machine, label):
    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    with runtime:
        account = runtime.new(1_000)
        for _ in range(10):
            deposit(account, 100)
        final = balance_of(account)
    print(f"{label:>16}: balance={final}  detections={runtime.detections}")
    for event in runtime.report.events[:3]:
        print(f"{'':>16}  -> {event.kind}: {event.detail} (in {event.closure})")
    return runtime


def main():
    print("Orthrus quickstart: deposits on a healthy vs a mercurial core\n")

    healthy = Machine(cores_per_node=4, numa_nodes=1)
    run(healthy, "healthy core")

    # Arm a persistent single-bit defect in the ALU of core 0 — the core
    # the application runs on.  Every deposit silently inflates/deflates
    # the balance; validation re-executes each deposit on core 1 and
    # catches the divergence immediately.
    mercurial = Machine(cores_per_node=4, numa_nodes=1)
    mercurial.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=7))
    runtime = run(mercurial, "mercurial core")

    assert runtime.detections > 0, "the corruption should have been caught"
    print("\nEvery corrupted deposit was flagged before the balance was trusted.")


if __name__ == "__main__":
    main()
