"""Offline fleet testing vs online validation: the timeliness argument.

Cloud providers scan their fleets with known-answer batteries every few
weeks (§5).  This example arms a mercurial core whose defect is pinned to
an *application* instruction site, then shows:

  1. the offline battery scans the fleet clean — the defect never fires on
     the battery's own instruction sites;
  2. the application silently corrupts user data on every request batch;
  3. Orthrus flags the corruption within the same batch.

Run:  python examples/offline_vs_online.py
"""

from repro import Fault, FaultKind, Machine, OrthrusRuntime, Unit
from repro.apps.memcached import MemcachedServer
from repro.baselines.offline import OfflineCpuCheck
from repro.machine.instruction import Site
from repro.workloads import CacheLibWorkload


def main():
    machine = Machine(cores_per_node=4, numa_nodes=1)
    machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=2,
                         site=Site("mc.set", "hash64", 0)))

    checker = OfflineCpuCheck(machine)
    scan = checker.scan()
    print(f"offline cpu-check scan : {'CLEAN' if scan.clean else scan.failures}")
    assert scan.clean, "the app-site defect is invisible to the battery"

    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    server = MemcachedServer(runtime, n_buckets=64)
    workload = CacheLibWorkload(n_keys=100, seed=3)
    first_detection_at = None
    for index, op in enumerate(workload.ops(300)):
        server.handle(op)
        if first_detection_at is None and runtime.detections:
            first_detection_at = index
    print(f"orthrus detections      : {runtime.detections}")
    print(f"first detection at op   : {first_detection_at}")
    assert runtime.detections > 0

    print(
        "\nThe battery exercises its own code, so a defect correlated with an\n"
        "application instruction site stays invisible until the next outage —\n"
        "while online validation catches it within the serving window."
    )


if __name__ == "__main__":
    main()
