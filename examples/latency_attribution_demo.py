"""Detection-latency attribution: where does the detection budget go?

Runs the same Memcached-style workload twice with causal span tracing
attached — once on a healthy validation plane, once with every
validator slowed down 6x behind a small bounded queue — and folds the
spans into per-stage latency waterfalls:

  closure.run -> queue.wait -> dispatch -> validate -> verdict

The healthy run shows validation dominating the budget; the overloaded
run shows queue.wait swallowing it instead, with the degradation
ladder's level labels visible in the per-level breakdown. Each run's
per-chain stage sums are reconciled against the end-to-end detection
latency, the same invariant ``repro-bench latency-attrib`` checks.

Run:  python examples/latency_attribution_demo.py
"""

from repro.faultinject.validator_faults import ValidatorChaosConfig
from repro.harness.chaos import run_chaos_server
from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.obs import Observability
from repro.obs.latency import attribute, format_seconds, render_waterfall
from repro.runtime.degradation import FaultToleranceConfig

N_OPS = 500


def healthy_run():
    obs = Observability()
    config = PipelineConfig(
        app_threads=2, validation_cores=2, seed=7, obs=obs,
    )
    result = run_orthrus_server(memcached_scenario(), N_OPS, config)
    return result, obs


def overloaded_run():
    # Four producer threads feed one validator that is also slowed 6x,
    # behind a queue small enough that backpressure and the degradation
    # ladder both engage. The spans make the resulting queue-wait bulge
    # and the ladder's response directly measurable.
    obs = Observability()
    config = PipelineConfig(
        app_threads=4, validation_cores=1, seed=7, obs=obs,
        validator_faults=ValidatorChaosConfig(
            specs=(("slowdown", 1),), slowdown_factor=6.0,
        ),
        fault_tolerance=FaultToleranceConfig(queue_capacity=16),
    )
    result = run_chaos_server(memcached_scenario(), N_OPS, config)
    return result, obs


def report(title, result, obs):
    attrib = attribute(obs.spans)
    recon = attrib.reconciliation()
    e2e = attrib.end_to_end()
    print(f"== {title} ==")
    print(f"chains: {attrib.chain_count}  "
          f"end-to-end p50 {format_seconds(e2e.p50)}  "
          f"p95 {format_seconds(e2e.p95)}  "
          f"max {format_seconds(e2e.max)}")
    print(f"reconciliation: max residual "
          f"{format_seconds(recon['max_residual'])} "
          f"({'reconciled' if recon['reconciled'] else 'NOT RECONCILED'})")
    print(render_waterfall(attrib.stages()))
    return attrib


def main():
    print("Orthrus latency attribution demo\n")

    result, obs = healthy_run()
    healthy = report("healthy plane (2 validators, no faults)", result, obs)

    print()
    result, obs = overloaded_run()
    overloaded = report(
        "overloaded plane (1 validator, 6x slowdown, queue capacity 16)",
        result, obs,
    )

    print("per-degradation-level breakdown (overloaded run, validate stage):")
    for level, stages in sorted(overloaded.by_level().items()):
        validate = stages.get("validate")
        if validate is None:
            continue
        print(f"  {level:<14} {validate.count:>5} validations  "
              f"p95 {format_seconds(validate.p95)}")
    transitions = result.ft.degradation["transitions"]
    if transitions:
        print("degradation transitions:")
        for t in transitions[:6]:
            print(f"  t={format_seconds(t['time'])}  "
                  f"{t['from']} -> {t['to']}  ({t['reason']})")

    def stage_p95(attrib, name):
        stats = attrib.stages().get(name)
        return stats.p95 if stats is not None else 0.0

    before = stage_p95(healthy, "queue.wait")
    after = stage_p95(overloaded, "queue.wait")
    print(f"\nqueue.wait p95: {format_seconds(before)} healthy -> "
          f"{format_seconds(after)} overloaded")
    assert after > before, "overload should inflate queue wait"


if __name__ == "__main__":
    main()
