"""User-data classes and custom result comparison.

Shows the two annotation surfaces of §3.1 together:

* ``@user_data`` marks the classes whose instances belong in versioned
  memory (Listing 5's ``#pragma user-data``); they gain a canonical
  payload used by checksums and bitwise comparison;
* ``@closure(compare=...)`` overrides the output comparison — the paper's
  ``==`` overload on the output pointer — here used for an operator whose
  result is an order-insensitive set of matches.

Run:  python examples/custom_user_data.py
"""

from dataclasses import dataclass

from repro import (
    Fault,
    FaultKind,
    Machine,
    OrthrusRuntime,
    Unit,
    closure,
    ops,
    orthrus_new,
    user_data,
)


@user_data
@dataclass
class StockRecord:
    """A warehouse row: annotated user data (lives in versioned memory)."""

    sku: str
    quantity: int
    unit_price_cents: int


@closure(name="inventory.restock")
def restock(record_ptr, amount):
    record = record_ptr.load()
    new_quantity = ops().alu.add(record.quantity, amount)
    record_ptr.store(
        StockRecord(record.sku, new_quantity, record.unit_price_cents)
    )
    return new_quantity


def unordered_equal(a, b):
    """Custom comparison: match results as multisets, not sequences."""
    try:
        return sorted(a) == sorted(b)
    except TypeError:
        return a == b


@closure(name="inventory.low_stock", compare=unordered_equal)
def low_stock(record_ptrs, threshold):
    """Report SKUs below the threshold (order not meaningful)."""
    hits = []
    for ptr in record_ptrs:
        record = ptr.load()
        if ops().alu.lt(record.quantity, threshold):
            hits.append(record.sku)
    return hits


def main():
    machine = Machine(cores_per_node=4, numa_nodes=1)
    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    with runtime:
        records = [
            runtime.new(StockRecord(f"sku-{i:03d}", quantity=i * 3, unit_price_cents=199))
            for i in range(8)
        ]
        restock(records[0], 5)
        report = low_stock(records, threshold=10)
    print(f"low-stock report: {report}")
    print(f"validations={runtime.validations} detections={runtime.detections}")
    assert runtime.detections == 0

    # Same program on a mercurial core: the restock arithmetic corrupts the
    # stored StockRecord payload and the re-execution flags it.
    machine = Machine(cores_per_node=4, numa_nodes=1)
    machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=5))
    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    with runtime:
        record = runtime.new(StockRecord("sku-007", 10, 199))
        restock(record, 4)
    print(f"\nmercurial run: detections={runtime.detections}")
    print(f"corrupted record: {record.load()}")
    assert runtime.detections > 0


if __name__ == "__main__":
    main()
