"""Ablation A5 — NUMA-aware validator placement (§3.5 "Scheduling Policy").

Orthrus co-locates validation with the application on the same socket so
closure logs are consumed out of the shared L3 within microseconds.  This
ablation runs the same Memcached workload twice with identical core counts
but different topology: validators on the application's socket vs across
the interconnect.

Paper-expected shape: same-node placement yields lower validation latency;
functional results are placement-independent.
"""

from conftest import print_table, scaled

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.machine.cpu import Machine


def test_ablation_numa_placement(benchmark):
    n_ops = scaled(2500)

    def run_pair():
        # Same socket: 4-core nodes put apps (cores 0-1) and validators
        # (cores 2-3) on node 0.
        same = PipelineConfig(app_threads=2, validation_cores=2, seed=1)
        same.machine = Machine(cores_per_node=4, numa_nodes=2, seed=1)
        same_result = run_orthrus_server(memcached_scenario(), n_ops, same)

        # Cross socket: 2-core nodes put the same validator core ids (2-3)
        # on node 1, behind the interconnect.
        cross = PipelineConfig(app_threads=2, validation_cores=2, seed=1)
        cross.machine = Machine(cores_per_node=2, numa_nodes=2, seed=1)
        cross_result = run_orthrus_server(memcached_scenario(), n_ops, cross)
        return same_result, cross_result

    same, cross = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    print_table(
        "Ablation A5: NUMA placement of validation cores",
        ["Placement", "Validation latency mean", "p95"],
        [
            [
                "same socket",
                f"{same.metrics.validation_latency.mean * 1e6:.2f} us",
                f"{same.metrics.validation_latency.p95 * 1e6:.2f} us",
            ],
            [
                "cross socket",
                f"{cross.metrics.validation_latency.mean * 1e6:.2f} us",
                f"{cross.metrics.validation_latency.p95 * 1e6:.2f} us",
            ],
        ],
    )
    assert (
        cross.metrics.validation_latency.mean
        > same.metrics.validation_latency.mean
    )
    # Functional results are placement-independent.
    assert same.responses == cross.responses
    assert same.detections == cross.detections == 0
