"""Shared benchmark utilities.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints the corresponding rows (paper-expected shape in the
header comment of each file).  Workload sizes scale with the
``REPRO_BENCH_SCALE`` environment variable (default 1.0); raise it for
tighter statistics, lower it for a faster smoke pass.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(value * bench_scale()))


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Render a paper-style results table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def pct(value: float) -> str:
    return f"{100 * value:.1f}%"
