"""Figure 6 — application performance: vanilla vs Orthrus vs RBV.

Paper-expected shape:
* Orthrus time overhead ~2–6% on every app (Memcached 4.4%, Phoenix <2%,
  Masstree comparable to vanilla, LSMTree 5%);
* RBV roughly 2× slower than vanilla (Memcached-Orthrus 1.6× over RBV,
  Phoenix 1.5×, Masstree 2.9×, LSMTree RBV 54% behind Orthrus);
* memory overheads (§4.2): Orthrus ~25% average (Memcached 29%,
  Masstree 35%, LSMTree 34%, Phoenix 2.6%); RBV ~2.1×.
"""

import pytest
from conftest import pct, print_table, scaled

from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)
from repro.sim.metrics import slowdown


def _config():
    return PipelineConfig(app_threads=2, validation_cores=2, seed=1)


def run_server_triple(scenario, n_ops):
    return (
        run_vanilla_server(scenario, n_ops, _config()),
        run_orthrus_server(scenario, n_ops, _config()),
        run_rbv_server(scenario, n_ops, _config()),
    )


def test_fig6_application_performance(benchmark):
    n_ops = scaled(2500)
    n_words = scaled(40000)

    def run_all():
        results = {}
        for scenario in (memcached_scenario(), masstree_scenario(), lsmtree_scenario()):
            results[scenario.name] = run_server_triple(scenario, n_ops)
        phx = phoenix_scenario()
        cfg = lambda: PipelineConfig(app_threads=4, validation_cores=2, seed=1)
        results["phoenix"] = (
            run_phoenix(phx, n_words, cfg(), variant="vanilla"),
            run_phoenix(phx, n_words, cfg(), variant="orthrus"),
            run_phoenix(phx, n_words, cfg(), variant="rbv"),
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (vanilla, orthrus, rbv) in results.items():
        if name == "phoenix":
            base = vanilla.metrics.duration
            orthrus_over = orthrus.metrics.duration / base - 1
            rbv_over = rbv.metrics.duration / base - 1
            metric = f"{base * 1e3:.2f} ms job"
        else:
            orthrus_over = slowdown(
                vanilla.metrics.throughput, orthrus.metrics.throughput
            )
            rbv_over = slowdown(vanilla.metrics.throughput, rbv.metrics.throughput)
            metric = f"{vanilla.metrics.throughput / 1e3:.0f} kop/s vanilla"
        rows.append(
            [
                name,
                metric,
                pct(orthrus_over),
                pct(rbv_over),
                pct(orthrus.metrics.memory_overhead),
            ]
        )
    print_table(
        "Figure 6: application performance (+ §4.2 memory overheads)",
        ["App", "Vanilla baseline", "Orthrus overhead", "RBV overhead", "Orthrus mem ovh"],
        rows,
    )

    for name, (vanilla, orthrus, rbv) in results.items():
        if name == "phoenix":
            orthrus_over = orthrus.metrics.duration / vanilla.metrics.duration - 1
            rbv_over = rbv.metrics.duration / vanilla.metrics.duration - 1
        else:
            orthrus_over = slowdown(vanilla.metrics.throughput, orthrus.metrics.throughput)
            rbv_over = slowdown(vanilla.metrics.throughput, rbv.metrics.throughput)
        # Shape assertions: Orthrus in the paper's 2-6% band (we allow up
        # to 15% for the write-stress LSMTree), RBV far behind.
        assert orthrus_over == pytest.approx(0.04, abs=0.11), name
        assert rbv_over > 0.4, name
        assert rbv_over > orthrus_over * 4, name
