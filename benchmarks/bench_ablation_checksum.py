"""Ablation A1 — checksum cost (§4.2 "Impact of Checksum").

Paper-expected shape: control-path CRC generation + verification costs
under 1% of execution time (a few dozen cycles per object on SSE4.2-class
hardware) while being the only mechanism that catches control-path payload
corruption.
"""

import dataclasses

from conftest import pct, print_table, scaled

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.metrics import slowdown


def test_ablation_checksum_cost(benchmark):
    n_ops = scaled(3000)
    scenario = memcached_scenario()

    def run_pair():
        with_crc = run_orthrus_server(
            scenario, n_ops, PipelineConfig(seed=1, costs=DEFAULT_COSTS)
        )
        without_crc = run_orthrus_server(
            scenario, n_ops,
            PipelineConfig(seed=1, costs=DEFAULT_COSTS.without_checksums()),
        )
        return with_crc, without_crc

    with_crc, without_crc = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    cost = slowdown(without_crc.metrics.throughput, with_crc.metrics.throughput)
    print_table(
        "Ablation A1: checksum cost",
        ["Config", "Throughput (kop/s)"],
        [
            ["with CRC-16", f"{with_crc.metrics.throughput / 1e3:.0f}"],
            ["without", f"{without_crc.metrics.throughput / 1e3:.0f}"],
            ["overhead", pct(cost)],
        ],
    )
    assert cost < 0.02  # paper: <1%


def test_ablation_checksum_is_load_bearing():
    """Without the CRC probe, control-path payload corruption is silent."""
    scenario = memcached_scenario(n_keys=60)
    fault = Fault(
        unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=120,
        site=Site("mc.control.rx", "copy", 0),
    )
    config = PipelineConfig(seed=2)
    config.deferred_faults = ((0, fault),)
    protected = run_orthrus_server(scenario, scaled(600), config)
    assert protected.runtime.report.count("checksum") > 0
