"""Figure 7 — 95th-percentile latency of the latency-critical apps.

Paper-expected shape: Orthrus p95 is close to vanilla, while RBV's tails
blow up by orders of magnitude (up to 1000× for Memcached) because of
replication queueing/backpressure stalls.
"""

from conftest import print_table, scaled

from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
)


def test_fig7_p95_latency(benchmark):
    n_ops = scaled(4000)

    def run_all():
        results = {}
        for scenario in (memcached_scenario(), masstree_scenario(), lsmtree_scenario()):
            cfg = lambda: PipelineConfig(app_threads=2, validation_cores=2, seed=1)
            results[scenario.name] = (
                run_vanilla_server(scenario, n_ops, cfg()),
                run_orthrus_server(scenario, n_ops, cfg()),
                run_rbv_server(scenario, n_ops, cfg()),
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (vanilla, orthrus, rbv) in results.items():
        rows.append(
            [
                name,
                f"{vanilla.metrics.request_latency.p95 * 1e6:.2f} us",
                f"{orthrus.metrics.request_latency.p95 * 1e6:.2f} us",
                f"{rbv.metrics.request_latency.p95 * 1e6:.2f} us",
                f"{rbv.metrics.request_latency.max * 1e6:.1f} us",
            ]
        )
    print_table(
        "Figure 7: p95 request latency",
        ["App", "Vanilla p95", "Orthrus p95", "RBV p95", "RBV max"],
        rows,
    )

    for name, (vanilla, orthrus, rbv) in results.items():
        v95 = vanilla.metrics.request_latency.p95
        o95 = orthrus.metrics.request_latency.p95
        r95 = rbv.metrics.request_latency.p95
        assert o95 < v95 * 2, name        # Orthrus stays near vanilla
        assert r95 > o95, name            # RBV tails are worse
        # RBV's worst-case stalls dwarf Orthrus's worst case.
        assert rbv.metrics.request_latency.max > 5 * orthrus.metrics.request_latency.max, name
