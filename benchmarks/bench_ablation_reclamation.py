"""Ablation A3 — window-based memory reclamation (§3.6).

Paper-expected shape: reclamation keeps Orthrus's memory overhead bounded
(~20-35%) at negligible time cost; without it, stale versions accumulate
linearly on write-heavy workloads.
"""

import math

from conftest import pct, print_table, scaled

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import lsmtree_scenario
from repro.memory.heap import VersionedHeap
from repro.memory.reclaim import ReclamationManager
from repro.sim.metrics import slowdown


def test_ablation_reclamation(benchmark):
    """Write-stress LSMTree with prompt vs disabled reclamation."""
    n_ops = scaled(1500)
    scenario = lsmtree_scenario()

    def run_pair():
        with_gc = run_orthrus_server(
            scenario, n_ops, PipelineConfig(seed=1, reclaim_batch=16)
        )
        no_gc = run_orthrus_server(
            scenario, n_ops, PipelineConfig(seed=1, reclaim_batch=10**9)
        )
        return with_gc, no_gc

    with_gc, no_gc = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    time_cost = slowdown(
        no_gc.metrics.throughput, with_gc.metrics.throughput
    )
    print_table(
        "Ablation A3: memory reclamation (LSMTree, 100% random writes)",
        ["Config", "Peak memory overhead", "Versions reclaimed", "GC time cost"],
        [
            [
                "window GC on",
                pct(with_gc.metrics.memory_overhead),
                with_gc.runtime.heap.versions_reclaimed,
                pct(max(0.0, time_cost)),
            ],
            [
                "GC off",
                pct(no_gc.metrics.memory_overhead),
                no_gc.runtime.heap.versions_reclaimed,
                "-",
            ],
        ],
    )

    assert with_gc.runtime.heap.versions_reclaimed > 0
    assert no_gc.runtime.heap.versions_reclaimed == 0
    # GC bounds the footprint; without it stale versions pile up.
    assert with_gc.metrics.memory_overhead < no_gc.metrics.memory_overhead
    # ...at negligible time cost (§3.6).
    assert abs(time_cost) < 0.02
    # Functional results are identical either way.
    assert with_gc.responses == no_gc.responses


def test_reclamation_is_watermark_safe():
    """Versions inside any open active window are never reclaimed."""
    heap = VersionedHeap()
    gc = ReclamationManager(heap, batch_size=1)
    obj = heap.allocate("v0")
    pinned = heap.latest(obj)
    gc.closure_started(1, pinned.created_at)  # closure may reference v0
    for value in range(20):
        heap.store(obj, f"v{value}")
        gc.closure_started(2 + value, heap.latest(obj).created_at)
        gc.closure_finished(2 + value)
    assert not pinned.reclaimed  # closure 1 still open
    gc.closure_finished(1)
    gc.reclaim_now()
    assert pinned.reclaimed
    assert heap.reclaim_before(math.inf) == 0  # nothing else is stale
