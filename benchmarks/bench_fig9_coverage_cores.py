"""Figure 9 — SDC detection rate vs validation cores (1/2/4).

Paper-expected shape:

* detection rises with validation cores (average ≈87% → 91% → 96%);
* Memcached stays ~flat — a fraction of a core already validates its
  (cheap) closures;
* Phoenix drops steepest at 1 core (many workers, expensive comparisons);
* adaptive sampling beats unguided random sampling (paper: 1.41× at one
  core), driven by the staleness guarantee and the fp/vector priority.

The injected mercurial defects use a sub-unity trigger rate (errors recur
"at a certain frequency" [44]), so each SDC trial manifests in a sparse
subset of executions — the regime where sampling choices matter.
"""

import functools

from conftest import print_table, scaled

from repro.faultinject.campaign import FaultInjectionCampaign
from repro.faultinject.classify import overall_detection_rate
from repro.faultinject.config import InjectionConfig
from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import PipelineConfig
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)
from repro.runtime.sampling import AdaptiveSampler, RandomSampler, SamplerConfig

APPS = [
    ("memcached", lambda: memcached_scenario(n_keys=100), 1200, None, 4),
    ("masstree", lambda: masstree_scenario(n_keys=100), 800, None, 4),
    ("lsmtree", lambda: lsmtree_scenario(n_keys=100), 800, None, 4),
    (
        "phoenix",
        lambda: phoenix_scenario(words_per_chunk=60, vocabulary_size=80),
        6000,
        functools.partial(run_phoenix, variant="orthrus"),
        8,
    ),
]

CORES = (1, 2, 4)


def _sampler_config():
    # Thresholds scaled to the harness's microsecond-scale virtual runs.
    return SamplerConfig(
        delay_threshold=2e-6, staleness_threshold=10e-6, min_rate=0.05
    )


def run_campaign(make_scenario, size, runner, threads, cores, sampler_cls, n_faults):
    kwargs = {"runner": runner} if runner is not None else {}
    campaign = FaultInjectionCampaign(
        make_scenario(),
        workload_size=size,
        injection=InjectionConfig(n_faults=n_faults, seed=3, trigger_rate=0.6),
        make_pipeline=lambda: PipelineConfig(
            app_threads=threads,
            validation_cores=cores,
            seed=5,
            drain_grace_fraction=0.5,
            sampler_factory=lambda seed: sampler_cls(_sampler_config(), seed=seed),
        ),
        rbv_runner=None,
        **kwargs,
    )
    return campaign.run()


def test_fig9_detection_vs_cores(benchmark):
    n_faults = scaled(40, minimum=16)

    def run_grid():
        grid = {}
        for name, make_scenario, size, runner, threads in APPS:
            for cores in CORES:
                for sampler_cls in (AdaptiveSampler, RandomSampler):
                    key = (name, cores, sampler_cls.__name__)
                    grid[key] = run_campaign(
                        make_scenario, size, runner, threads, cores, sampler_cls,
                        n_faults,
                    )
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for name, *_ in APPS:
        for cores in CORES:
            adaptive = grid[(name, cores, "AdaptiveSampler")]
            rand = grid[(name, cores, "RandomSampler")]
            rows.append(
                [
                    name,
                    cores,
                    f"{adaptive.detection_rate:.0%} ({len(adaptive.sdc_trials)} SDCs)",
                    f"{rand.detection_rate:.0%} ({len(rand.sdc_trials)} SDCs)",
                ]
            )
    print_table(
        "Figure 9: SDC detection rate vs validation cores",
        ["App", "Cores", "Orthrus (adaptive)", "Random sampling"],
        rows,
    )

    def average(cores, sampler):
        trials = [
            t
            for name, *_ in APPS
            for t in grid[(name, cores, sampler)].trials
        ]
        return overall_detection_rate(trials)

    averages = {c: average(c, "AdaptiveSampler") for c in CORES}
    random_avg = average(1, "RandomSampler")
    print(
        "average adaptive detection: "
        + ", ".join(f"{c} core(s) = {averages[c]:.1%}" for c in CORES)
        + f"; random @1 core = {random_avg:.1%}"
    )

    # Shape: detection grows with cores; adaptive >= random at 1 core;
    # memcached flat; values in the paper's neighbourhood.  Tolerances
    # reflect the per-cell SDC sample sizes (tens of trials).
    assert averages[1] <= averages[2] + 0.08
    assert averages[2] <= averages[4] + 0.08
    assert averages[4] > 0.80
    assert averages[1] >= random_avg - 0.02
    mc_1 = grid[("memcached", 1, "AdaptiveSampler")].detection_rate
    mc_4 = grid[("memcached", 4, "AdaptiveSampler")].detection_rate
    assert abs(mc_1 - mc_4) < 0.15  # memcached ~unchanged (paper §4.4)
