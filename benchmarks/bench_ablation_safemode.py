"""Ablation A2 — strict safe mode (§3.5 "Safe Mode").

Safe mode withholds externalizing results (Memcached GETs) until their
closure is validated.  Paper-expected shape: a modest cost — only the
externalizing subset waits, and validation takes a few microseconds — the
paper bounds it under 2% of total execution time.
"""

from conftest import pct, print_table, scaled

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.sim.metrics import slowdown


def test_ablation_safe_mode_cost(benchmark):
    n_ops = scaled(3000)
    scenario = memcached_scenario()

    def run_pair():
        # One application thread: safe-mode waits shift virtual time, and
        # with several threads that would legitimately reorder the
        # interleaving — a single thread keeps the two runs comparable
        # request-for-request.
        relaxed = run_orthrus_server(
            scenario, n_ops, PipelineConfig(app_threads=1, seed=1)
        )
        strict = run_orthrus_server(
            scenario, n_ops, PipelineConfig(app_threads=1, safe_mode=True, seed=1)
        )
        return relaxed, strict

    relaxed, strict = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    cost = slowdown(relaxed.metrics.throughput, strict.metrics.throughput)
    print_table(
        "Ablation A2: strict safe mode",
        ["Config", "Throughput (kop/s)", "p95 latency (us)"],
        [
            [
                "default (async)",
                f"{relaxed.metrics.throughput / 1e3:.0f}",
                f"{relaxed.metrics.request_latency.p95 * 1e6:.2f}",
            ],
            [
                "strict safe mode",
                f"{strict.metrics.throughput / 1e3:.0f}",
                f"{strict.metrics.request_latency.p95 * 1e6:.2f}",
            ],
            ["cost", pct(cost), ""],
        ],
    )
    # Results identical; cost modest.  The paper bounds safe mode under 2%
    # because validation overlaps the response's network flight back to the
    # client; our closed-loop client holds a single outstanding request, so
    # the full validation wait lands on the critical path — the measured
    # cost is therefore an upper bound (see EXPERIMENTS.md).
    assert strict.responses == relaxed.responses
    assert cost < 0.45
