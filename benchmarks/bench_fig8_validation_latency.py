"""Figure 8 — closure validation latency distribution.

Paper-expected shape: Orthrus's validation latency (closure completion →
validation completion) is two to three orders of magnitude below RBV's on
the latency-critical apps (Memcached 1.6µs vs 90µs; Masstree 21× lower;
LSMTree 8× lower; Phoenix orders lower thanks to shared-memory logs).
"""

from conftest import print_table, scaled

from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
)
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)


def test_fig8_validation_latency(benchmark):
    n_ops = scaled(3000)
    n_words = scaled(30000)

    def run_all():
        results = {}
        for scenario in (memcached_scenario(), masstree_scenario(), lsmtree_scenario()):
            cfg = lambda: PipelineConfig(app_threads=2, validation_cores=2, seed=1)
            results[scenario.name] = (
                run_orthrus_server(scenario, n_ops, cfg()),
                run_rbv_server(scenario, n_ops, cfg()),
            )
        phx = phoenix_scenario()
        cfg = lambda: PipelineConfig(app_threads=4, validation_cores=2, seed=1)
        results["phoenix"] = (
            run_phoenix(phx, n_words, cfg(), variant="orthrus"),
            run_phoenix(phx, n_words, cfg(), variant="rbv"),
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (orthrus, rbv) in results.items():
        o = orthrus.metrics.validation_latency
        r = rbv.metrics.validation_latency
        rows.append(
            [
                name,
                f"{o.mean * 1e6:.2f} us",
                f"{o.p95 * 1e6:.2f} us",
                f"{r.mean * 1e6:.1f} us",
                f"{r.p95 * 1e6:.1f} us",
                f"{r.mean / max(o.mean, 1e-12):.0f}x",
            ]
        )
    print_table(
        "Figure 8: closure validation latency (Orthrus vs RBV)",
        ["App", "Orthrus mean", "Orthrus p95", "RBV mean", "RBV p95", "RBV/Orthrus"],
        rows,
    )

    for name, (orthrus, rbv) in results.items():
        ratio = rbv.metrics.validation_latency.mean / orthrus.metrics.validation_latency.mean
        if name == "phoenix":
            # §4.3 reports Phoenix at 234ms (Orthrus) vs 513ms (RBV): ~2x.
            assert ratio > 1.3, name
        else:
            assert ratio > 5, name  # paper: 8x-1000x depending on app
    # Latency-critical KV apps should be 2+ orders apart.
    mc_orthrus, mc_rbv = results["memcached"]
    assert (
        mc_rbv.metrics.validation_latency.mean
        > 50 * mc_orthrus.metrics.validation_latency.mean
    )
