"""Ablation A4 — dynamic validator scaling (§3.5 "Dynamic Scaling").

Orthrus starts with a single validation thread and launches more (within
the idle-core budget) when a closure's recent validation latency runs 50%
above the global average.  Paper-expected shape: dynamic scaling tracks the
statically-provisioned configuration's coverage and keeps detection latency
bounded, while holding cores back when load is light.
"""

from conftest import print_table, scaled

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import masstree_scenario


def test_ablation_dynamic_scaling(benchmark):
    n_ops = scaled(2000)
    scenario = masstree_scenario()

    def run_three():
        static_full = run_orthrus_server(
            scenario, n_ops,
            PipelineConfig(app_threads=4, validation_cores=4, seed=1),
        )
        dynamic = run_orthrus_server(
            scenario, n_ops,
            PipelineConfig(app_threads=4, validation_cores=4, seed=1,
                           dynamic_scaling=True),
        )
        static_one = run_orthrus_server(
            scenario, n_ops,
            PipelineConfig(app_threads=4, validation_cores=1, seed=1),
        )
        return static_full, dynamic, static_one

    static_full, dynamic, static_one = benchmark.pedantic(
        run_three, rounds=1, iterations=1
    )

    def row(name, result):
        m = result.metrics
        return [
            name,
            m.validated,
            m.skipped,
            f"{m.validation_latency.mean * 1e6:.2f} us",
            f"{m.validation_latency.p95 * 1e6:.2f} us",
        ]

    print_table(
        "Ablation A4: dynamic validator scaling (Masstree, 4 app threads)",
        ["Config", "Validated", "Skipped", "Val latency mean", "p95"],
        [
            row("4 cores static", static_full),
            row("1→4 cores dynamic", dynamic),
            row("1 core static", static_one),
        ],
    )

    # Dynamic scaling validates (nearly) as much as the full static
    # provision and clearly more than a single frozen core.
    assert dynamic.metrics.validated >= static_full.metrics.validated * 0.85
    assert dynamic.metrics.validated >= static_one.metrics.validated
    # And its latency stays within a small factor of the static optimum.
    assert (
        dynamic.metrics.validation_latency.mean
        < static_full.metrics.validation_latency.mean * 10
    )
