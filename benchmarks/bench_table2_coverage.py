"""Table 2 — full SDC detection capability by injected error type.

Both Orthrus and RBV get as many validation cores as the application uses
(the paper's upper-bound configuration).  Paper-expected shape:

* RBV detects 98–100% of SDCs in every unit column;
* Orthrus is slightly behind (~97–99%) — its misses are control-path
  branch errors that checksums cannot see (and syscall-internal errors);
* unit columns with no instructions of that type show zero SDCs
  (Memcached/Masstree fp = 0, Phoenix cache = 0).
"""

import functools

from conftest import print_table, scaled

from repro.faultinject.campaign import FaultInjectionCampaign
from repro.faultinject.config import InjectionConfig
from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import PipelineConfig
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)
from repro.machine.units import Unit

APPS = [
    ("memcached", lambda: memcached_scenario(n_keys=80), 600, None, None),
    ("masstree", lambda: masstree_scenario(n_keys=80), 450, None, None),
    ("lsmtree", lambda: lsmtree_scenario(n_keys=80), 450, None, None),
    (
        "phoenix",
        lambda: phoenix_scenario(words_per_chunk=120, vocabulary_size=80),
        3000,
        functools.partial(run_phoenix, variant="orthrus"),
        functools.partial(run_phoenix, variant="rbv"),
    ),
]


def test_table2_sdc_coverage(benchmark):
    n_faults = scaled(64, minimum=16)

    def run_campaigns():
        results = {}
        for name, make_scenario, size, runner, rbv_runner in APPS:
            kwargs = {}
            if runner is not None:
                kwargs["runner"] = runner
            if rbv_runner is not None:
                kwargs["rbv_runner"] = rbv_runner
            campaign = FaultInjectionCampaign(
                make_scenario(),
                workload_size=size,
                injection=InjectionConfig(n_faults=n_faults, seed=13, trigger_rate=1.0),
                # Validation cores = application cores and an ample drain
                # window: Table 2 measures the *upper bound* of detection
                # capability, so no log is dropped for timeliness.
                make_pipeline=lambda: PipelineConfig(
                    app_threads=2, validation_cores=2, seed=17,
                    drain_grace_fraction=4.0,
                ),
                **kwargs,
            )
            results[name] = campaign.run()
        return results

    results = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        table = result.coverage_table()
        for unit in (Unit.ALU, Unit.FPU, Unit.SIMD, Unit.CACHE):
            row = table[unit]
            rbv = "-" if row.rbv_detected is None else f"{row.rbv_detected} ({row.rbv_rate:.0%})"
            rows.append(
                [
                    name,
                    unit.value,
                    row.total_sdcs,
                    rbv,
                    f"{row.orthrus_detected} ({row.orthrus_rate:.0%})" if row.total_sdcs else "-",
                ]
            )
    print_table(
        "Table 2: SDC coverage at full validation capacity",
        ["App", "Error type", "Total SDCs", "RBV detected", "Orthrus detected"],
        rows,
    )

    # Structural zeros (instruction mixes, §4.4 / Table 2).
    assert results["memcached"].coverage_table()[Unit.FPU].total_sdcs == 0
    assert results["masstree"].coverage_table()[Unit.FPU].total_sdcs == 0
    assert results["phoenix"].coverage_table()[Unit.CACHE].total_sdcs == 0

    all_trials = [t for r in results.values() for t in r.sdc_trials]
    assert len(all_trials) >= 8, "campaign produced too few SDCs to compare"
    orthrus_rate = sum(t.orthrus_detected for t in all_trials) / len(all_trials)
    rbv_known = [t for t in all_trials if t.rbv_detected is not None]
    rbv_rate = sum(t.rbv_detected for t in rbv_known) / max(1, len(rbv_known))
    print(f"overall: Orthrus {orthrus_rate:.1%}, RBV {rbv_rate:.1%} "
          f"over {len(all_trials)} SDC trials")
    # Paper shape: both high; RBV >= Orthrus (control-path blind spot).
    assert orthrus_rate > 0.85
    assert rbv_rate >= orthrus_rate - 0.05
