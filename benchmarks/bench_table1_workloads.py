"""Table 1 — applications and datasets.

Characterizes each workload generator against its published traits:

| Application | Dataset    | Characteristics     |
|-------------|-----------|---------------------|
| Memcached   | CacheLib  | Skewed with churn   |
| Masstree    | ALEX      | Read-intensive      |
| LSMTree     | Synthetic | Write-intensive     |
| Phoenix     | WMT       | Word count          |

and benchmarks generator throughput (workload generation must never be
the harness bottleneck).
"""

from collections import Counter

from conftest import print_table, scaled

from repro.workloads.alex import AlexWorkload
from repro.workloads.base import OpKind
from repro.workloads.cachelib import CacheLibWorkload
from repro.workloads.wordcount import WordCountCorpus
from repro.workloads.ycsb import YcsbWriteWorkload
from repro.workloads.zipf import ZipfSampler


def test_table1_workload_characteristics(benchmark):
    n_ops = scaled(20000)

    def characterize():
        rows = []
        cachelib = CacheLibWorkload(n_keys=1000, skew=1.2, seed=1)
        kinds = Counter(op.kind for op in cachelib.ops(n_ops))
        head = ZipfSampler(1000, 1.2, seed=1).head_mass(0.2)
        rows.append(
            ["Memcached", "CacheLib-like",
             f"{kinds[OpKind.GET] / n_ops:.0%} reads, top-20% keys carry {head:.0%}"]
        )
        alex = AlexWorkload(n_keys=1000, seed=1)
        kinds = Counter(op.kind for op in alex.ops(n_ops))
        rows.append(
            ["Masstree", "ALEX-like",
             f"{kinds[OpKind.SCAN] / n_ops:.0%} range scans / "
             f"{kinds[OpKind.UPDATE] / n_ops:.0%} updates"]
        )
        ycsb = YcsbWriteWorkload(n_keys=1000, seed=1)
        kinds = Counter(op.kind for op in ycsb.ops(n_ops))
        rows.append(
            ["LSMTree", "YCSB-synthetic", f"{kinds[OpKind.PUT] / n_ops:.0%} random writes"]
        )
        corpus = WordCountCorpus(n_words=scaled(20000), vocabulary_size=500, seed=1)
        counts = sorted(corpus.reference_counts().values(), reverse=True)
        top = sum(counts[: len(counts) // 5]) / sum(counts)
        rows.append(
            ["Phoenix", "WMT-like corpus",
             f"word count; top-20% vocabulary carries {top:.0%} of tokens"]
        )
        return rows

    rows = benchmark.pedantic(characterize, rounds=1, iterations=1)
    print_table(
        "Table 1: applications and datasets (workload generators)",
        ["Application", "Dataset", "Measured characteristics"],
        rows,
    )
    mix = Counter(op.kind for op in CacheLibWorkload(n_keys=100, seed=1).ops(5000))
    assert mix[OpKind.GET] > mix[OpKind.SET] > 0
