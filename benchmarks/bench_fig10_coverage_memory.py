"""Figure 10 — SDC detection rate vs memory budget.

The sampling trigger switches from queueing delay to available memory
(§4.4): versions + pending logs beyond the budget push the sampling rate
down, trading coverage for reclamation throughput.  Budgets are expressed
as the vanilla footprint plus 5%–40% headroom, like the paper's x-axis.

Paper-expected shape: Phoenix is nearly flat (few versions, read-heavy);
the tree-based stores degrade as the budget shrinks (Masstree steepest —
small writes trigger bursts of versions whose reclamation is blocked by
unvalidated closures); Memcached degrades only mildly.
"""

import functools

from conftest import print_table, scaled

from repro.faultinject.campaign import FaultInjectionCampaign
from repro.faultinject.config import InjectionConfig
from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import (
    PipelineConfig,
    run_vanilla_server,
)
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)
from repro.runtime.sampling import AdaptiveSampler, SamplerConfig

HEADROOMS = (0.05, 0.15, 0.25, 0.40)

APPS = [
    ("memcached", lambda: memcached_scenario(n_keys=100), 1200, None, None, 8),
    ("masstree", lambda: masstree_scenario(n_keys=100), 800, None, None, 8),
    ("lsmtree", lambda: lsmtree_scenario(n_keys=100), 800, None, None, 8),
    (
        "phoenix",
        lambda: phoenix_scenario(words_per_chunk=60, vocabulary_size=80),
        6000,
        functools.partial(run_phoenix, variant="orthrus"),
        functools.partial(run_phoenix, variant="vanilla"),
        8,
    ),
]


def vanilla_footprint(make_scenario, size, vanilla_runner, threads):
    """Peak live bytes of the unmodified app — the budget baseline."""
    config = PipelineConfig(app_threads=threads, validation_cores=1, seed=5)
    if vanilla_runner is not None:
        result = vanilla_runner(make_scenario(), size, config)
    else:
        result = run_vanilla_server(make_scenario(), size, config)
    return max(1, result.metrics.peak_live_bytes)


def test_fig10_detection_vs_memory(benchmark):
    n_faults = scaled(40, minimum=12)

    def run_grid():
        grid = {}
        for name, make_scenario, size, runner, vanilla_runner, threads in APPS:
            baseline = vanilla_footprint(make_scenario, size, vanilla_runner, threads)
            for headroom in HEADROOMS:
                budget = baseline * (1 + headroom)
                kwargs = {"runner": runner} if runner is not None else {}
                campaign = FaultInjectionCampaign(
                    make_scenario(),
                    workload_size=size,
                    injection=InjectionConfig(
                        n_faults=n_faults, seed=3, trigger_rate=0.6
                    ),
                    # Two validation cores, memory-triggered sampling (§4.4).
                    make_pipeline=lambda b=budget, t=threads: PipelineConfig(
                        app_threads=t,
                        validation_cores=2,
                        seed=5,
                        drain_grace_fraction=0.5,
                        memory_budget_bytes=b,
                        sampler_factory=lambda seed: AdaptiveSampler(
                            SamplerConfig(
                                delay_threshold=2e-6,
                                staleness_threshold=10e-6,
                                min_rate=0.05,
                            ),
                            seed=seed,
                        ),
                    ),
                    rbv_runner=None,
                    **kwargs,
                )
                grid[(name, headroom)] = campaign.run()
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for name, *_ in APPS:
        rates = [grid[(name, h)].detection_rate for h in HEADROOMS]
        sdcs = [len(grid[(name, h)].sdc_trials) for h in HEADROOMS]
        rows.append(
            [name]
            + [f"{rate:.0%} ({n})" for rate, n in zip(rates, sdcs)]
        )
    print_table(
        "Figure 10: detection rate vs memory budget (+5% .. +40% headroom)",
        ["App"] + [f"+{int(h * 100)}%" for h in HEADROOMS],
        rows,
    )

    # Shape: more memory never substantially hurts; generous budgets reach
    # high detection; Phoenix stays comparatively flat across budgets.
    for name, *_ in APPS:
        tight = grid[(name, HEADROOMS[0])].detection_rate
        loose = grid[(name, HEADROOMS[-1])].detection_rate
        assert loose >= tight - 0.1, name
    phoenix_spread = (
        grid[("phoenix", HEADROOMS[-1])].detection_rate
        - grid[("phoenix", HEADROOMS[0])].detection_rate
    )
    assert phoenix_spread <= 0.55
