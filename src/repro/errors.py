"""Exception hierarchy for the Orthrus reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
Detection outcomes (SDC flags) are *not* exceptions by default — the runtime
reports them through :class:`repro.runtime.orthrus.DetectionReport` — but the
strict safe mode raises :class:`SdcDetected` to abort the application before a
corrupted result is externalized, matching the paper's abort-on-detection
deployment model (§1).
"""

from __future__ import annotations

import enum


class ExitCode(enum.IntEnum):
    """The CLI's documented exit-code registry.

    Every subcommand returns one of these; tests assert the mapping so a
    new code cannot ship undocumented.

    ========  =====================================================
    code      meaning
    ========  =====================================================
    OK        run completed; every gate passed
    FAILURE   rejected config, unrepaired incident, unreconciled
              attribution, missing/invalid artifact, bench
              regression, or ERROR-severity audit findings
              (``doctor``, ``--audit``)
    SAFE_HOLD the degradation ladder ended the run in SAFE_HOLD
              (``perf``/``latency``/``respond`` fault-tolerance
              runs, ``fleet``)
    CANARY_MISSED  a canary probe missed its detection deadline
              (``perf``/``latency`` canary runs, ``obs-summary``,
              ``timeline``)
    DEGRADED_FLEET  the fleet run completed on partial results —
              a worker host group was lost and its bounded retry
              failed, or the failover engine dropped re-homed
              backlog past the retry budget (``fleet``)
    ========  =====================================================
    """

    OK = 0
    FAILURE = 1
    SAFE_HOLD = 2
    CANARY_MISSED = 3
    DEGRADED_FLEET = 4


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class NoActiveContext(ReproError):
    """An Orthrus primitive was used outside a closure execution context."""


class HeapError(ReproError):
    """Versioned-heap misuse: bad pointer, double free, or stale access."""


class ReclaimedVersionError(HeapError):
    """A closure or validator touched a version that was already reclaimed."""


class SdcDetected(ReproError):
    """A silent data corruption was detected.

    Raised when the runtime operates in strict safe mode; otherwise the
    corruption is recorded in the runtime's detection report.
    """

    def __init__(self, message: str, *, closure: str | None = None, kind: str = "mismatch"):
        super().__init__(message)
        self.closure = closure
        #: ``"mismatch"`` (re-execution divergence) or ``"checksum"``
        #: (control-path payload corruption caught by the CRC).
        self.kind = kind


class ChecksumMismatch(SdcDetected):
    """User data was corrupted while traversing the control path."""

    def __init__(self, message: str, *, closure: str | None = None):
        super().__init__(message, closure=closure, kind="checksum")


class ValidationMismatch(SdcDetected):
    """Re-executing a closure on another core produced a different result."""

    def __init__(self, message: str, *, closure: str | None = None):
        super().__init__(message, closure=closure, kind="mismatch")


class FaultInjectionError(ReproError):
    """The fault-injection campaign was misconfigured."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class FleetExecutionError(ReproError):
    """The supervised fleet fan-out lost every host group.

    Raised only when *no* shard results survive classification and the
    bounded group retries — a partial fleet is salvaged into a degraded
    report (``ExitCode.DEGRADED_FLEET``) instead.  ``outcomes`` carries
    the per-group supervision records for the operator.
    """

    def __init__(self, message: str, outcomes: list[dict] | None = None):
        super().__init__(message)
        self.outcomes = list(outcomes or ())
