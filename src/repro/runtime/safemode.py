"""Strict safe mode (§3.5).

By default validation never blocks results — an SDC is flagged after the
fact.  Safe mode withholds *externalizing* results (those returned to a
client, e.g. Memcached ``get``) until the producing closure's validation
completes.  Only the externalizing subset pays the wait, which is why the
paper measures the mode's cost at under 2%.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SafeModePolicy:
    """Which closures must be validated before their result is released."""

    enabled: bool = False
    #: closure names whose results reach clients (app-specific)
    externalizing: frozenset[str] = field(default_factory=frozenset)

    def must_hold(self, closure_name: str) -> bool:
        """Should this closure's result be withheld until validated?"""
        return self.enabled and closure_name in self.externalizing

    def engage(self) -> None:
        """Turn holds on (the degradation ladder's SAFE_HOLD rung)."""
        self.enabled = True

    def release(self) -> None:
        """Turn holds back off once the validation plane recovers."""
        self.enabled = False

    @staticmethod
    def strict(externalizing) -> "SafeModePolicy":
        return SafeModePolicy(enabled=True, externalizing=frozenset(externalizing))

    @staticmethod
    def off() -> "SafeModePolicy":
        return SafeModePolicy(enabled=False)
