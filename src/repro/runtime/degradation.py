"""Graceful degradation of the validation plane under overload.

When validation demand exceeds capacity, the AIMD sampler (§3.5) sheds
load *silently* — coverage quietly thins and nothing tells the operator.
Production detection infrastructure must instead degrade *explicitly*
(the fleet-scale SDC studies are blunt about this: a detector that lies
about its coverage is worse than no detector).  The
:class:`DegradationController` is that explicit ladder::

    NORMAL → DEGRADED → CHECKSUM_ONLY → SAFE_HOLD

* ``NORMAL`` — full sampled re-execution validation;
* ``DEGRADED`` — only *coverage-critical* logs are re-executed (the
  never-validated / stale decisions of §3.5; steady-state resampling is
  shed first because persistent-core errors are what staleness targets);
* ``CHECKSUM_ONLY`` — re-execution capacity is effectively gone; outputs
  are verified against their CRC-16 boundary checksums only (§3.2/§3.4),
  an honest, cheap, reduced-coverage fallback accounted separately;
* ``SAFE_HOLD`` — the validation plane cannot vouch for results at all;
  :class:`~repro.runtime.safemode.SafeModePolicy` is engaged so
  externalizing closures block rather than ship unvalidated data.

Transitions are driven by three load signals — bounded-queue utilization,
drop rate, and watchdog timeout rate — with hysteresis in *both*
directions (distinct high/low water marks plus consecutive-observation
streaks) so a noisy signal cannot flap the ladder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.observability import NULL_OBS
from repro.runtime.safemode import SafeModePolicy
from repro.validation.watchdog import WatchdogConfig


class DegradationLevel(enum.IntEnum):
    NORMAL = 0
    DEGRADED = 1
    CHECKSUM_ONLY = 2
    SAFE_HOLD = 3

    @property
    def label(self) -> str:
        return self.name.lower().replace("_", "-")


@dataclass(slots=True)
class DegradationConfig:
    """Thresholds and hysteresis for the degradation ladder."""

    #: queue fill fraction above which the plane is overloaded
    queue_high_water: float = 0.75
    #: queue fill fraction below which the plane has recovered
    queue_low_water: float = 0.25
    #: drops per accepted push (per observation window) that count as hot
    drop_rate_high: float = 0.05
    #: watchdog timeouts per dispatch (per window) that count as hot
    timeout_rate_high: float = 0.25
    #: consecutive hot observations before escalating one level
    escalate_after: int = 2
    #: consecutive cool observations before recovering one level
    recover_after: int = 4

    def violations(self) -> list[str]:
        found = []
        if not 0.0 <= self.queue_low_water < self.queue_high_water <= 1.0:
            found.append(
                "degradation water marks must satisfy 0 <= low < high <= 1"
            )
        if self.drop_rate_high <= 0 or self.timeout_rate_high <= 0:
            found.append("degradation rate thresholds must be positive")
        if self.escalate_after < 1 or self.recover_after < 1:
            found.append("degradation streaks must be >= 1")
        return found

    def validate(self) -> None:
        for message in self.violations():
            raise ConfigurationError(message)


@dataclass(slots=True)
class Transition:
    """One recorded ladder move."""

    time: float
    frm: DegradationLevel
    to: DegradationLevel
    reason: str


class DegradationController:
    """Hysteresis state machine over the validation-plane load signals."""

    def __init__(
        self,
        config: DegradationConfig | None = None,
        obs=None,
        safe_mode: SafeModePolicy | None = None,
    ):
        self.config = config if config is not None else DegradationConfig()
        self.config.validate()
        self._obs = obs if obs is not None else NULL_OBS
        self._safe_mode = safe_mode
        self.level = DegradationLevel.NORMAL
        self.peak = DegradationLevel.NORMAL
        self.history: list[Transition] = []
        self.observations = 0
        self._hot_streak = 0
        self._cool_streak = 0
        if self._obs.enabled:
            self._obs.registry.gauge(
                "orthrus_degradation_level",
                help="degradation ladder position (0=normal .. 3=safe-hold)",
            ).set_function(lambda: float(self.level))

    # ------------------------------------------------------------------
    # effects of the current level
    # ------------------------------------------------------------------
    @property
    def coverage_only(self) -> bool:
        """Shed steady-state resampling; keep coverage-critical logs."""
        return self.level >= DegradationLevel.DEGRADED

    @property
    def checksum_only(self) -> bool:
        """Re-execution is off; CRC boundary checks only."""
        return self.level >= DegradationLevel.CHECKSUM_ONLY

    @property
    def hold_externalizing(self) -> bool:
        return self.level >= DegradationLevel.SAFE_HOLD

    # ------------------------------------------------------------------
    def observe(
        self,
        now: float,
        utilization: float = 0.0,
        drop_rate: float = 0.0,
        timeout_rate: float = 0.0,
    ) -> DegradationLevel:
        """Feed one observation window; returns the (possibly new) level."""
        config = self.config
        self.observations += 1
        hot_reasons = []
        if utilization >= config.queue_high_water:
            hot_reasons.append(f"queue-utilization={utilization:.2f}")
        if drop_rate >= config.drop_rate_high:
            hot_reasons.append(f"drop-rate={drop_rate:.2f}")
        if timeout_rate >= config.timeout_rate_high:
            hot_reasons.append(f"timeout-rate={timeout_rate:.2f}")
        # Recovery demands *every* signal well clear of its threshold —
        # the lower half of the hysteresis band.
        cool = (
            utilization <= config.queue_low_water
            and drop_rate <= config.drop_rate_high / 4
            and timeout_rate <= config.timeout_rate_high / 4
        )
        if hot_reasons:
            self._hot_streak += 1
            self._cool_streak = 0
            if (
                self._hot_streak >= config.escalate_after
                and self.level < DegradationLevel.SAFE_HOLD
            ):
                self._transition(
                    now, DegradationLevel(self.level + 1), ", ".join(hot_reasons)
                )
                self._hot_streak = 0
        elif cool:
            self._cool_streak += 1
            self._hot_streak = 0
            if (
                self._cool_streak >= config.recover_after
                and self.level > DegradationLevel.NORMAL
            ):
                self._transition(
                    now, DegradationLevel(self.level - 1), "load-subsided"
                )
                self._cool_streak = 0
        else:
            # Inside the hysteresis band: neither streak accumulates.
            self._hot_streak = 0
            self._cool_streak = 0
        return self.level

    def _transition(self, now: float, to: DegradationLevel, reason: str) -> None:
        frm = self.level
        self.level = to
        self.peak = max(self.peak, to)
        self.history.append(Transition(time=now, frm=frm, to=to, reason=reason))
        if self._safe_mode is not None:
            if to >= DegradationLevel.SAFE_HOLD:
                self._safe_mode.engage()
            elif frm >= DegradationLevel.SAFE_HOLD:
                self._safe_mode.release()
        if self._obs.enabled:
            self._obs.registry.counter(
                "orthrus_degradation_transitions_total",
                {"from": frm.label, "to": to.label},
                help="degradation ladder transitions",
            ).inc()
            self._obs.tracer.emit(
                "degradation.transition",
                ts=now,
                frm=frm.label,
                to=to.label,
                level=int(to),
                reason=reason,
            )

    def summary(self) -> dict:
        return {
            "level": self.level.label,
            "peak": self.peak.label,
            "observations": self.observations,
            "transitions": [
                {
                    "time": t.time,
                    "from": t.frm.label,
                    "to": t.to.label,
                    "reason": t.reason,
                }
                for t in self.history
            ],
        }


@dataclass
class FaultToleranceConfig:
    """Validation-plane fault-tolerance knobs for the chaos harness."""

    #: per-queue capacity (None = unbounded, policies never fire)
    queue_capacity: int | None = 64
    #: `repro.validation.queues` overflow policy
    overflow_policy: str = "drop-oldest"
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    #: None disables the degradation ladder (watchdog/bounding still run)
    degradation: DegradationConfig | None = field(default_factory=DegradationConfig)
    #: watchdog sweep + degradation observation cadence (virtual seconds)
    check_interval: float = 25e-6
    #: producer retry interval under the block-producer policy
    block_poll: float = 10e-6
