"""Resource-adaptive sampling of validation work (§3.5).

When validation capacity cannot keep up with log production, Orthrus
samples.  The sampler's goal is *code coverage*, not volume: because CPU
errors are persistent and instruction-correlated, a (closure, caller) pair
that was validated recently and passed is very likely still clean, while a
pair that has not been validated recently is where an undetected mercurial
core could be hiding.  Three signals combine:

* **staleness** — a pair past the staleness threshold is always validated;
* **unit priority** — closures containing fp/vector instructions (where
  production SDC studies see most errors) get a boosted sampling score;
* **load feedback** — the base sampling rate adapts (AIMD) to the observed
  queueing delay, or to memory pressure when the trigger is switched for
  the Fig-10 experiment.

:class:`RandomSampler` is the unguided baseline of Fig 9: same rate
control, no staleness or unit guidance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import NamedTuple

from repro.closures.log import ClosureLog


class SampleDecision(NamedTuple):
    """One sampler verdict plus the reason, for telemetry (§3.5).

    Reasons: ``never-validated`` / ``stale`` (coverage rules), ``full-rate``
    (unconstrained), ``sampled`` (probabilistic accept), ``rate-limited``
    (probabilistic reject), ``always`` (AlwaysSampler).
    """

    validate: bool
    reason: str


# Decisions are drawn from a fixed set, so every verdict is a shared
# pre-built instance — per-log telemetry costs no allocation.
_NEVER_VALIDATED = SampleDecision(True, "never-validated")
_STALE = SampleDecision(True, "stale")
_FULL_RATE = SampleDecision(True, "full-rate")
_SAMPLED = SampleDecision(True, "sampled")
_RATE_LIMITED = SampleDecision(False, "rate-limited")
_ALWAYS = SampleDecision(True, "always")

#: Decision reasons that are *coverage-critical*: a DEGRADED validation
#: plane (see :mod:`repro.runtime.degradation`) keeps re-executing these —
#: persistent-core errors hide exactly where coverage has lapsed — and
#: sheds the steady-state resampling ("full-rate" / "sampled") first.
COVERAGE_REASONS = frozenset({"never-validated", "stale", "always"})


def sampler_decision(sampler, log: ClosureLog, now: float) -> SampleDecision:
    """Ask ``sampler`` for a reasoned decision, tolerating third-party
    samplers that only implement ``should_validate``."""
    decide = getattr(sampler, "decide", None)
    if decide is not None:
        return decide(log, now)
    return _SAMPLED if sampler.should_validate(log, now) else _RATE_LIMITED


@dataclass
class SamplerConfig:
    """Tuning knobs; defaults follow §3.5's qualitative description."""

    #: sampling rate floor — validation never stops entirely
    min_rate: float = 0.02
    #: multiplicative decrease applied while the load signal is high
    decrease: float = 0.75
    #: additive increase applied while the load signal is low
    increase: float = 0.05
    #: queueing delay (seconds of virtual time) above which the rate drops
    delay_threshold: float = 20e-6
    #: a (closure, caller) pair unvalidated for this long is always chosen
    staleness_threshold: float = 2e-3
    #: score multiplier for closures with fp/vector instructions
    error_prone_boost: float = 6.0
    #: memory headroom fraction under the budget before the rate recovers
    memory_low_water: float = 0.7


class _RateController:
    """Shared AIMD rate control driven by delay or memory pressure."""

    def __init__(self, config: SamplerConfig):
        self._config = config
        self.rate = 1.0  # start by validating everything (§3.5)

    def observe_delay(self, delay: float) -> None:
        config = self._config
        if delay > config.delay_threshold:
            self.rate = max(config.min_rate, self.rate * config.decrease)
        elif delay < config.delay_threshold / 2:
            self.rate = min(1.0, self.rate + config.increase)

    def observe_memory(self, used_bytes: float, budget_bytes: float) -> None:
        config = self._config
        if budget_bytes <= 0:
            return
        if used_bytes > budget_bytes:
            self.rate = max(config.min_rate, self.rate * config.decrease)
        elif used_bytes < config.memory_low_water * budget_bytes:
            self.rate = min(1.0, self.rate + config.increase)


class AdaptiveSampler:
    """The Orthrus sampler: staleness-first, unit-aware, load-adaptive."""

    def __init__(self, config: SamplerConfig | None = None, seed: int = 0):
        self.config = config or SamplerConfig()
        self._controller = _RateController(self.config)
        self._rng = random.Random(seed)
        self._last_validated: dict[tuple[str, str], float] = {}
        self.chosen = 0
        self.skipped = 0

    # -- load signals ---------------------------------------------------
    def observe_delay(self, delay: float) -> None:
        self._controller.observe_delay(delay)

    def observe_memory(self, used_bytes: float, budget_bytes: float) -> None:
        self._controller.observe_memory(used_bytes, budget_bytes)

    @property
    def rate(self) -> float:
        return self._controller.rate

    # -- selection -------------------------------------------------------
    @staticmethod
    def _key(log: ClosureLog):
        # Recency is tracked per (closure, caller, application core): the
        # fault model is core-local (§2.1 — errors are isolated to specific
        # cores), so "recently validated on core 3" says nothing about the
        # same closure's executions on core 5.  This is the execution-
        # context precision §3.5 argues for, extended by the core axis.
        return (log.closure_name, log.caller, log.core_id)

    def should_validate(self, log: ClosureLog, now: float) -> bool:
        return self.decide(log, now).validate

    def decide(self, log: ClosureLog, now: float) -> SampleDecision:
        key = self._key(log)
        last = self._last_validated.get(key)
        if last is None or now - last >= self.config.staleness_threshold:
            # Never-validated or stale pair: maximize code coverage.
            self.chosen += 1
            return _NEVER_VALIDATED if last is None else _STALE
        rate = self._controller.rate
        if rate >= 1.0:
            # Unconstrained: validate everything (§3.5 — Orthrus begins by
            # validating all closures; sampling only kicks in under load).
            self.chosen += 1
            return _FULL_RATE
        score = rate
        if log.error_prone:
            score = min(1.0, score * self.config.error_prone_boost)
        # Pairs validated very recently are mildly deprioritized (§3.5:
        # frequently-invoked recent pairs are less likely to be selected);
        # the discount is bounded so hot closures keep meaningful coverage.
        age_fraction = (now - last) / self.config.staleness_threshold
        score *= 0.4 + 0.6 * age_fraction
        if self._rng.random() < score:
            self.chosen += 1
            return _SAMPLED
        self.skipped += 1
        return _RATE_LIMITED

    def on_validated(self, log: ClosureLog, now: float) -> None:
        self._last_validated[self._key(log)] = now

    def reset(self) -> None:
        self._last_validated.clear()
        self._controller.rate = 1.0
        self.chosen = 0
        self.skipped = 0


class RandomSampler:
    """Unguided random sampling baseline (Fig 9): rate-only, no guidance."""

    def __init__(self, config: SamplerConfig | None = None, seed: int = 0):
        self.config = config or SamplerConfig()
        self._controller = _RateController(self.config)
        self._rng = random.Random(seed)
        self.chosen = 0
        self.skipped = 0

    def observe_delay(self, delay: float) -> None:
        self._controller.observe_delay(delay)

    def observe_memory(self, used_bytes: float, budget_bytes: float) -> None:
        self._controller.observe_memory(used_bytes, budget_bytes)

    @property
    def rate(self) -> float:
        return self._controller.rate

    def should_validate(self, log: ClosureLog, now: float) -> bool:
        return self.decide(log, now).validate

    def decide(self, log: ClosureLog, now: float) -> SampleDecision:
        if self._rng.random() < self._controller.rate:
            self.chosen += 1
            return _SAMPLED
        self.skipped += 1
        return _RATE_LIMITED

    def on_validated(self, log: ClosureLog, now: float) -> None:
        pass

    def reset(self) -> None:
        self._controller.rate = 1.0
        self.chosen = 0
        self.skipped = 0


class AlwaysSampler:
    """Validate everything — used when capacity matches demand (Table 2)."""

    rate = 1.0

    def observe_delay(self, delay: float) -> None:
        pass

    def observe_memory(self, used_bytes: float, budget_bytes: float) -> None:
        pass

    def should_validate(self, log: ClosureLog, now: float) -> bool:
        return True

    def decide(self, log: ClosureLog, now: float) -> SampleDecision:
        return _ALWAYS

    def on_validated(self, log: ClosureLog, now: float) -> None:
        pass

    def reset(self) -> None:
        pass
