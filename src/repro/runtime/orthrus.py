"""The Orthrus runtime façade: the library's main entry point.

Wires together the versioned heap, reclamation, validation queues,
validator, sampler, and scheduler, and executes annotated closures:

>>> runtime = OrthrusRuntime()
>>> with runtime:
...     result = my_annotated_operator(args)      # doctest: +SKIP

Two validation modes:

* ``"inline"`` — every closure is validated synchronously on a different
  core right after it runs.  Deterministic and simple; the default for
  library users and tests.
* ``"queued"`` — closure logs are pushed to per-core validation queues and
  validated asynchronously/out-of-order when :meth:`pump` (or the
  discrete-event harness) drives the validator; the sampler decides which
  logs to validate under load.  This is the production deployment shape of
  the paper.

Detection policy: ``"flag"`` records events in :attr:`report` and keeps
running (the paper's default, non-blocking mode); ``"abort"`` raises
:class:`~repro.errors.SdcDetected` — the strict deployment where a detected
corruption stops the application before data is externalized.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.clock import Clock, LogicalClock
from repro.closures.annotation import ClosureMeta
from repro.closures.context import ExecutionContext
from repro.closures.log import ClosureLog
from repro.detection import DetectionEvent, DetectionReport
from repro.errors import ChecksumMismatch, ConfigurationError, ValidationMismatch
from repro.machine.core import Core
from repro.machine.cpu import Machine
from repro.memory.heap import VersionedHeap
from repro.memory.pointer import OrthrusPtr
from repro.memory.reclaim import ReclamationManager
from repro.runtime.sampling import AlwaysSampler
from repro.runtime.scheduler import LatencyTracker, Scheduler
from repro.validation.queues import QueueSet
from repro.validation.validator import ValidationOutcome, Validator

_active_lock = threading.Lock()
_active_stack: list["OrthrusRuntime"] = []


def active() -> "OrthrusRuntime | None":
    """The innermost runtime entered with ``with runtime:`` on any thread."""
    with _active_lock:
        return _active_stack[-1] if _active_stack else None


class OrthrusRuntime:
    """Orchestrates closure execution, logging, and validation."""

    def __init__(
        self,
        machine: Machine | None = None,
        app_cores: list[int] | None = None,
        validation_cores: list[int] | None = None,
        clock: Clock | None = None,
        mode: str = "inline",
        checksums: bool = True,
        detection_policy: str = "flag",
        sampler=None,
        reclaim_batch: int = 64,
        hold_versions: bool = True,
    ):
        if mode not in ("inline", "queued", "external"):
            raise ConfigurationError(f"unknown runtime mode {mode!r}")
        if detection_policy not in ("flag", "abort"):
            raise ConfigurationError(f"unknown detection policy {detection_policy!r}")
        self.machine = machine if machine is not None else Machine(cores_per_node=4, numa_nodes=1)
        if app_cores is None:
            app_cores = [0]
        if validation_cores is None:
            validation_cores = [i for i in range(len(self.machine)) if i not in app_cores][:1]
        self.mode = mode
        self.detection_policy = detection_policy
        self.clock = clock if clock is not None else LogicalClock()
        self.heap = VersionedHeap(clock=self.clock, checksums=checksums)
        self.reclaimer = ReclamationManager(self.heap, batch_size=reclaim_batch)
        self.scheduler = Scheduler(self.machine, app_cores, validation_cores)
        self.queues = QueueSet(len(validation_cores))
        self.report = DetectionReport()
        self.validator = Validator(
            self.heap, self.clock, detector=self._on_detection, reclaimer=self.reclaimer
        )
        self.sampler = sampler if sampler is not None else AlwaysSampler()
        self.latency = LatencyTracker()
        self.outcomes: list[ValidationOutcome] = []
        self._seq = 0
        self._bound = threading.local()
        self._on_log: Callable[[ClosureLog], None] | None = None
        #: False = close each closure's active window immediately after the
        #: APP run (no deferred validation will reference its versions) —
        #: used by vanilla/RBV configurations that do not validate logs.
        self._hold_versions = hold_versions

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "OrthrusRuntime":
        with _active_lock:
            _active_stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        with _active_lock:
            _active_stack.remove(self)

    # ------------------------------------------------------------------
    # allocation helpers
    # ------------------------------------------------------------------
    def new(self, value: Any) -> OrthrusPtr:
        """Allocate user data outside any closure (control-path setup)."""
        return OrthrusPtr(self.heap, self.heap.allocate(value))

    def receive(self, value: Any, checksum: int) -> OrthrusPtr:
        """Materialize user data received over the control path (§3.4)."""
        return OrthrusPtr(
            self.heap, self.heap.allocate(value, checksum_override=checksum)
        )

    # ------------------------------------------------------------------
    # closure execution (APP side)
    # ------------------------------------------------------------------
    def current_core(self) -> Core:
        """The application core control-path code should execute on: the
        thread's bound core, or the first application core."""
        bound = getattr(self._bound, "core_id", None)
        if bound is not None:
            return self.machine.core(bound)
        return self.scheduler.app_cores[0]

    def bind_core(self, core_id: int) -> "_CoreBinding":
        """Pin closures run on this thread to one application core.

        Used by multi-threaded drivers (and the discrete-event harness) to
        model several application threads on distinct cores.
        """
        return _CoreBinding(self, core_id)

    def run_closure(
        self,
        meta: ClosureMeta,
        args: tuple,
        kwargs: dict,
        caller: str = "<unknown>",
        core: Core | None = None,
    ) -> Any:
        if core is None:
            bound = getattr(self._bound, "core_id", None)
            core = self.machine.core(bound) if bound is not None else self.scheduler.next_app_core()
        self._seq += 1
        start = self.clock.now()
        log = ClosureLog(
            seq=self._seq,
            closure_name=meta.name,
            caller=caller,
            func=meta.fn,
            args=args,
            kwargs=kwargs,
            start_time=start,
            core_id=core.core_id,
            compare=meta.compare,
        )
        self.reclaimer.closure_started(log.seq, start)
        ctx = ExecutionContext(
            ExecutionContext.APP,
            core=core,
            heap=self.heap,
            log=log,
            verify_checksums=self.heap._checksums,
            detector=self._on_detection,
        )
        try:
            with ctx:
                retval = meta.fn(*args, **kwargs)
        except BaseException:
            # Fail-stop: the closure crashed.  Close its window so its
            # versions do not leak, then let the crash propagate.
            self.reclaimer.closure_finished(log.seq)
            raise
        log.retval = ctx.canonicalize(retval)
        log.deletes = [ctx.canon_obj(oid) for oid in log.deletes]
        log.end_time = self.clock.now()
        if not self._hold_versions:
            self.reclaimer.closure_finished(log.seq)
        if self._on_log is not None:
            self._on_log(log)
        if self.mode == "inline":
            val_core = self.scheduler.validation_core_for(core.core_id)
            outcome = self.validator.validate(log, val_core)
            self.sampler.on_validated(log, self.clock.now())
            self.latency.record(log.closure_name, outcome.latency)
            self.outcomes.append(outcome)
        elif self.mode == "queued":
            self.queues.push(log, self.clock.now())
        # mode == "external": an external driver (the discrete-event
        # harness, or an RBV baseline that validates whole requests) owns
        # the log via the _on_log hook; nothing is queued here.
        return retval

    # ------------------------------------------------------------------
    # validation pumping (queued mode)
    # ------------------------------------------------------------------
    def pump(self, max_logs: int | None = None) -> int:
        """Drive the validator over pending logs; returns logs processed.

        Applies the sampler to each dequeued log: skipped logs close their
        active window without re-execution (§3.5).
        """
        processed = 0
        while max_logs is None or processed < max_logs:
            log = self._pop_any()
            if log is None:
                break
            processed += 1
            now = self.clock.now()
            self.sampler.observe_delay(self.queues.queue_delay(now))
            if not self.sampler.should_validate(log, now):
                self.validator.skip(log)
                continue
            app_core_id = log.core_id
            val_core = self.scheduler.validation_core_for(app_core_id)
            outcome = self.validator.validate(log, val_core)
            self.sampler.on_validated(log, self.clock.now())
            self.latency.record(log.closure_name, outcome.latency)
            self.outcomes.append(outcome)
        return processed

    def drain(self) -> int:
        """Validate everything still pending (end-of-run flush)."""
        return self.pump(max_logs=None)

    def _pop_any(self) -> ClosureLog | None:
        for queue in self.queues.queues:
            log = queue.pop()
            if log is not None:
                return log
        return None

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def _on_detection(self, event: DetectionEvent) -> None:
        self.report.record(event)
        if self.detection_policy == "abort":
            if event.kind == "checksum":
                raise ChecksumMismatch(event.detail, closure=event.closure)
            raise ValidationMismatch(event.detail, closure=event.closure)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def detections(self) -> int:
        return self.report.count()

    @property
    def validations(self) -> int:
        return self.validator.validated_count

    def reset_report(self) -> None:
        self.report.clear()


class _CoreBinding:
    def __init__(self, runtime: OrthrusRuntime, core_id: int):
        self._runtime = runtime
        self._core_id = core_id
        self._previous: int | None = None

    def __enter__(self):
        bound = self._runtime._bound
        self._previous = getattr(bound, "core_id", None)
        bound.core_id = self._core_id
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._runtime._bound.core_id = self._previous
