"""The Orthrus runtime façade: the library's main entry point.

Wires together the versioned heap, reclamation, validation queues,
validator, sampler, and scheduler, and executes annotated closures:

>>> runtime = OrthrusRuntime()
>>> with runtime:
...     result = my_annotated_operator(args)      # doctest: +SKIP

Two validation modes:

* ``"inline"`` — every closure is validated synchronously on a different
  core right after it runs.  Deterministic and simple; the default for
  library users and tests.
* ``"queued"`` — closure logs are pushed to per-core validation queues and
  validated asynchronously/out-of-order when :meth:`pump` (or the
  discrete-event harness) drives the validator; the sampler decides which
  logs to validate under load.  This is the production deployment shape of
  the paper.

Detection policy: ``"flag"`` records events in :attr:`report` and keeps
running (the paper's default, non-blocking mode); ``"abort"`` raises
:class:`~repro.errors.SdcDetected` — the strict deployment where a detected
corruption stops the application before data is externalized.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.clock import Clock, LogicalClock
from repro.closures.annotation import ClosureMeta
from repro.closures.context import ExecutionContext
from repro.closures.log import ClosureLog
from repro.detection import DetectionEvent, DetectionReport, is_canary_closure
from repro.errors import ChecksumMismatch, ConfigurationError, ValidationMismatch
from repro.machine.core import Core
from repro.machine.cpu import Machine
from repro.memory.heap import VersionedHeap
from repro.memory.pointer import OrthrusPtr
from repro.memory.reclaim import ReclamationManager
from repro.obs.observability import NULL_OBS
from repro.obs.profiling import active as profiling_active
from repro.runtime.sampling import AlwaysSampler, sampler_decision
from repro.runtime.scheduler import LatencyTracker, Scheduler
from repro.validation.queues import OVERFLOW_REJECT, QueueSet
from repro.validation.validator import ValidationOutcome, Validator

_active_lock = threading.Lock()
_active_stack: list["OrthrusRuntime"] = []


def active() -> "OrthrusRuntime | None":
    """The innermost runtime entered with ``with runtime:`` on any thread."""
    with _active_lock:
        return _active_stack[-1] if _active_stack else None


class OrthrusRuntime:
    """Orchestrates closure execution, logging, and validation."""

    def __init__(
        self,
        machine: Machine | None = None,
        app_cores: list[int] | None = None,
        validation_cores: list[int] | None = None,
        clock: Clock | None = None,
        mode: str = "inline",
        checksums: bool = True,
        detection_policy: str = "flag",
        sampler=None,
        reclaim_batch: int = 64,
        hold_versions: bool = True,
        obs=None,
        queue_capacity: int | None = None,
        overflow_policy: str = OVERFLOW_REJECT,
    ):
        if mode not in ("inline", "queued", "external"):
            raise ConfigurationError(f"unknown runtime mode {mode!r}")
        if detection_policy not in ("flag", "abort"):
            raise ConfigurationError(f"unknown detection policy {detection_policy!r}")
        self.machine = machine if machine is not None else Machine(cores_per_node=4, numa_nodes=1)
        if app_cores is None:
            app_cores = [0]
        if validation_cores is None:
            validation_cores = [i for i in range(len(self.machine)) if i not in app_cores][:1]
        self.mode = mode
        self.detection_policy = detection_policy
        self.obs = obs if obs is not None else NULL_OBS
        self.clock = clock if clock is not None else LogicalClock()
        self.heap = VersionedHeap(clock=self.clock, checksums=checksums)
        self.reclaimer = ReclamationManager(
            self.heap, batch_size=reclaim_batch, obs=self.obs
        )
        self.scheduler = Scheduler(self.machine, app_cores, validation_cores)
        self.queues = QueueSet(
            len(validation_cores),
            capacity=queue_capacity,
            policy=overflow_policy,
            obs=self.obs,
        )
        self.report = DetectionReport()
        self.validator = Validator(
            self.heap,
            self.clock,
            detector=self._on_detection,
            reclaimer=self.reclaimer,
            obs=self.obs,
        )
        self.sampler = sampler if sampler is not None else AlwaysSampler()
        self.latency = LatencyTracker()
        self.outcomes: list[ValidationOutcome] = []
        self._seq = 0
        self._pop_cursor = 0
        self._bound = threading.local()
        self._on_log: Callable[[ClosureLog], None] | None = None
        #: incident-response coordinator (repro.response); attached by
        #: ResponseCoordinator, observes logs/outcomes/detections.
        self.responder = None
        #: a ``repro.obs.TimeSeriesRecorder`` sampled opportunistically
        #: after each closure run / pump step (cadence-gated inside the
        #: recorder); attach via :meth:`attach_timeseries`.  The DES
        #: drivers instead run a dedicated sampling process so telemetry
        #: ticks even while the runtime is idle.
        self.timeseries = None
        if self.obs.enabled:
            self._register_gauges()
        #: False = close each closure's active window immediately after the
        #: APP run (no deferred validation will reference its versions) —
        #: used by vanilla/RBV configurations that do not validate logs.
        self._hold_versions = hold_versions

    def attach_timeseries(self, recorder) -> None:
        """Sample ``recorder`` on this runtime's clock as work happens.

        The recorder must be built over this runtime's obs registry (its
        probes read the families the runtime writes).  Sampling piggybacks
        on closure completion and validation pumping — adequate for the
        library modes, where the clock only advances when work happens.
        """
        if not self.obs.enabled:
            raise ConfigurationError(
                "attach_timeseries needs an observability-enabled runtime "
                "(pass obs=Observability() to OrthrusRuntime)"
            )
        self.timeseries = recorder

    def _register_gauges(self) -> None:
        """Callback gauges over live runtime state: sampled only at export
        time, so the execution hot path pays nothing for them."""
        registry = self.obs.registry
        heap = self.heap
        registry.gauge(
            "orthrus_heap_versioned_bytes",
            help="bytes held by all unreclaimed versions (live + stale)",
        ).set_function(lambda: float(heap.versioned_bytes))
        registry.gauge(
            "orthrus_heap_live_bytes", help="bytes held by live versions only"
        ).set_function(lambda: float(heap.live_bytes))
        registry.gauge(
            "orthrus_heap_live_versions", help="latest versions of live objects"
        ).set_function(lambda: float(heap.live_version_count))
        registry.gauge(
            "orthrus_heap_reclaimable_versions",
            help="superseded versions awaiting the next reclamation pass",
        ).set_function(lambda: float(heap.reclaimable_version_count))
        registry.gauge(
            "orthrus_sampler_rate", help="current AIMD sampling rate"
        ).set_function(lambda: float(getattr(self.sampler, "rate", 1.0)))

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "OrthrusRuntime":
        with _active_lock:
            _active_stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Pop strictly from the end: ``remove(self)`` would take out the
        # *outermost* entry when the same runtime is entered re-entrantly,
        # corrupting the nesting for every level still active.
        with _active_lock:
            if not _active_stack or _active_stack[-1] is not self:
                raise ConfigurationError(
                    "mismatched OrthrusRuntime exit order: this runtime is not "
                    "the innermost active one; runtimes must exit in reverse "
                    "order of entry"
                )
            _active_stack.pop()

    # ------------------------------------------------------------------
    # allocation helpers
    # ------------------------------------------------------------------
    def new(self, value: Any) -> OrthrusPtr:
        """Allocate user data outside any closure (control-path setup)."""
        return OrthrusPtr(self.heap, self.heap.allocate(value))

    def receive(self, value: Any, checksum: int) -> OrthrusPtr:
        """Materialize user data received over the control path (§3.4)."""
        return OrthrusPtr(
            self.heap, self.heap.allocate(value, checksum_override=checksum)
        )

    # ------------------------------------------------------------------
    # closure execution (APP side)
    # ------------------------------------------------------------------
    def current_core(self) -> Core:
        """The application core control-path code should execute on: the
        thread's bound core, or the first application core."""
        bound = getattr(self._bound, "core_id", None)
        if bound is not None:
            return self.machine.core(bound)
        return self.scheduler.app_cores[0]

    def bind_core(self, core_id: int) -> "_CoreBinding":
        """Pin closures run on this thread to one application core.

        Used by multi-threaded drivers (and the discrete-event harness) to
        model several application threads on distinct cores.
        """
        return _CoreBinding(self, core_id)

    def run_closure(
        self,
        meta: ClosureMeta,
        args: tuple,
        kwargs: dict,
        caller: str = "<unknown>",
        core: Core | None = None,
    ) -> Any:
        if core is None:
            bound = getattr(self._bound, "core_id", None)
            core = self.machine.core(bound) if bound is not None else self.scheduler.next_app_core()
        self._seq += 1
        start = self.clock.now()
        log = ClosureLog(
            seq=self._seq,
            closure_name=meta.name,
            caller=caller,
            func=meta.fn,
            args=args,
            kwargs=kwargs,
            start_time=start,
            core_id=core.core_id,
            compare=meta.compare,
        )
        self.reclaimer.closure_started(log.seq, start)
        ctx = ExecutionContext(
            ExecutionContext.APP,
            core=core,
            heap=self.heap,
            log=log,
            verify_checksums=self.heap._checksums,
            detector=self._on_detection,
            obs=self.obs,
        )
        prof = profiling_active()
        try:
            if prof.enabled:
                with prof.scope("machine.execute"), ctx:
                    retval = meta.fn(*args, **kwargs)
            else:
                with ctx:
                    retval = meta.fn(*args, **kwargs)
        except BaseException:
            # Fail-stop: the closure crashed.  Close its window so its
            # versions do not leak, then let the crash propagate.
            self.reclaimer.closure_finished(log.seq)
            raise
        log.retval = ctx.canonicalize(retval)
        log.deletes = [ctx.canon_obj(oid) for oid in log.deletes]
        log.end_time = self.clock.now()
        obs = self.obs
        if obs.enabled:
            labels = {"closure": meta.name, "caller": caller}
            obs.registry.counter(
                "orthrus_closures_total", labels, help="APP closure executions"
            ).inc()
            obs.registry.counter(
                "orthrus_closure_cycles_total", labels,
                help="cycles the APP executions consumed",
            ).inc(log.app_cycles)
            obs.tracer.emit(
                "closure.run",
                ts=start,
                closure=meta.name,
                caller=caller,
                seq=log.seq,
                core=core.core_id,
                end_time=log.end_time,
                cycles=log.app_cycles,
            )
            if self.mode != "external":
                # External drivers (the DES harness) record the span
                # themselves — their closure.run extends to the simulated
                # enqueue point, which this runtime cannot see.
                obs.spans.record(
                    "closure.run",
                    log.seq,
                    start,
                    log.end_time,
                    closure=meta.name,
                    core=core.core_id,
                )
        if not self._hold_versions:
            self.reclaimer.closure_finished(log.seq)
        if self._on_log is not None:
            self._on_log(log)
        if self.responder is not None:
            self.responder.on_log(log)
        if self.mode == "inline":
            val_core = self.scheduler.validation_core_for(core.core_id)
            outcome = self.validator.validate(log, val_core)
            self.sampler.on_validated(log, self.clock.now())
            self.latency.record(log.closure_name, outcome.latency)
            self.outcomes.append(outcome)
            self._record_verdict_spans(log, outcome, validate_from=log.end_time)
            if self.responder is not None:
                self.responder.on_outcome(outcome)
        elif self.mode == "queued":
            pushed = self.queues.push(log, self.clock.now())
            if pushed.would_block:
                # block-producer backpressure: the library runtime has no
                # producer thread to park, so the closure's own thread pays
                # for an inline validation instead of losing the log.
                val_core = self.scheduler.validation_core_for(core.core_id)
                outcome = self.validator.validate(log, val_core)
                self.sampler.on_validated(log, self.clock.now())
                self.latency.record(log.closure_name, outcome.latency)
                self.outcomes.append(outcome)
                self._record_verdict_spans(
                    log, outcome, validate_from=log.end_time
                )
                if self.responder is not None:
                    self.responder.on_outcome(outcome)
            elif pushed.dropped is not None:
                # reject drops the incoming log, drop-oldest the evicted
                # head; either way the window closes with a reason.
                self.validator.drop(pushed.dropped, pushed.reason)
        if self.timeseries is not None:
            self.timeseries.sample(self.clock.now())
        # mode == "external": an external driver (the discrete-event
        # harness, or an RBV baseline that validates whole requests) owns
        # the log via the _on_log hook; nothing is queued here.
        return retval

    def _record_verdict_spans(
        self, log: ClosureLog, outcome: ValidationOutcome, validate_from: float
    ) -> None:
        """Close a log's causal chain: a ``validate`` interval ending at
        the verdict plus the zero-length ``verdict`` marker."""
        obs = self.obs
        if not obs.enabled:
            return
        now = self.clock.now()
        obs.spans.record(
            "validate",
            log.seq,
            validate_from,
            now,
            closure=log.closure_name,
        )
        obs.spans.record(
            "verdict",
            log.seq,
            now,
            now,
            closure=log.closure_name,
            passed=outcome.passed,
        )

    # ------------------------------------------------------------------
    # validation pumping (queued mode)
    # ------------------------------------------------------------------
    def pump(self, max_logs: int | None = None) -> int:
        """Drive the validator over pending logs; returns logs processed.

        Applies the sampler to each dequeued log: skipped logs close their
        active window without re-execution (§3.5).
        """
        processed = 0
        obs = self.obs
        while max_logs is None or processed < max_logs:
            log = self._pop_any()
            if log is None:
                break
            processed += 1
            now = self.clock.now()
            delay = self.queues.queue_delay(now)
            prof = profiling_active()
            t0 = prof.now() if prof.enabled else 0
            self.sampler.observe_delay(delay)
            decision = sampler_decision(self.sampler, log, now)
            if prof.enabled:
                prof.lap("sampler.decide", t0)
            if obs.enabled:
                obs.registry.histogram(
                    "orthrus_queue_delay_seconds",
                    help="age of the oldest pending log at each dequeue",
                ).record(delay)
                obs.registry.counter(
                    "orthrus_sampler_decisions_total",
                    {
                        "decision": "validate" if decision.validate else "skip",
                        "reason": decision.reason,
                    },
                    help="sampler verdicts by outcome and reason",
                ).inc()
                obs.tracer.emit(
                    "sampler.decision",
                    ts=now,
                    closure=log.closure_name,
                    caller=log.caller,
                    seq=log.seq,
                    validate=decision.validate,
                    reason=decision.reason,
                    rate=getattr(self.sampler, "rate", 1.0),
                )
                obs.spans.record(
                    "queue.wait",
                    log.seq,
                    log.enqueue_time,
                    now,
                    closure=log.closure_name,
                )
            if not decision.validate:
                self.validator.skip(log)
                if obs.enabled:
                    obs.spans.record(
                        "skip", log.seq, now, now,
                        closure=log.closure_name, reason=decision.reason,
                    )
                continue
            app_core_id = log.core_id
            val_core = self.scheduler.validation_core_for(app_core_id)
            outcome = self.validator.validate(log, val_core)
            self.sampler.on_validated(log, self.clock.now())
            self.latency.record(log.closure_name, outcome.latency)
            self.outcomes.append(outcome)
            self._record_verdict_spans(log, outcome, validate_from=now)
            if self.responder is not None:
                self.responder.on_outcome(outcome)
            if self.timeseries is not None:
                self.timeseries.sample(self.clock.now())
        return processed

    def drain(self) -> int:
        """Validate everything still pending (end-of-run flush)."""
        return self.pump(max_logs=None)

    def _pop_any(self) -> ClosureLog | None:
        # Round-robin across queues: always starting at queue 0 would drain
        # it first and starve later queues in multi-queue configurations.
        queues = self.queues.queues
        n = len(queues)
        for offset in range(n):
            index = (self._pop_cursor + offset) % n
            log = queues[index].pop()
            if log is not None:
                self._pop_cursor = (index + 1) % n
                obs = self.obs
                if obs.enabled:
                    obs.registry.counter(
                        "orthrus_queue_pops_total",
                        {"queue": str(index)},
                        help="closure logs dequeued per validation queue",
                    ).inc()
                    obs.tracer.emit(
                        "queue.pop",
                        ts=self.clock.now(),
                        queue=index,
                        seq=log.seq,
                        closure=log.closure_name,
                        depth=len(queues[index]),
                    )
                return log
        return None

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def _on_detection(self, event: DetectionEvent) -> None:
        self.report.record(event)
        if self.obs.enabled:
            self.obs.registry.counter(
                "orthrus_detections_total",
                {"kind": event.kind, "closure": event.closure},
                help="SDC detections by kind",
            ).inc()
        # Response runs before the abort policy so the incident record is
        # complete even when the strict deployment stops the application.
        if self.responder is not None:
            self.responder.on_detection(event)
        # Canary probes are *supposed* to mismatch; they prove liveness,
        # they do not stop the application.
        if self.detection_policy == "abort" and not is_canary_closure(event.closure):
            if event.kind == "checksum":
                raise ChecksumMismatch(event.detail, closure=event.closure)
            raise ValidationMismatch(event.detail, closure=event.closure)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def detections(self) -> int:
        return self.report.count()

    @property
    def validations(self) -> int:
        return self.validator.validated_count

    def reset_report(self) -> None:
        self.report.clear()


class _CoreBinding:
    def __init__(self, runtime: OrthrusRuntime, core_id: int):
        self._runtime = runtime
        self._core_id = core_id
        self._previous: int | None = None

    def __enter__(self):
        bound = self._runtime._bound
        self._previous = getattr(bound, "core_id", None)
        bound.core_id = self._core_id
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._runtime._bound.core_id = self._previous
