"""Orthrus runtime: sampler, scheduler, safe mode, and the main façade."""

from repro.runtime.degradation import (
    DegradationConfig,
    DegradationController,
    DegradationLevel,
    FaultToleranceConfig,
)
from repro.runtime.orthrus import OrthrusRuntime, active
from repro.runtime.safemode import SafeModePolicy
from repro.runtime.sampling import (
    COVERAGE_REASONS,
    AdaptiveSampler,
    AlwaysSampler,
    RandomSampler,
    SampleDecision,
    SamplerConfig,
    sampler_decision,
)
from repro.runtime.scheduler import LatencyTracker, Scheduler

__all__ = [
    "AdaptiveSampler",
    "AlwaysSampler",
    "COVERAGE_REASONS",
    "DegradationConfig",
    "DegradationController",
    "DegradationLevel",
    "FaultToleranceConfig",
    "LatencyTracker",
    "OrthrusRuntime",
    "RandomSampler",
    "SafeModePolicy",
    "SampleDecision",
    "SamplerConfig",
    "Scheduler",
    "active",
    "sampler_decision",
]
