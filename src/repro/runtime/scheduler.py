"""Validation-core scheduling (§3.5).

The scheduler owns the split between application cores and validation
cores, places each validation on a core *different from* the APP core
(mercurial defects live in core-private units, so re-using the core would
corrupt both runs identically), prefers the same NUMA node (closure logs
stay hot in the shared L3), and tracks per-closure validation latency over
a sliding window of eight logs to drive dynamic scaling: a closure whose
latency runs 50% above the global average asks for an extra validation
thread.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError
from repro.machine.core import Core
from repro.machine.cpu import Machine


class Scheduler:
    """Assigns APP and VAL work to cores on one machine."""

    def __init__(
        self,
        machine: Machine,
        app_cores: list[int],
        validation_cores: list[int],
    ):
        if not app_cores:
            raise ConfigurationError("at least one application core required")
        if not validation_cores:
            raise ConfigurationError("at least one validation core required")
        overlap = set(app_cores) & set(validation_cores)
        if overlap:
            raise ConfigurationError(
                f"cores {sorted(overlap)} assigned to both APP and validation"
            )
        for core_id in list(app_cores) + list(validation_cores):
            if not 0 <= core_id < len(machine):
                raise ConfigurationError(f"core {core_id} not present on machine")
        self.machine = machine
        self.app_cores = [machine.core(i) for i in app_cores]
        self.validation_cores = [machine.core(i) for i in validation_cores]
        #: the configured pools, kept for :meth:`restore_core` so a core
        #: re-admitted after probation rejoins the role it was assigned
        self._configured_app = list(self.app_cores)
        self._configured_val = list(self.validation_cores)
        self._next_app = 0
        self._next_val = 0

    def next_app_core(self) -> Core:
        core = self.app_cores[self._next_app]
        self._next_app = (self._next_app + 1) % len(self.app_cores)
        return core

    # ------------------------------------------------------------------
    # quarantine support (repro.response)
    # ------------------------------------------------------------------
    def remove_core(self, core_id: int) -> None:
        """Pull a core from both scheduling pools (quarantine).

        Refuses to empty a pool: a deployment cannot run with zero
        application cores or zero validation cores, so quarantining the
        last core of either role is rejected and the caller must keep the
        suspect in service (flagged, but scheduled).
        """
        in_app = any(c.core_id == core_id for c in self.app_cores)
        in_val = any(c.core_id == core_id for c in self.validation_cores)
        if in_app and len(self.app_cores) == 1:
            raise ConfigurationError(
                f"cannot quarantine core {core_id}: it is the last application core"
            )
        if in_val and len(self.validation_cores) == 1:
            raise ConfigurationError(
                f"cannot quarantine core {core_id}: it is the last validation core"
            )
        if in_app:
            self.app_cores = [c for c in self.app_cores if c.core_id != core_id]
            self._next_app %= len(self.app_cores)
        if in_val:
            self.validation_cores = [
                c for c in self.validation_cores if c.core_id != core_id
            ]

    def restore_core(self, core_id: int) -> None:
        """Return a quarantined core to the pools it was configured into
        (probation passed), preserving the configured ordering."""
        if any(c.core_id == core_id for c in self._configured_app):
            if not any(c.core_id == core_id for c in self.app_cores):
                self.app_cores = [
                    c
                    for c in self._configured_app
                    if c in self.app_cores or c.core_id == core_id
                ]
        if any(c.core_id == core_id for c in self._configured_val):
            if not any(c.core_id == core_id for c in self.validation_cores):
                self.validation_cores = [
                    c
                    for c in self._configured_val
                    if c in self.validation_cores or c.core_id == core_id
                ]

    def in_service(self, core_id: int) -> bool:
        """Is the core currently schedulable in either role?"""
        return any(
            c.core_id == core_id for c in self.app_cores + self.validation_cores
        )

    def validation_core_for(self, app_core_id: int) -> Core:
        """A validation core ≠ the APP core, same NUMA node when possible."""
        app_core = self.machine.core(app_core_id)
        candidates = [c for c in self.validation_cores if c.core_id != app_core_id]
        if not candidates:
            raise ConfigurationError(
                "no validation core distinct from the application core"
            )
        same_node = [c for c in candidates if c.numa_node == app_core.numa_node]
        pool = same_node or candidates
        core = pool[self._next_val % len(pool)]
        self._next_val += 1
        return core

    def queue_index_for(self, core: Core) -> int:
        return self.validation_cores.index(core)


class LatencyTracker:
    """Per-closure validation latency over the last eight logs (§3.5).

    Drives dynamic scaling: :meth:`closures_needing_help` returns the
    closures whose recent average latency exceeds the global average by the
    configured ratio — the signal to launch another validation thread.
    """

    WINDOW = 8

    def __init__(self, help_ratio: float = 1.5):
        if help_ratio <= 1.0:
            raise ConfigurationError("help_ratio must exceed 1.0")
        self._help_ratio = help_ratio
        self._windows: dict[str, deque[float]] = {}
        self._global_sum = 0.0
        self._global_count = 0

    def record(self, closure_name: str, latency: float) -> None:
        window = self._windows.get(closure_name)
        if window is None:
            window = self._windows[closure_name] = deque(maxlen=self.WINDOW)
        window.append(latency)
        self._global_sum += latency
        self._global_count += 1

    @property
    def global_average(self) -> float:
        if self._global_count == 0:
            return 0.0
        return self._global_sum / self._global_count

    def closure_average(self, closure_name: str) -> float:
        window = self._windows.get(closure_name)
        if not window:
            return 0.0
        return sum(window) / len(window)

    def closures_needing_help(self) -> list[str]:
        average = self.global_average
        if average == 0.0:
            return []
        threshold = average * self._help_ratio
        return [
            name
            for name, window in self._windows.items()
            if len(window) == self.WINDOW
            and sum(window) / len(window) > threshold
        ]
