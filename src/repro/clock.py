"""Time sources.

Versioned memory, the sampler, and the validator all reason about *when*
things happened (visible windows, active windows, validation latency).  In
the paper these are wall-clock microseconds; here they are virtual times
supplied by a clock object so the same logic runs under the discrete-event
simulator (which supplies simulated seconds) and under plain unit tests
(which use a logical counter).
"""

from __future__ import annotations

from typing import Protocol


class Clock(Protocol):
    def now(self) -> float: ...


class LogicalClock:
    """A monotonically increasing counter; every ``tick()`` advances it."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def tick(self, delta: float = 1.0) -> float:
        if delta < 0:
            raise ValueError("clock cannot move backwards")
        self._now += delta
        return self._now


class ManualClock(LogicalClock):
    """A clock tests can set directly."""

    def set(self, value: float) -> None:
        if value < self._now:
            raise ValueError("clock cannot move backwards")
        self._now = float(value)
