"""Developer-facing annotations: ``@closure`` and ``@user_data``.

These are the only two things a developer must do to protect an
application (§3.1): mark the classes that represent user data, and mark
the data operators — the units of validation.  The decorators are the
Python stand-in for the paper's ``#pragma closure`` / ``#pragma user-data``
plus the LLVM transformation pass: they register metadata, run the static
analyses of :mod:`repro.closures.analysis`, and route invocation through
the active :class:`~repro.runtime.orthrus.OrthrusRuntime`.
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass
from typing import Callable

from repro.closures.analysis import analyze_escapes, infer_units
from repro.errors import NoActiveContext
from repro.obs.profiling import active as profiling_active
from repro.machine.units import Unit

#: All annotated closures, keyed by name — the campaign's injection targets
#: and the sampler's universe.
CLOSURE_REGISTRY: dict[str, "ClosureMeta"] = {}

#: All annotated user-data classes.
USER_DATA_REGISTRY: dict[str, type] = {}


@dataclass
class ClosureMeta:
    """Compile-time record for one annotated data operator."""

    fn: Callable
    name: str
    compare: Callable | None
    static_units: frozenset[Unit]
    escaping: frozenset[str]
    local_allocs: frozenset[str]

    @property
    def error_prone(self) -> bool:
        """Statically tagged as containing fp/vector instructions (§3.5)."""
        return any(unit.error_prone for unit in self.static_units)


def closure(fn: Callable | None = None, *, name: str | None = None, compare: Callable | None = None):
    """Annotate a function as a data operator (a validation unit).

    The wrapped function must follow the single-threaded execution model of
    §3.1.  ``compare`` optionally overrides result comparison (the paper's
    ``==`` overload on the output pointer); the default is a structural /
    bitwise comparison.

    Invocation semantics:

    * called while another closure is executing → runs inline, as part of
      the enclosing closure's re-execution scope;
    * called under an active runtime → the runtime executes it on an
      application core, produces a closure log, and enqueues it for
      validation;
    * called bare → error, mirroring code compiled against the Orthrus
      runtime being run without it.
    """

    def decorate(func: Callable) -> Callable:
        closure_name = name or func.__qualname__
        with profiling_active().scope("closures.analysis"):
            escapes = analyze_escapes(func)
            meta = ClosureMeta(
                fn=func,
                name=closure_name,
                compare=compare,
                static_units=infer_units(func),
                escaping=frozenset(escapes.escaping),
                local_allocs=frozenset(escapes.local),
            )
        CLOSURE_REGISTRY[closure_name] = meta

        def wrapper(*args, **kwargs):
            from repro.closures import context as context_mod
            from repro.runtime import orthrus as runtime_mod

            if context_mod.current() is not None:
                return func(*args, **kwargs)
            runtime = runtime_mod.active()
            if runtime is None:
                raise NoActiveContext(
                    f"closure {closure_name!r} invoked without an active "
                    "OrthrusRuntime; wrap the call in `with runtime:`"
                )
            caller = sys._getframe(1).f_code.co_name
            return runtime.run_closure(meta, args, kwargs, caller=caller)

        wrapper.__name__ = func.__name__
        wrapper.__qualname__ = func.__qualname__
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func
        wrapper.__orthrus_closure__ = meta
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate


def user_data(cls: type) -> type:
    """Annotate a class as user data (§3.1).

    Instances are intended to live in versioned memory (allocate them with
    :func:`~repro.memory.pointer.orthrus_new`); the class gains a
    ``__orthrus_payload__`` method used by checksumming and comparison —
    the analogue of inheriting from ``OrthrusObj`` with its header CRC
    (Listing 7).
    """
    if dataclasses.is_dataclass(cls):
        def payload(self):
            return tuple(
                getattr(self, f.name) for f in dataclasses.fields(self)
            )
    else:
        def payload(self):
            return tuple(sorted(self.__dict__.items()))

    cls.__orthrus_payload__ = payload
    cls.__orthrus_user_data__ = True
    if not hasattr(cls, "__eq__") or cls.__eq__ is object.__eq__:
        cls.__eq__ = lambda self, other: (
            isinstance(other, type(self))
            and other.__orthrus_payload__() == self.__orthrus_payload__()
        )
        cls.__hash__ = lambda self: hash(self.__orthrus_payload__())
    USER_DATA_REGISTRY[cls.__qualname__] = cls
    return cls


def is_user_data(obj: object) -> bool:
    return getattr(type(obj), "__orthrus_user_data__", False)
