"""Closure logs: the self-contained unit of validation work.

A closure log (Listing 6) is produced at the end of each closure execution
and gives the validator everything needed to re-execute the closure later,
out of order, with no interaction with the application: the exact input
versions, the output versions to compare against, the recorded results of
non-deterministic system calls, and a reference to the closure's code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.machine.instruction import Trace
from repro.machine.units import Unit
from repro.memory.version import approx_size

#: Fixed per-log header cost in the memory accounting (pointers, ids,
#: timestamps — the paper's cache-locality-aware log allocator packs these).
LOG_HEADER_BYTES = 96


@dataclass(slots=True)
class ClosureLog:
    """Record of one closure execution (the APP side).

    Attributes:
        seq: global execution sequence number — the closure id used by
            shared-data tracking and the reclamation queue.
        closure_name: qualified name of the annotated closure.
        caller: label of the invoking context; the sampler keys recency by
            the (closure, caller) pair (§3.5).
        func: the closure's code — the ``closure_class`` reference.
        args/kwargs: invocation inputs (Orthrus pointers and plain values).
        inputs: obj_id → version_id pinned at first load (§3.1).
        output_versions: version ids created by stores, in creation order.
        output_objects: obj_id owning each output version, parallel to
            ``output_versions`` — kept on the log so blast-radius analysis
            can attribute outputs to objects even after the versions
            themselves have been reclaimed.
        allocated: obj_ids created by OrthrusNew, in creation order.
        deletes: obj_ids deleted, in order.
        retval: canonicalized return value (pointers canonicalized by the
            execution context so APP and VAL forms are comparable).
        syscalls: recorded results of intercepted non-deterministic calls,
            replayed in order during validation (§2.3, §3.1).
        start_time/end_time: the closure's active-window open (§3.6) and
            the log-creation time.
        core_id: core that ran the APP execution — validation must pick a
            different one.
        trace: instruction accounting for tagging and cycle charging.
    """

    seq: int
    closure_name: str
    caller: str
    func: Callable | None = None
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    inputs: dict[int, int] = field(default_factory=dict)
    output_versions: list[int] = field(default_factory=list)
    output_objects: list[int] = field(default_factory=list)
    allocated: list[int] = field(default_factory=list)
    deletes: list[int] = field(default_factory=list)
    retval: Any = None
    syscalls: list[Any] = field(default_factory=list)
    start_time: float = 0.0
    end_time: float = 0.0
    core_id: int = -1
    trace: Trace | None = None
    #: set by the queue when the log is pushed (detection-latency metric)
    enqueue_time: float = 0.0
    #: set by the validator when validation completes; None while pending
    validated_time: float | None = None
    #: optional custom output comparison (the ``==`` overload of §3.3)
    compare: Callable | None = None

    @property
    def units(self) -> frozenset[Unit]:
        if self.trace is None:
            return frozenset()
        return frozenset(u for u, n in self.trace.unit_counts.items() if n)

    @property
    def error_prone(self) -> bool:
        """True when the closure executed fp or vector instructions —
        the instruction classes real-world SDC studies flag (§3.5)."""
        return any(unit.error_prone for unit in self.units)

    @property
    def app_cycles(self) -> int:
        return self.trace.cycles if self.trace is not None else 0

    def approx_bytes(self) -> int:
        """Approximate log footprint for the memory-pressure experiments."""
        size = LOG_HEADER_BYTES
        size += 16 * (len(self.inputs) + len(self.output_versions))
        size += 8 * (len(self.allocated) + len(self.deletes))
        for result in self.syscalls:
            size += approx_size(result)
        return size

    def __repr__(self) -> str:
        return (
            f"ClosureLog(seq={self.seq}, {self.closure_name} from {self.caller}, "
            f"in={len(self.inputs)}, out={len(self.output_versions)})"
        )
