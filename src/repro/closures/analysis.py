"""Static closure analysis: the Python analogue of the Orthrus compiler pass.

The LLVM-based Orthrus compiler performs two analyses over each annotated
closure (§3.2, §3.5): it identifies the instruction types the closure
contains — tagging fp/vector closures for elevated validation priority —
and runs an escape analysis so non-escaping temporaries stay on the private
heap.  Here the same information is recovered from CPython bytecode and
AST:

* :func:`infer_units` scans the closure's bytecode (including nested/helper
  code objects) for ops-API attribute accesses (``fadd``, ``vdot``,
  ``atomic_add``, ...) and maps them to functional units.
* :func:`analyze_escapes` inspects the AST to report which
  ``orthrus_new`` allocations escape the closure (returned or stored into
  user data) versus staying local — the paper's private-heap optimization.
"""

from __future__ import annotations

import ast
import dis
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.machine.units import Unit

#: ops-API attribute → functional unit.  Mirrors the opcode classification
#: rules of the profiling phase (§A.3.2).
OP_UNITS: dict[str, Unit] = {
    # ALU
    "add": Unit.ALU, "sub": Unit.ALU, "mul": Unit.ALU, "div": Unit.ALU,
    "mod": Unit.ALU, "xor": Unit.ALU, "and_": Unit.ALU, "or_": Unit.ALU,
    "shl": Unit.ALU, "shr": Unit.ALU, "lt": Unit.ALU, "le": Unit.ALU,
    "eq": Unit.ALU, "hash64": Unit.ALU, "copy": Unit.ALU,
    # FPU
    "fadd": Unit.FPU, "fsub": Unit.FPU, "fmul": Unit.FPU, "fdiv": Unit.FPU,
    # SIMD
    "vadd": Unit.SIMD, "vsub": Unit.SIMD, "vmul": Unit.SIMD,
    "vdot": Unit.SIMD, "vsum": Unit.SIMD,
    # CACHE
    "atomic_read": Unit.CACHE, "atomic_write": Unit.CACHE,
    "atomic_add": Unit.CACHE, "cas": Unit.CACHE,
    "load_shared": Unit.CACHE, "store_shared": Unit.CACHE,
}


def _iter_code_objects(code) -> Iterator:
    yield code
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            yield from _iter_code_objects(const)


def infer_units(fn: Callable) -> frozenset[Unit]:
    """Functional units whose instructions ``fn`` may issue.

    A static over-approximation: any ops-API attribute name that appears in
    the bytecode counts, whether or not the path executes.  This matches
    the compile-time tagging of §3.5 (which also cannot know dynamic
    frequencies) and is refined at runtime by the trace on each log.
    """
    units: set[Unit] = set()
    try:
        code = fn.__code__
    except AttributeError:
        return frozenset()
    for obj in _iter_code_objects(code):
        for instruction in dis.get_instructions(obj):
            if instruction.opname in ("LOAD_ATTR", "LOAD_METHOD"):
                name = instruction.argval
                unit = OP_UNITS.get(name)
                if unit is not None:
                    units.add(unit)
    return frozenset(units)


@dataclass
class EscapeReport:
    """Result of the escape-analysis pass over one closure.

    Attributes:
        escaping: local names bound to ``orthrus_new`` results that may
            outlive the closure (returned, stored into user data, written
            to an enclosing scope) — these must live in versioned memory.
        local: allocation-bound names proven not to escape — eligible for
            the private heap (their corruption is only caught if it
            propagates to user data, §3.2).
    """

    escaping: set[str] = field(default_factory=set)
    local: set[str] = field(default_factory=set)

    @property
    def private_heap_eligible(self) -> frozenset[str]:
        return frozenset(self.local)


_ALLOC_CALLEES = {"orthrus_new", "allocate"}


def _allocation_targets(tree: ast.AST) -> set[str]:
    targets: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        callee = call.func
        name = callee.attr if isinstance(callee, ast.Attribute) else getattr(callee, "id", None)
        if name not in _ALLOC_CALLEES:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                targets.add(target.id)
    return targets


def analyze_escapes(fn: Callable) -> EscapeReport:
    """Classify ``orthrus_new`` allocations in ``fn`` as escaping or local.

    An allocation escapes when its name is returned, passed to a call other
    than ``load``/``store`` on itself, stored into a container/attribute,
    or declared nonlocal/global.  Conservative in the escape direction
    (like the real pass): anything ambiguous is treated as escaping.
    """
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return EscapeReport()
    tree = ast.parse(source)
    allocated = _allocation_targets(tree)
    if not allocated:
        return EscapeReport()

    escaping: set[str] = set()

    class _Visitor(ast.NodeVisitor):
        def visit_Return(self, node: ast.Return) -> None:
            for name in _names_in(node.value):
                if name in allocated:
                    escaping.add(name)
            self.generic_visit(node)

        def visit_Call(self, node: ast.Call) -> None:
            # ptr.load()/ptr.store(x) on the allocation itself is not an
            # escape; passing the pointer to any other call is.
            safe_self = (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in ("load", "store", "delete")
            )
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for name in _names_in(arg):
                    if name in allocated:
                        escaping.add(name)
            if not safe_self and isinstance(node.func, ast.Attribute):
                value = node.func.value
                if isinstance(value, ast.Name) and value.id in allocated:
                    escaping.add(value.id)
            self.generic_visit(node)

        def visit_Assign(self, node: ast.Assign) -> None:
            # Storing the pointer into a subscript/attribute lets it outlive
            # the frame.
            stores_out = any(
                isinstance(t, (ast.Subscript, ast.Attribute)) for t in node.targets
            )
            if stores_out:
                for name in _names_in(node.value):
                    if name in allocated:
                        escaping.add(name)
            self.generic_visit(node)

        def visit_Global(self, node: ast.Global) -> None:
            escaping.update(n for n in node.names if n in allocated)

        def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
            escaping.update(n for n in node.names if n in allocated)

    _Visitor().visit(tree)
    return EscapeReport(escaping=escaping, local=allocated - escaping)


def _names_in(node: ast.AST | None) -> Iterator[str]:
    if node is None:
        return
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
