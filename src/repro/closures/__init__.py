"""Closure annotations, logs, and execution contexts."""

from repro.closures.analysis import EscapeReport, analyze_escapes, infer_units
from repro.closures.annotation import (
    CLOSURE_REGISTRY,
    USER_DATA_REGISTRY,
    ClosureMeta,
    closure,
    is_user_data,
    user_data,
)
from repro.closures.context import ExecutionContext, current, ops, syscall
from repro.closures.log import ClosureLog
from repro.closures.syscalls import sys_randint, sys_random, sys_read, sys_time, sys_write

__all__ = [
    "CLOSURE_REGISTRY",
    "ClosureLog",
    "ClosureMeta",
    "EscapeReport",
    "ExecutionContext",
    "USER_DATA_REGISTRY",
    "analyze_escapes",
    "closure",
    "current",
    "infer_units",
    "is_user_data",
    "ops",
    "syscall",
    "sys_randint",
    "sys_random",
    "sys_read",
    "sys_time",
    "sys_write",
    "user_data",
]
