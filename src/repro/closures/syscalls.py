"""Record-and-replay wrappers for non-deterministic calls (§2.3, §3.1).

A closure may need a random number, the time, or an external-device
interaction.  Orthrus intercepts these, records their results in the
closure log, and replays the recorded values during validation rather than
re-executing them — system calls are outside the validation boundary (their
instruction footprint is ~0.04% of execution, §2.3).
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.closures.context import syscall
from repro.determinism import derived_rng

#: Fallback stream for callers that pass no rng.  A *seeded* instance, not
#: the process-global ``random`` module: APP-side draws are recorded in the
#: closure log either way, but an unseeded source makes the whole run
#: unreplayable from its config (the determinism audit forbids it).
_DEFAULT_RNG = derived_rng(0, "syscalls-default")


def sys_random(rng: random.Random | None = None) -> float:
    """Recorded random number in [0, 1)."""
    source = rng if rng is not None else _DEFAULT_RNG
    return syscall("random", source.random)


def sys_randint(low: int, high: int, rng: random.Random | None = None) -> int:
    source = rng if rng is not None else _DEFAULT_RNG
    return syscall("randint", lambda: source.randint(low, high))


def sys_time() -> float:
    """Recorded timestamp."""
    return syscall("time", time.time)


def sys_read(fn: Callable[[], bytes]) -> bytes:
    """Recorded read from an external device (socket, disk)."""
    return syscall("read", fn)


def sys_write(fn: Callable[[], int]) -> int:
    """Recorded write to an external device; returns bytes written."""
    return syscall("write", fn)
