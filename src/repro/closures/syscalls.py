"""Record-and-replay wrappers for non-deterministic calls (§2.3, §3.1).

A closure may need a random number, the time, or an external-device
interaction.  Orthrus intercepts these, records their results in the
closure log, and replays the recorded values during validation rather than
re-executing them — system calls are outside the validation boundary (their
instruction footprint is ~0.04% of execution, §2.3).
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.closures.context import syscall


def sys_random(rng: random.Random | None = None) -> float:
    """Recorded random number in [0, 1)."""
    source = rng.random if rng is not None else random.random
    return syscall("random", source)


def sys_randint(low: int, high: int, rng: random.Random | None = None) -> int:
    source = rng if rng is not None else random
    return syscall("randint", lambda: source.randint(low, high))


def sys_time() -> float:
    """Recorded timestamp."""
    return syscall("time", time.time)


def sys_read(fn: Callable[[], bytes]) -> bytes:
    """Recorded read from an external device (socket, disk)."""
    return syscall("read", fn)


def sys_write(fn: Callable[[], int]) -> int:
    """Recorded write to an external device; returns bytes written."""
    return syscall("write", fn)
