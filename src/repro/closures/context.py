"""Execution contexts: binding a closure run to a core, a heap, and a log.

Two modes exist, mirroring Figure 2:

* **APP** — the original execution.  Stores create versions in the shared
  user-data space, first loads pin input versions into the closure log and
  verify the header CRC (control-path integrity, §3.4), and system-call
  results are recorded.
* **VAL** — re-execution by the validator on a *different core*.  Loads
  read the versions pinned by the log (or, for objects the original run
  never touched, the snapshot visible at the closure's start time); stores
  land in the validator's private heap; system calls are replayed from the
  log instead of executed (§3.3).

The active context is tracked per-thread; Orthrus primitives
(:class:`~repro.memory.pointer.OrthrusPtr`, ``ops()``, ``syscall()``) look
it up implicitly, the way the compiled-in runtime calls do in the C++
implementation.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.detection import DetectionEvent
from repro.errors import ChecksumMismatch, NoActiveContext
from repro.machine.core import Core
from repro.machine.instruction import Trace
from repro.memory.checksum import checksum_of
from repro.memory.heap import PrivateHeap, VersionedHeap
from repro.obs.observability import NULL_OBS
from repro.closures.log import ClosureLog

_tls = threading.local()


def current() -> "ExecutionContext | None":
    """The context of the closure executing on this thread, if any."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        return None
    return stack[-1]


def require() -> "ExecutionContext":
    ctx = current()
    if ctx is None:
        raise NoActiveContext("no closure is executing on this thread")
    return ctx


def ops() -> Core:
    """The core the current closure is executing on.

    Data-path code issues its instructions through this handle, e.g.
    ``ops().alu.hash64(key)`` — the Python analogue of code the Orthrus
    compiler lowered onto a specific core's functional units.
    """
    return require().core


def syscall(name: str, fn: Callable[[], Any]) -> Any:
    """Execute (APP) or replay (VAL) a non-deterministic call (§2.3).

    In APP mode ``fn`` runs and its result is recorded in the closure log;
    in VAL mode the recorded result is returned without executing ``fn`` —
    Orthrus never re-executes system calls.
    """
    return require().syscall(name, fn)


class ExecutionContext:
    """State for one closure execution (APP) or re-execution (VAL)."""

    APP = "app"
    VAL = "val"

    def __init__(
        self,
        mode: str,
        core: Core,
        heap: VersionedHeap,
        log: ClosureLog,
        private: PrivateHeap | None = None,
        verify_checksums: bool = True,
        detector: Callable[[DetectionEvent], None] | None = None,
        record_sites: bool = False,
        obs=None,
    ):
        if mode not in (self.APP, self.VAL):
            raise ValueError(f"unknown context mode {mode!r}")
        if mode == self.VAL and private is None:
            private = PrivateHeap()
        self.mode = mode
        self.core = core
        self.heap = heap
        self.log = log
        self.private = private
        self.verify_checksums = verify_checksums
        self.detector = detector
        self.record_sites = record_sites
        self.obs = obs if obs is not None else NULL_OBS
        self._verified: set[int] = set()
        self._alloc_positions: dict[int, int] = {}
        self._syscall_cursor = 0
        #: instruction trace, available after the context exits
        self.trace: Trace | None = None

    # ------------------------------------------------------------------
    # scoping
    # ------------------------------------------------------------------
    def __enter__(self) -> "ExecutionContext":
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self)
        trace = Trace(record_sites=self.record_sites)
        self.core.begin(self.log.closure_name, trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _tls.stack.pop()
        self.trace = self.core.end()
        if self.mode == self.APP:
            self.log.trace = self.trace

    # ------------------------------------------------------------------
    # pointer operations
    # ------------------------------------------------------------------
    def allocate(self, value: Any, checksum_override: int | None = None):
        from repro.memory.pointer import OrthrusPtr

        if self.mode == self.APP:
            obj_id = self.heap.allocate(
                value, creator=self.log.seq, checksum_override=checksum_override
            )
            self.log.allocated.append(obj_id)
            version = self.heap.latest(obj_id)
            self.log.output_versions.append(version.version_id)
            self.log.output_objects.append(obj_id)
            if checksum_override is None:
                # Objects created inside the closure need no checksum probe
                # on first load — they never crossed the control path.  An
                # object materialized from the network (override set) keeps
                # its transported CRC and *must* be probed (Figure 3).
                self._verified.add(obj_id)
        else:
            obj_id = self.private.allocate(value)
        self._alloc_positions[obj_id] = len(self._alloc_positions)
        return OrthrusPtr(self.heap, obj_id)

    def load(self, obj_id: int) -> Any:
        if self.mode == self.APP:
            version = self.heap.latest(obj_id)
            self.log.inputs.setdefault(obj_id, version.version_id)
            if (
                self.verify_checksums
                and obj_id not in self._verified
                and version.checksum is not None
            ):
                self._verified.add(obj_id)
                actual = checksum_of(version.value)
                ok = actual == version.checksum
                obs = self.obs
                if obs.enabled:
                    obs.registry.counter(
                        "orthrus_checksum_verifications_total",
                        {"closure": self.log.closure_name, "result": "ok" if ok else "mismatch"},
                        help="first-load CRC probes at the control/data boundary",
                    ).inc()
                    obs.tracer.emit(
                        "checksum.verify",
                        ts=self.log.start_time,
                        closure=self.log.closure_name,
                        seq=self.log.seq,
                        obj=obj_id,
                        version=version.version_id,
                        ok=ok,
                    )
                if not ok:
                    self._detect_checksum(obj_id, version.version_id)
            return version.value
        # VAL: own writes win, then the pinned input version, then the
        # snapshot visible when the closure started.
        if self.private.has(obj_id):
            return self.private.load(obj_id)
        version_id = self.log.inputs.get(obj_id)
        if version_id is not None:
            return self.heap.version(version_id).value
        return self.heap.visible_at(obj_id, self.log.start_time).value

    def store(self, obj_id: int, value: Any) -> None:
        if self.mode == self.APP:
            version = self.heap.store(obj_id, value, creator=self.log.seq)
            self.log.output_versions.append(version.version_id)
            self.log.output_objects.append(obj_id)
            self._verified.add(obj_id)
        else:
            self.private.store(obj_id, value)

    def delete(self, obj_id: int) -> None:
        if self.mode == self.APP:
            self.heap.delete(obj_id)
            self.log.deletes.append(obj_id)
        else:
            self.private.delete(obj_id)

    def _detect_checksum(self, obj_id: int, version_id: int) -> None:
        event = DetectionEvent(
            kind="checksum",
            closure=self.log.closure_name,
            seq=self.log.seq,
            time=self.log.start_time,
            detail=f"CRC mismatch on obj {obj_id} (version {version_id})",
            app_core=self.core.core_id,
        )
        if self.detector is not None:
            self.detector(event)
        else:
            raise ChecksumMismatch(event.detail, closure=self.log.closure_name)

    # ------------------------------------------------------------------
    # system calls
    # ------------------------------------------------------------------
    def syscall(self, name: str, fn: Callable[[], Any]) -> Any:
        if self.mode == self.APP:
            result = fn()
            self.log.syscalls.append(result)
            return result
        cursor = self._syscall_cursor
        if cursor >= len(self.log.syscalls):
            # The re-execution issued more syscalls than the original —
            # control flow diverged inside the closure.  Return a neutral
            # value; the output comparison will flag the divergence.
            return None
        self._syscall_cursor = cursor + 1
        return self.log.syscalls[cursor]

    # ------------------------------------------------------------------
    # canonicalization (for retval comparison across APP/VAL)
    # ------------------------------------------------------------------
    def canonicalize(self, value: Any) -> Any:
        """Rewrite pointers into a form comparable across APP and VAL.

        A pointer to an object allocated *during* this execution becomes
        ``("ptr:new", k)`` where k is its allocation order — the APP's k-th
        allocation and the VAL's k-th shadow allocation denote the same
        logical object.  A pointer to a pre-existing shared object becomes
        ``("ptr", obj_id)``, identical in both modes.
        """
        from repro.memory.pointer import OrthrusPtr

        if isinstance(value, OrthrusPtr):
            return self.canon_obj(value.obj_id)
        if isinstance(value, tuple):
            return tuple(self.canonicalize(item) for item in value)
        if isinstance(value, list):
            return [self.canonicalize(item) for item in value]
        if isinstance(value, dict):
            return {key: self.canonicalize(item) for key, item in value.items()}
        return value

    def canon_obj(self, obj_id: int):
        """Canonical identity of an object id (see :meth:`canonicalize`)."""
        position = self._alloc_positions.get(obj_id)
        if position is not None:
            return ("ptr:new", position)
        return ("ptr", obj_id)
