"""Mercurial-core fault model.

A *fault* arms one core with a persistent defect in one functional unit,
optionally pinned to a single instruction site.  This mirrors the empirical
fault model of the paper (§2.1, Appendix A.2): silent computation errors are
highly reproducible, core-local, and correlated with specific instructions.
Fault kinds follow the injection mechanisms used by LLFI/REFINE and the
Orthrus framework: ``bitflip`` (invert a bit of the result), ``stuckat0`` /
``stuckat1`` (force a result bit), and ``nop`` (the instruction does not
execute; the result falls back to its first operand).

Corruption is applied to the *result value* of an instruction, which is how
compiler-level injection emulates a faulty execution unit.  Booleans model
flag/branch-condition corruption (jump errors, Listing 1).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.machine.instruction import Site
from repro.machine.units import Unit

_INT64_MASK = (1 << 64) - 1


class FaultKind(enum.Enum):
    BITFLIP = "bitflip"
    STUCKAT0 = "stuckat0"
    STUCKAT1 = "stuckat1"
    NOP = "nop"


@dataclass(frozen=True, slots=True)
class Fault:
    """A persistent defect armed on one core.

    Attributes:
        unit: functional unit the defect lives in.
        kind: corruption mechanism.
        site: when set, only this instruction site is affected (the common
            mercurial-core case); when ``None``, every instruction executed
            on the defective unit is affected.
        bit: which result bit the defect touches.
        trigger_rate: probability that a matching execution actually
            corrupts.  Google observed errors recurring "at a certain
            frequency" [44]; 1.0 reproduces the deterministic common case.
    """

    unit: Unit
    kind: FaultKind
    site: Site | None = None
    bit: int = 0
    trigger_rate: float = 1.0

    def matches(self, unit: Unit, site: Site) -> bool:
        if unit is not self.unit:
            return False
        return self.site is None or self.site == site


def _corrupt_bits(value: int, kind: FaultKind, bit: int) -> int:
    mask = 1 << bit
    if kind is FaultKind.BITFLIP:
        return value ^ mask
    if kind is FaultKind.STUCKAT0:
        return value & ~mask
    if kind is FaultKind.STUCKAT1:
        return value | mask
    raise ValueError(f"no bit semantics for {kind}")


def _corrupt_int(value: int, kind: FaultKind, bit: int) -> int:
    negative = value < 0
    raw = value & _INT64_MASK
    raw = _corrupt_bits(raw, kind, bit % 64) & _INT64_MASK
    if negative or raw >> 63:
        # Interpret as two's-complement 64-bit, like the hardware would.
        return raw - (1 << 64) if raw >> 63 else raw
    return raw


def _corrupt_float(value: float, kind: FaultKind, bit: int) -> float:
    (raw,) = struct.unpack("<Q", struct.pack("<d", value))
    raw = _corrupt_bits(raw, kind, bit % 64) & _INT64_MASK
    (out,) = struct.unpack("<d", struct.pack("<Q", raw))
    return out


def corrupt_value(value, kind: FaultKind, bit: int):
    """Apply a bit-level fault to an instruction result.

    Supports the value shapes produced by the ops API: bool (flag /
    branch-condition results), int, float, bytes, and sequences of numbers
    (vector lanes).  For vectors the fault lands in one lane, selected by
    the fault's bit index, matching single-lane SIMD defects.
    """
    if kind is FaultKind.NOP:
        raise ValueError("NOP faults are applied by the core, not per-value")
    if getattr(value, "__orthrus_ptr__", False):
        # A corrupted pointer word: the reference now dangles or aliases
        # another object (the misplaced-bucket scenario of Listing 2).
        return type(value)(value.heap, _corrupt_int(value.obj_id, kind, bit % 32))
    if isinstance(value, bool):
        if kind is FaultKind.BITFLIP:
            return not value
        return kind is FaultKind.STUCKAT1
    if isinstance(value, int):
        return _corrupt_int(value, kind, bit)
    if isinstance(value, float):
        return _corrupt_float(value, kind, bit)
    if value is None:
        # A corrupted null reference stays null in this model (flipping a
        # low bit of a null pointer still faults on dereference, which the
        # surrounding code models as fail-stop elsewhere).
        return None
    if isinstance(value, str):
        if not value:
            return value
        index = (bit // 8) % len(value)
        flipped = chr((ord(value[index]) ^ (1 << (bit % 7))) & 0x10FFFF)
        return value[:index] + flipped + value[index + 1 :]
    if isinstance(value, bytes):
        if not value:
            return value
        # Byte moves execute as 64-byte vector transfers; a defective bit
        # lane corrupts byte (bit//8) of *every* 64-byte chunk it moves.
        out = bytearray(value)
        lane = bit // 8
        for base in range(0, len(out), 64):
            index = base + (lane % min(64, len(out) - base))
            out[index] = _corrupt_bits(out[index], kind, bit % 8) & 0xFF
        return bytes(out)
    if isinstance(value, (tuple, list)):
        if not value:
            return value
        # A defective physical lane: the bit selects both which lane the
        # defect lives in and which bit of that lane it touches, so the
        # full in-lane bit range (including sign/exponent bits) is
        # reachable by faults — as observed in real vector-unit SDCs.
        lane = bit % len(value)
        items = list(value)
        items[lane] = corrupt_value(items[lane], kind, bit)
        return type(value)(items)
    raise TypeError(f"cannot corrupt value of type {type(value).__name__}")
