"""Server topology: NUMA nodes of cores.

The paper's testbed is dual-socket Intel Xeon Gold 6342 servers; the Orthrus
scheduler is NUMA-aware and co-locates validation with the application on
the same socket (for L3 log sharing) while never sharing a *core* between an
APP execution and its VAL re-execution (§3.5).  :class:`Machine` provides
that topology, plus helpers the fault-injection campaign uses to arm a
mercurial core.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machine.core import Core
from repro.machine.faults import Fault


class Machine:
    """One server: ``numa_nodes`` sockets with ``cores_per_node`` cores each."""

    def __init__(self, cores_per_node: int = 8, numa_nodes: int = 2, seed: int = 0):
        if cores_per_node < 1 or numa_nodes < 1:
            raise ConfigurationError("machine needs at least one core and one node")
        self.cores_per_node = cores_per_node
        self.numa_nodes = numa_nodes
        self.cores: list[Core] = [
            Core(i, numa_node=i // cores_per_node, seed=seed * 1009 + i)
            for i in range(cores_per_node * numa_nodes)
        ]

    def __len__(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def node_cores(self, node: int) -> list[Core]:
        return [c for c in self.cores if c.numa_node == node]

    def arm(self, core_id: int, fault: Fault) -> Core:
        """Arm a persistent fault on one core, making it mercurial."""
        core = self.cores[core_id]
        core.arm(fault)
        return core

    def disarm_all(self) -> None:
        for core in self.cores:
            core.disarm()

    @property
    def mercurial_cores(self) -> list[Core]:
        return [c for c in self.cores if c.is_mercurial]

    @property
    def healthy_cores(self) -> list[Core]:
        return [c for c in self.cores if not c.is_mercurial]

    @property
    def quarantined_cores(self) -> list[Core]:
        """Cores pulled from service by the incident-response layer."""
        return [c for c in self.cores if c.quarantined]

    @property
    def serviceable_cores(self) -> list[Core]:
        """Cores the schedulers may place work on (not quarantined).

        Note the asymmetry with :attr:`healthy_cores`: whether a core is
        *actually* mercurial is ground truth only the fault injector knows;
        quarantine reflects what the response layer has *inferred*.
        """
        return [c for c in self.cores if not c.quarantined]

    def sibling_core(self, core_id: int, prefer_same_node: bool = True) -> Core:
        """Pick a different core for validation, preferring the same socket.

        Same-socket placement keeps closure logs hot in the shared L3
        (§3.5); a different core guarantees the VAL never reuses the APP's
        (possibly defective) private functional units.
        """
        origin = self.cores[core_id]
        candidates = [c for c in self.cores if c.core_id != core_id]
        if not candidates:
            raise ConfigurationError("validation requires at least two cores")
        if prefer_same_node:
            same = [c for c in candidates if c.numa_node == origin.numa_node]
            if same:
                return same[0]
        return candidates[0]
