"""Instruction sites and execution traces.

Real Orthrus injects faults at the machine-IR level, identifying each static
instruction by its position inside a function (Appendix A).  Our Python
analogue identifies an *instruction site* by the triple

    (function label, opcode, occurrence index)

where the occurrence index counts how many times that (function, opcode)
pair has executed so far *within one dynamic call*.  For deterministic
control flow this is a faithful stand-in for a static MIR instruction: the
k-th ``fmul`` executed by ``reduce()`` is the same static instruction on
every invocation, so a fault armed on that site is persistent and
reproducible — exactly the mercurial-core behaviour reported by Google [44].

The :class:`Trace` accumulates per-unit instruction counts for one dynamic
execution; the closure analysis pass (§3.5) uses it to tag fp/vector-heavy
closures, the profiling phase of the fault-injection campaign uses it to
enumerate sites, and the timing model uses it to charge cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.units import CYCLE_COST, Unit


@dataclass(frozen=True, slots=True)
class Site:
    """Identity of one (approximately static) instruction site."""

    function: str
    opcode: str
    index: int

    def __str__(self) -> str:
        return f"{self.function}:{self.opcode}#{self.index}"


@dataclass(slots=True)
class Trace:
    """Per-execution instruction accounting.

    Attributes:
        unit_counts: dynamic instruction count per functional unit.
        cycles: total cycles charged under the cost model.
        sites: set of sites touched (populated only when ``record_sites``
            is enabled — the inspection/profiling phases need it, the hot
            path does not).
    """

    unit_counts: dict[Unit, int] = field(default_factory=dict)
    cycles: int = 0
    sites: set[Site] = field(default_factory=set)
    record_sites: bool = False

    def record(self, unit: Unit, site: Site | None = None) -> None:
        self.unit_counts[unit] = self.unit_counts.get(unit, 0) + 1
        self.cycles += CYCLE_COST[unit]
        if self.record_sites and site is not None:
            self.sites.add(site)

    @property
    def total_instructions(self) -> int:
        return sum(self.unit_counts.values())

    def count(self, unit: Unit) -> int:
        return self.unit_counts.get(unit, 0)

    def merge(self, other: "Trace") -> None:
        """Fold another trace into this one (used by campaign profiling)."""
        for unit, n in other.unit_counts.items():
            self.unit_counts[unit] = self.unit_counts.get(unit, 0) + n
        self.cycles += other.cycles
        self.sites.update(other.sites)
