"""Simulated CPU core: the execution substrate for data operators.

Application data paths in this reproduction do their computation through a
core's *ops API* (``core.alu.add(...)``, ``core.fpu.fmul(...)``, ...) rather
than through raw Python operators.  Each call issues one instruction:

* it is attributed to an :class:`~repro.machine.instruction.Site`,
* it is charged cycles and counted in the active :class:`Trace`, and
* if the core is *mercurial* — armed with a :class:`Fault` matching the
  instruction's unit and site — the result is corrupted.

This is the substitution for the paper's LLVM machine-IR fault injection: a
fault armed on a site corrupts every execution of that site on that core,
while re-execution of the same closure on a healthy core yields the correct
result, which is precisely the divergence Orthrus detects.

A core executes one closure at a time (the paper's single-threaded closure
model, §3.1), so per-execution occurrence counters can live on the core.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.machine.faults import Fault, FaultKind, corrupt_value
from repro.machine.instruction import Site, Trace
from repro.machine.units import CYCLE_COST, Unit

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64 = (1 << 64) - 1


class AtomicCell:
    """A shared mutable cell accessed through cache-coherency instructions."""

    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value

    def __repr__(self) -> str:
        return f"AtomicCell({self.value!r})"


class Core:
    """One simulated CPU core with private functional units."""

    def __init__(self, core_id: int, numa_node: int = 0, seed: int | None = None):
        self.core_id = core_id
        self.numa_node = numa_node
        self.faults: list[Fault] = []
        #: set by the incident-response layer when this core is pulled from
        #: service (suspected mercurial); schedulers must not place work on
        #: a quarantined core except for probation probes.
        self.quarantined = False
        self._rng = random.Random(seed if seed is not None else core_id)
        self._function = "<none>"
        self._occurrences: dict[str, int] = {}
        self._trace: Trace | None = None
        #: stack of suspended (function, occurrences, trace) frames — a
        #: control-path section may invoke closures, which begin their own
        #: attribution scope on the same core (§2.2's call structure).
        self._frames: list[tuple[str, dict[str, int], Trace | None]] = []
        self.total_cycles = 0
        #: lifetime dynamic instruction count; feeds the wall-clock
        #: instructions/sec throughput meter (repro.obs.profiling)
        self.instructions = 0
        #: inspection/profiling support (§A.3.2): when enabled, every
        #: executed instruction site is recorded with its unit and its
        #: dynamic execution count (REFINE samples dynamic instructions)
        self.record_sites = False
        self.site_units: dict[Site, Unit] = {}
        self.site_counts: dict[Site, int] = {}
        self.alu = _Alu(self)
        self.fpu = _Fpu(self)
        self.simd = _Simd(self)
        self.cache = _Cache(self)

    # ------------------------------------------------------------------
    # fault management
    # ------------------------------------------------------------------
    def arm(self, fault: Fault) -> None:
        """Make this core mercurial by arming a persistent fault."""
        self.faults.append(fault)

    def disarm(self) -> None:
        self.faults.clear()

    @property
    def is_mercurial(self) -> bool:
        return bool(self.faults)

    # ------------------------------------------------------------------
    # execution scoping
    # ------------------------------------------------------------------
    def begin(self, function: str, trace: Trace | None = None) -> Trace:
        """Start attributing instructions to ``function``.

        Resets the per-execution occurrence counters so that instruction
        sites are stable across invocations of the same closure.  Scopes
        nest: a control-path section can begin, invoke a closure (which
        begins/ends its own scope), and resume its own attribution.
        """
        self._frames.append((self._function, self._occurrences, self._trace))
        self._function = function
        self._occurrences = {}
        self._trace = trace if trace is not None else Trace()
        return self._trace

    def end(self) -> Trace:
        if not self._frames:
            raise ConfigurationError("Core.end() without matching begin()")
        trace = self._trace
        self._function, self._occurrences, self._trace = self._frames.pop()
        return trace

    def scope(self, function: str, trace: Trace | None = None) -> "_CoreScope":
        """Context manager form of begin()/end() for control-path sections."""
        return _CoreScope(self, function, trace)

    # ------------------------------------------------------------------
    # instruction issue
    # ------------------------------------------------------------------
    def _issue(self, opcode: str, unit: Unit, result, nop_fallback, cycle_weight: int = 1):
        occurrences = self._occurrences
        index = occurrences.get(opcode, 0)
        occurrences[opcode] = index + 1
        site = Site(self._function, opcode, index)
        if self.record_sites:
            self.site_units[site] = unit
            self.site_counts[site] = self.site_counts.get(site, 0) + 1
        cycles = CYCLE_COST[unit] * cycle_weight
        self.total_cycles += cycles
        self.instructions += 1
        trace = self._trace
        if trace is not None:
            trace.unit_counts[unit] = trace.unit_counts.get(unit, 0) + 1
            trace.cycles += cycles
            if trace.record_sites:
                trace.sites.add(site)
        for fault in self.faults:
            if not fault.matches(unit, site):
                continue
            if fault.trigger_rate < 1.0 and self._rng.random() >= fault.trigger_rate:
                continue
            if fault.kind is FaultKind.NOP:
                return nop_fallback
            return corrupt_value(result, fault.kind, fault.bit)
        return result

    def __repr__(self) -> str:
        tag = " mercurial" if self.faults else ""
        if self.quarantined:
            tag += " quarantined"
        return f"Core(id={self.core_id}, numa={self.numa_node}{tag})"


class _CoreScope:
    __slots__ = ("_core", "_function", "_trace", "trace")

    def __init__(self, core: "Core", function: str, trace: Trace | None):
        self._core = core
        self._function = function
        self._trace = trace
        self.trace: Trace | None = None

    def __enter__(self) -> "_CoreScope":
        self.trace = self._core.begin(self._function, self._trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._core.end()


class _Alu:
    """Integer arithmetic, logic, compare, and byte-move instructions."""

    __slots__ = ("_core",)

    def __init__(self, core: Core):
        self._core = core

    def add(self, a: int, b: int) -> int:
        return self._core._issue("add", Unit.ALU, a + b, a)

    def sub(self, a: int, b: int) -> int:
        return self._core._issue("sub", Unit.ALU, a - b, a)

    def mul(self, a: int, b: int) -> int:
        return self._core._issue("mul", Unit.ALU, a * b, a)

    def div(self, a: int, b: int) -> int:
        return self._core._issue("div", Unit.ALU, a // b, a)

    def mod(self, a: int, b: int) -> int:
        return self._core._issue("mod", Unit.ALU, a % b, a)

    def xor(self, a: int, b: int) -> int:
        return self._core._issue("xor", Unit.ALU, a ^ b, a)

    def and_(self, a: int, b: int) -> int:
        return self._core._issue("and", Unit.ALU, a & b, a)

    def or_(self, a: int, b: int) -> int:
        return self._core._issue("or", Unit.ALU, a | b, a)

    def shl(self, a: int, b: int) -> int:
        return self._core._issue("shl", Unit.ALU, a << b, a)

    def shr(self, a: int, b: int) -> int:
        return self._core._issue("shr", Unit.ALU, a >> b, a)

    def lt(self, a, b) -> bool:
        """Compare-less-than; corruption models branch-condition errors."""
        return self._core._issue("lt", Unit.ALU, bool(a < b), False)

    def le(self, a, b) -> bool:
        return self._core._issue("le", Unit.ALU, bool(a <= b), False)

    def eq(self, a, b) -> bool:
        return self._core._issue("eq", Unit.ALU, bool(a == b), False)

    def hash64(self, data) -> int:
        """FNV-1a over the UTF-8/byte representation of ``data``.

        Stands in for the hash computations of Listing 2; a fault here
        reproduces the misplaced-bucket SDC the paper motivates with.
        """
        raw = _as_bytes(data)
        h = _FNV_OFFSET
        for byte in raw:
            h = ((h ^ byte) * _FNV_PRIME) & _U64
        weight = max(1, len(raw) // 8)
        return self._core._issue("hash64", Unit.ALU, h, 0, cycle_weight=weight)

    def copy(self, data: bytes) -> bytes:
        """Byte move (``rep movsb``): how control-path code shuttles payloads.

        A fault on this instruction corrupts a payload *after* its checksum
        was computed, which is exactly the control-path corruption class the
        CRC verification at the data-path boundary catches (§3.4).
        """
        weight = max(1, len(data) // 64)
        return self._core._issue("copy", Unit.ALU, data, b"", cycle_weight=weight)


class _Fpu:
    """Floating-point instructions."""

    __slots__ = ("_core",)

    def __init__(self, core: Core):
        self._core = core

    def fadd(self, a: float, b: float) -> float:
        return self._core._issue("fadd", Unit.FPU, float(a) + float(b), float(a))

    def fsub(self, a: float, b: float) -> float:
        return self._core._issue("fsub", Unit.FPU, float(a) - float(b), float(a))

    def fmul(self, a: float, b: float) -> float:
        return self._core._issue("fmul", Unit.FPU, float(a) * float(b), float(a))

    def fdiv(self, a: float, b: float) -> float:
        return self._core._issue("fdiv", Unit.FPU, float(a) / float(b), float(a))


class _Simd:
    """Vector instructions over fixed-width lane tuples."""

    __slots__ = ("_core",)

    def __init__(self, core: Core):
        self._core = core

    def vadd(self, a: Sequence, b: Sequence) -> tuple:
        result = tuple(x + y for x, y in zip(a, b, strict=True))
        return self._core._issue("vadd", Unit.SIMD, result, tuple(a))

    def vsub(self, a: Sequence, b: Sequence) -> tuple:
        result = tuple(x - y for x, y in zip(a, b, strict=True))
        return self._core._issue("vsub", Unit.SIMD, result, tuple(a))

    def vmul(self, a: Sequence, b: Sequence) -> tuple:
        result = tuple(x * y for x, y in zip(a, b, strict=True))
        return self._core._issue("vmul", Unit.SIMD, result, tuple(a))

    def vdot(self, a: Sequence, b: Sequence) -> float:
        result = float(sum(x * y for x, y in zip(a, b, strict=True)))
        return self._core._issue("vdot", Unit.SIMD, result, 0.0)

    def vsum(self, a: Iterable) -> float:
        items = tuple(a)
        weight = max(1, len(items) // 8)
        return self._core._issue(
            "vsum", Unit.SIMD, float(sum(items)), 0.0, cycle_weight=weight
        )


class _Cache:
    """Cache-coherency (atomic / locked) instructions over shared cells."""

    __slots__ = ("_core",)

    def __init__(self, core: Core):
        self._core = core

    def atomic_read(self, cell: AtomicCell):
        return self._core._issue("atomic_read", Unit.CACHE, cell.value, 0)

    def atomic_write(self, cell: AtomicCell, value) -> None:
        stored = self._core._issue("atomic_write", Unit.CACHE, value, cell.value)
        cell.value = stored

    def atomic_add(self, cell: AtomicCell, delta: int) -> int:
        """Locked add; returns the new value (corruptions hit the result)."""
        new = self._core._issue("atomic_add", Unit.CACHE, cell.value + delta, cell.value)
        cell.value = new
        return new

    def cas(self, cell: AtomicCell, expected, new) -> bool:
        success = self._core._issue("cas", Unit.CACHE, cell.value == expected, False)
        if success:
            cell.value = new
        return success

    def load_shared(self, value):
        """A coherent load of shared data inside a critical section.

        Side-effect free: the caller performs the versioned read and this
        instruction models the cache-coherency transaction that delivers
        it (the profiling rule of §A.3.2 classifies loads/stores between
        atomic primitives as cache-unit instructions).  Corruption yields a
        wrong loaded value; NOP yields a stale/zero read.
        """
        return self._core._issue("cache_load", Unit.CACHE, value, 0)

    def store_shared(self, value):
        """A coherent store of shared data; returns the value that actually
        reaches memory (possibly corrupted).  The caller writes it through
        a versioned pointer, keeping re-execution side-effect free."""
        return self._core._issue("cache_store", Unit.CACHE, value, value)


def _as_bytes(data) -> bytes:
    if isinstance(data, bytes):
        return data
    if isinstance(data, str):
        return data.encode("utf-8")
    if isinstance(data, int):
        return data.to_bytes(8, "little", signed=True)
    if isinstance(data, float):
        import struct

        return struct.pack("<d", data)
    raise TypeError(f"cannot hash value of type {type(data).__name__}")
