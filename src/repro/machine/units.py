"""Functional-unit taxonomy for the simulated machine.

The paper's fault study (Alibaba Cloud [73], Meta [30], Google [44]) groups
silent computation errors by the CPU functional unit that produced them:
arithmetic/logic (ALU), floating point (FPU), vector (SIMD), and cache
coherency (CACHE).  Orthrus' fault-injection framework applies a 1:2:2:1
fault-count ratio across ALU:SIMD:FPU:CACHE (Appendix A.2), and the adaptive
sampler boosts closures containing fp/vector instructions (§3.5).  This
module defines the unit enum, the per-unit cycle costs used by the timing
model, and the Alibaba injection ratio used by the campaign.
"""

from __future__ import annotations

import enum


class Unit(enum.Enum):
    """A CPU functional unit, as classified by the profiling phase (§A.3.2)."""

    ALU = "alu"
    FPU = "fpu"
    SIMD = "simd"
    CACHE = "cache"

    @property
    def error_prone(self) -> bool:
        """Whether real-world SDC studies flag this unit as high risk.

        Prior studies show errors concentrate in floating-point and vector
        units; the Orthrus compiler tags closures containing these
        instruction types for elevated validation priority (§3.5).
        """
        return self in (Unit.FPU, Unit.SIMD)


#: Fault-count ratio across units, mirroring Alibaba's observed SDC
#: distribution (Appendix A.2): ALU : SIMD : FPU : CACHE = 1 : 2 : 2 : 1.
ALIBABA_FAULT_RATIO: dict[Unit, int] = {
    Unit.ALU: 1,
    Unit.SIMD: 2,
    Unit.FPU: 2,
    Unit.CACHE: 1,
}

#: Cycle cost charged per instruction by the timing model.  Values follow
#: typical x86 latencies: simple integer ops ~1 cycle, fp ~4, vector ~4,
#: atomics/locked ops ~20 (cache-line ownership transfer).
CYCLE_COST: dict[Unit, int] = {
    Unit.ALU: 1,
    Unit.FPU: 4,
    Unit.SIMD: 4,
    Unit.CACHE: 20,
}
