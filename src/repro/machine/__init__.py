"""Simulated CPU substrate: cores, functional units, and mercurial faults."""

from repro.machine.core import AtomicCell, Core
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind, corrupt_value
from repro.machine.instruction import Site, Trace
from repro.machine.units import ALIBABA_FAULT_RATIO, CYCLE_COST, Unit

__all__ = [
    "ALIBABA_FAULT_RATIO",
    "AtomicCell",
    "CYCLE_COST",
    "Core",
    "Fault",
    "FaultKind",
    "Machine",
    "Site",
    "Trace",
    "Unit",
    "corrupt_value",
]
