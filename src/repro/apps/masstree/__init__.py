"""Masstree-style multi-core ordered index (Table 1 workload #2)."""

from repro.apps.masstree.server import MasstreeServer
from repro.apps.masstree.tree import Masstree, mt_get, mt_remove, mt_scan, mt_update

__all__ = ["Masstree", "MasstreeServer", "mt_get", "mt_remove", "mt_scan", "mt_update"]
