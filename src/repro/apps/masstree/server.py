"""Masstree control path: request dispatch, response transport."""

from __future__ import annotations

import hashlib
from typing import Any

from repro.apps.common import AppServer, Packet
from repro.apps.masstree.tree import Masstree, mt_get, mt_scan, mt_update
from repro.memory.checksum import serialize
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.base import Op


class MasstreeServer(AppServer):
    """Ordered key-value store with scan/update mix (ALEX workload)."""

    externalizing = frozenset({"mt.get", "mt.scan"})

    def __init__(self, runtime: OrthrusRuntime, order: int = 8):
        super().__init__(runtime)
        self.tree = Masstree(runtime, order=order)

    def load_keys(self, keys: list[int]) -> None:
        """Bulk pre-load before the timed run (control-path setup)."""
        with self.runtime:
            for key in keys:
                mt_update(self.tree, self.runtime.new((key, key * 2 + 1)))

    def _handle(self, op: Op) -> Any:
        command = self._dispatch(op.kind.value)
        if command == "update":
            kv_ptr = self.receive(Packet.wrap((op.key, op.value)), "mt.control.rx")
            mt_update(self.tree, kv_ptr)
            kv_ptr.delete()  # free the request buffer
            return "STORED"
        if command == "scan":
            results = mt_scan(self.tree, op.key, op.count)
            return self.respond(results, "mt.control.tx")
        if command == "get":
            value = mt_get(self.tree, op.key)
            return self.respond(value, "mt.control.tx")
        raise ValueError(f"unknown command {command!r}")

    def _dispatch(self, token: str) -> str:
        core = self._core()
        with core.scope("mt.control.dispatch"):
            for command in ("update", "scan", "get"):
                if core.alu.eq(token, command):
                    return command
        return "?"

    # ------------------------------------------------------------------
    def state_digest(self) -> int:
        payload = serialize(tuple(self.items()))
        return int.from_bytes(hashlib.sha1(payload).digest()[:8], "little")

    def items(self) -> list[tuple[int, int]]:
        """In-order (key, value) pairs, read outside the machine."""
        heap = self.runtime.heap
        _, root = heap.latest(self.tree.root_holder.obj_id).value
        node = heap.latest(root.obj_id).value
        while node[0] == "inner":
            node = heap.latest(node[2][0].obj_id).value
        out: list[tuple[int, int]] = []
        while True:
            _, keys, values, next_leaf = node
            out.extend(zip(keys, values))
            if next_leaf is None:
                break
            node = heap.latest(next_leaf.obj_id).value
        return out
