"""Masstree-style ordered index: a B+-tree in versioned memory.

The data path of the paper's Masstree evaluation: point/range reads and
updates over a multi-level tree with leaf chaining.  Every node is a
user-data object; structural changes (leaf splits, root growth) create
bursts of new versions, which is why the paper sees Masstree's memory
overhead (35%) and its sensitivity to memory-constrained sampling
(Fig 10) — small writes trigger significant updates.

Instruction mix: ALU (key compares, branching), SIMD (vectorized in-node
key search, as in real Masstree's permuter/SSE search), CACHE (coherent
node reads under optimistic concurrency).  No floating point (Masstree's
fp-SDC column in Table 2 is zero).

Node payloads:
* leaf  — ``("leaf", keys, values, next_leaf_ptr_or_None)``
* inner — ``("inner", keys, children_ptrs)`` where ``children[i]`` holds
  keys < ``keys[i]``; ``children[-1]`` holds the rest.
"""

from __future__ import annotations

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.memory.pointer import OrthrusPtr, orthrus_new
from repro.runtime.orthrus import OrthrusRuntime

#: sentinel key padding for the fixed-width vector compare
_PAD_KEY = 1 << 60


class Masstree:
    """Handle to a B+-tree rooted in versioned memory."""

    def __init__(self, runtime: OrthrusRuntime, order: int = 8):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        empty_leaf = runtime.new(("leaf", (), (), None))
        #: versioned root holder, so root growth is itself a data write
        self.root_holder = runtime.new(("root", empty_leaf))


def _vector_search(o, keys: tuple, key: int, width: int) -> int:
    """Index of the first stored key greater than ``key``.

    One SIMD subtract across the (padded) key array models Masstree's
    vectorized in-node search; the per-lane sign tests consume its output,
    so a corrupted lane sends the descent down the wrong child.
    """
    padded = tuple(keys) + (_PAD_KEY,) * (width - len(keys))
    diffs = o.simd.vsub(padded, (key,) * width)
    for index in range(len(keys)):
        if o.alu.lt(0, diffs[index]):  # keys[index] > key
            return index
    return len(keys)


def _descend(o, tree: Masstree, key: int) -> tuple:
    """Walk from the root to the leaf covering ``key``; returns
    ``(leaf_ptr, leaf_node, path)`` where path is [(inner_ptr, child_idx)]."""
    _, root = o.cache.load_shared(tree.root_holder.load())
    node_ptr = root
    path = []
    node = o.cache.load_shared(node_ptr.load())
    while node[0] == "inner":
        _, keys, children = node
        index = _vector_search(o, keys, key, tree.order + 1)
        path.append((node_ptr, index))
        node_ptr = children[index]
        node = o.cache.load_shared(node_ptr.load())
    return node_ptr, node, path


@closure(name="mt.get")
def mt_get(tree: Masstree, key: int):
    """Point lookup (externalizing)."""
    o = ops()
    _, node, _ = _descend(o, tree, key)
    _, keys, values, _ = node
    for index in range(len(keys)):
        if o.alu.eq(keys[index], key):
            return values[index]
    return None


@closure(name="mt.update")
def mt_update(tree: Masstree, kv_ptr: OrthrusPtr):
    """Insert or update a key; splits nodes on overflow.

    ``kv_ptr`` holds the ``(key, value)`` pair received from the control
    path; the first load verifies its transported CRC.  Returns True when
    a new key was inserted, False on in-place update.
    """
    o = ops()
    key, value = kv_ptr.load()
    leaf_ptr, node, path = _descend(o, tree, key)
    _, keys, values, next_leaf = node

    position = 0
    while position < len(keys) and o.alu.lt(keys[position], key):
        position += 1
    if position < len(keys) and o.alu.eq(keys[position], key):
        new_values = values[:position] + (value,) + values[position + 1 :]
        leaf_ptr.store(o.cache.store_shared(("leaf", keys, new_values, next_leaf)))
        return False

    new_keys = keys[:position] + (key,) + keys[position:]
    new_values = values[:position] + (value,) + values[position:]
    if len(new_keys) <= tree.order:
        leaf_ptr.store(o.cache.store_shared(("leaf", new_keys, new_values, next_leaf)))
        return True

    # Leaf split: left half stays in place, right half is a new leaf.
    middle = len(new_keys) // 2
    right = orthrus_new(
        ("leaf", new_keys[middle:], new_values[middle:], next_leaf)
    )
    leaf_ptr.store(
        o.cache.store_shared(("leaf", new_keys[:middle], new_values[:middle], right))
    )
    _insert_separator(o, tree, path, new_keys[middle], leaf_ptr, right)
    return True


def _insert_separator(
    o,
    tree: Masstree,
    path: list,
    separator: int,
    left: OrthrusPtr,
    right: OrthrusPtr,
) -> None:
    """Propagate a split upward, possibly splitting inner nodes and
    growing a new root."""
    while path:
        inner_ptr, child_index = path.pop()
        _, keys, children = o.cache.load_shared(inner_ptr.load())
        new_keys = keys[:child_index] + (separator,) + keys[child_index:]
        new_children = (
            children[:child_index]
            + (left, right)
            + children[child_index + 1 :]
        )
        if len(new_keys) <= tree.order:
            inner_ptr.store(o.cache.store_shared(("inner", new_keys, new_children)))
            return
        middle = len(new_keys) // 2
        up_separator = new_keys[middle]
        right_inner = orthrus_new(
            ("inner", new_keys[middle + 1 :], new_children[middle + 1 :])
        )
        inner_ptr.store(
            o.cache.store_shared(
                ("inner", new_keys[:middle], new_children[: middle + 1])
            )
        )
        separator, left, right = up_separator, inner_ptr, right_inner
    # Root split: grow the tree by one level.
    new_root = orthrus_new(("inner", (separator,), (left, right)))
    tree.root_holder.store(o.cache.store_shared(("root", new_root)))


@closure(name="mt.remove")
def mt_remove(tree: Masstree, key: int) -> bool:
    """Delete a key from its leaf (lazy deletion: leaves may underflow but
    are never merged, as in many production B+-trees).  Returns True when
    the key existed."""
    o = ops()
    leaf_ptr, node, _ = _descend(o, tree, key)
    _, keys, values, next_leaf = node
    for index in range(len(keys)):
        if o.alu.eq(keys[index], key):
            new_keys = keys[:index] + keys[index + 1 :]
            new_values = values[:index] + values[index + 1 :]
            leaf_ptr.store(
                o.cache.store_shared(("leaf", new_keys, new_values, next_leaf))
            )
            return True
    return False


def _descend_scalar(o, tree: Masstree, key: int):
    """Scalar descent used by scans.

    Real Masstree's range scans locate the start leaf with plain compares
    and then walk the leaf chain; the vectorized in-node search is a
    point-lookup/update optimization.  Keeping scans vector-free means the
    compiler does not tag ``mt.scan`` error-prone (§3.5) — only the
    update/get paths carry SIMD instructions.
    """
    _, root = o.cache.load_shared(tree.root_holder.load())
    node_ptr = root
    node = o.cache.load_shared(node_ptr.load())
    while node[0] == "inner":
        _, keys, children = node
        index = 0
        while index < len(keys) and not o.alu.lt(key, keys[index]):
            index += 1
        node_ptr = children[index]
        node = o.cache.load_shared(node_ptr.load())
    return node


@closure(name="mt.scan")
def mt_scan(tree: Masstree, start_key: int, count: int):
    """Range query: locate ``start_key``'s leaf, scan forward through the
    leaf chain collecting up to ``count`` pairs (externalizing)."""
    o = ops()
    node = _descend_scalar(o, tree, start_key)
    results: list[tuple[int, int]] = []
    while node is not None and len(results) < count:
        _, keys, values, next_leaf = node
        for index in range(len(keys)):
            if len(results) >= count:
                break
            if o.alu.le(start_key, keys[index]):
                results.append((keys[index], values[index]))
        if next_leaf is None or len(results) >= count:
            break
        node = o.cache.load_shared(next_leaf.load())
    return results
