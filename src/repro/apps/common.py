"""Shared application plumbing: packets, network transfer, server base.

Every example application follows the paper's structure (§2.2, Figure 3):

* the **client** creates a request payload and attaches a CRC — the
  analogue of ``generate_kv_pair`` allocating with OrthrusNew;
* the **control path** on the server parses/transports the payload with
  byte-move and dispatch instructions executed on the application core —
  where a mercurial core can corrupt it *silently*;
* the **data path** (annotated closures) receives the payload through
  versioned memory; the first load verifies the transported CRC.

:class:`AppServer` gives the four applications a uniform driver interface:
``handle(op)``, ``state_digest()`` (a pure-Python ground-truth digest used
by fault-injection classification and the RBV baseline), and the set of
externalizing closures for safe mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.detection import DetectionEvent
from repro.machine.core import Core
from repro.memory.checksum import crc16, deserialize, serialize
from repro.memory.pointer import OrthrusPtr
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.base import Op


@dataclass(frozen=True, slots=True)
class Packet:
    """A payload in flight: canonical bytes plus the sender's CRC.

    The CRC is computed by the *sender* when the payload is created and
    travels in the header; the payload bytes may be corrupted in transit
    by faulty control-path instructions, which is exactly what the
    receiver-side CRC probe detects (§3.4).
    """

    data: bytes
    checksum: int

    @staticmethod
    def wrap(value: Any) -> "Packet":
        data = serialize(value)
        return Packet(data=data, checksum=crc16(data))


def transfer(core: Core, packet: Packet, label: str) -> Packet:
    """Move a packet through one control-path hop on ``core``.

    The byte move executes as an ALU ``copy`` instruction inside a
    control-path scope, so a fault armed on that site corrupts the payload
    while the header CRC travels unchanged — the Figure 3 scenario.
    """
    with core.scope(label):
        moved = core.alu.copy(packet.data)
    return Packet(data=moved, checksum=packet.checksum)


def unwrap(packet: Packet) -> tuple[Any, int]:
    """Decode a received packet into (value, transported CRC).

    Raises ``ValueError`` on undecodable (heavily corrupted) bytes — a
    fail-stop, not an SDC.
    """
    return deserialize(packet.data), packet.checksum


class AppServer:
    """Base class for the example application servers."""

    #: closures whose results are returned to clients (safe mode holds
    #: these until validated); subclasses override.
    externalizing: frozenset[str] = frozenset()

    def __init__(self, runtime: OrthrusRuntime):
        self.runtime = runtime

    # -- control-path helpers -------------------------------------------
    def _core(self) -> Core:
        return self.runtime.current_core()

    def receive(self, packet: Packet, hop_label: str) -> OrthrusPtr:
        """Run a packet through the server-side control path and
        materialize it in versioned memory with the transported CRC."""
        arrived = transfer(self._core(), packet, hop_label)
        value, checksum = unwrap(arrived)
        return self.runtime.receive(value, checksum)

    def respond(self, value: Any, label: str) -> Any:
        """Return a data-path result to the client through the control path.

        The CRC is attached at the data/control boundary (where the value
        leaves versioned memory) and verified client-side after transport,
        so a response corrupted by a control-path fault is flagged as a
        checksum detection (§3.4's outbound direction).
        """
        packet = Packet.wrap(value)
        arrived = transfer(self._core(), packet, label)
        if crc16(arrived.data) != arrived.checksum:
            # The client verifies the CRC before decoding; a corrupted
            # response is rejected rather than consumed.
            self.runtime._on_detection(
                DetectionEvent(
                    kind="checksum",
                    closure=label,
                    seq=-1,
                    time=self.runtime.clock.now(),
                    detail=f"response CRC mismatch on {label}",
                    app_core=self._core().core_id,
                )
            )
            return None
        received, _ = unwrap(arrived)
        return received

    # -- driver interface -------------------------------------------------
    def handle(self, op: Op) -> Any:
        """Process one client operation end to end.

        Activates this server's own runtime for the duration, so multiple
        servers (e.g. an RBV primary and replica with independent heaps
        and machines) can interleave requests safely.
        """
        with self.runtime:
            return self._handle(op)

    def _handle(self, op: Op) -> Any:
        raise NotImplementedError

    def state_digest(self) -> int:
        """Pure-Python digest of all live user data.

        Computed *outside* the simulated machine (never corrupted), so the
        fault-injection classifier can compare end states against a golden
        run, and the RBV baseline can compare primary vs replica state.
        """
        raise NotImplementedError
