"""LSMTree control path: put/get dispatch, flush/compaction policy."""

from __future__ import annotations

import hashlib
from typing import Any

from repro.apps.common import AppServer, Packet
from repro.apps.lsmtree.lsm import (
    TOMBSTONE,
    LsmTree,
    lsm_compact,
    lsm_flush,
    lsm_get,
    lsm_put,
    lsm_remove,
)
from repro.memory.checksum import serialize
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.base import Op


class LsmTreeServer(AppServer):
    """Write-optimized store (YCSB 100%-random-write workload)."""

    externalizing = frozenset({"lsm.get"})

    def __init__(
        self,
        runtime: OrthrusRuntime,
        max_level: int = 4,
        memtable_limit: int = 256,
        compaction_threshold: int = 4,
        seed: int = 0,
    ):
        super().__init__(runtime)
        self.tree = LsmTree(runtime, max_level=max_level, seed=seed)
        self.memtable_limit = memtable_limit
        self.compaction_threshold = compaction_threshold
        self.flushes = 0
        self.compactions = 0

    def _handle(self, op: Op) -> Any:
        command = self._dispatch(op.kind.value)
        if command == "put":
            kv_ptr = self.receive(Packet.wrap((op.key, op.value)), "lsm.control.rx")
            lsm_put(self.tree, kv_ptr)
            kv_ptr.delete()  # free the request buffer
            self._maybe_flush()
            # The internal sequence number is not externalized: under
            # multiple server threads its assignment order depends on
            # scheduling, not on user data.
            return "STORED"
        if command == "get":
            value = lsm_get(self.tree, op.key)
            return self.respond(value, "lsm.control.tx")
        if command == "remove":
            key_ptr = self.receive(
                Packet.wrap((op.key, TOMBSTONE)), "lsm.control.rx"
            )
            lsm_remove(self.tree, key_ptr)
            key_ptr.delete()  # free the request buffer
            self._maybe_flush()
            return "DELETED"
        raise ValueError(f"unknown command {command!r}")

    def _dispatch(self, token: str) -> str:
        core = self._core()
        with core.scope("lsm.control.dispatch"):
            for command in ("put", "get", "remove"):
                if core.alu.eq(token, command):
                    return command
        return "?"

    def _maybe_flush(self) -> None:
        """Flush/compaction policy: control-path decision over the meta
        object (an unmanaged read — the policy itself is not validated)."""
        _, _, count = self.runtime.heap.latest(self.tree.meta.obj_id).value
        if count >= self.memtable_limit:
            lsm_flush(self.tree)
            self.flushes += 1
            if len(self.tree.disk) >= self.compaction_threshold:
                lsm_compact(self.tree)
                self.compactions += 1

    # ------------------------------------------------------------------
    def items(self) -> dict[int, Any]:
        """Effective contents: disk blocks oldest→newest, then memtable."""
        merged: dict[int, Any] = {}
        for pairs, _checksum in self.tree.disk:
            for key, value in pairs:
                merged[key] = value
        heap = self.runtime.heap
        _, forwards = heap.latest(self.tree.head.obj_id).value
        cursor = forwards[0]
        while cursor is not None:
            _, key, value, _, node_forwards = heap.latest(cursor.obj_id).value
            merged[key] = value
            cursor = node_forwards[0]
        return {k: v for k, v in merged.items() if v != TOMBSTONE}

    def resident_bytes_extra(self) -> int:
        """Bytes of the tier-2 SSTable buffer (outside the versioned heap)
        — part of the application's resident footprint in both the vanilla
        and the Orthrus deployment."""
        from repro.memory.version import approx_size

        return sum(approx_size(block) for block in self.tree.disk)

    def state_digest(self) -> int:
        """Structure-sensitive digest: disk blocks plus the memtable chain
        including each node's tower height, so a corrupted skiplist level
        (wrong linkage that will misroute future lookups) diverges even
        when the flat key/value view coincides."""
        heap = self.runtime.heap
        chain = []
        _, forwards = heap.latest(self.tree.head.obj_id).value
        cursor = forwards[0]
        while cursor is not None:
            _, key, value, fingerprint, node_forwards = heap.latest(
                cursor.obj_id
            ).value
            height = sum(1 for f in node_forwards if f is not None)
            chain.append((key, value, fingerprint, height))
            cursor = node_forwards[0]
        payload = serialize((tuple(self.tree.disk), tuple(chain)))
        return int.from_bytes(hashlib.sha1(payload).digest()[:8], "little")
