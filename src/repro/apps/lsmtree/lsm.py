"""LSM-tree data path: versioned skiplist memtable + SSTable closures.

Two tiers, as in the paper's evaluation (§4.2): an in-memory skiplist
(tier 1, the focus of the experiments) and a simplified Sorted String
Table on a block device (tier 2).  The skiplist's nodes are user-data
objects; every put rewrites the forward pointers of its predecessors,
creating several new versions per write — the versioning stress that
yields LSMTree's 34% memory overhead under the 100%-random-write workload.

The disk is an external device: flushes *write* blocks and gets *read*
them through recorded syscalls (§2.3), so validation replays the recorded
results instead of re-touching the device.

Instruction mix: ALU (key compares), FPU (probabilistic level selection —
the fp instructions behind LSMTree's large fp-SDC column in Table 2),
SIMD (vectorized key fingerprints and block checksums), CACHE (coherent
sequence-number/meta updates).
"""

from __future__ import annotations

import random

from repro.closures.annotation import closure
from repro.closures.context import ops, syscall
from repro.closures.syscalls import sys_random
from repro.memory.pointer import OrthrusPtr, orthrus_new
from repro.runtime.orthrus import OrthrusRuntime

_FINGERPRINT_LANES = 8
#: skiplist level promotion probability
_P = 0.5

#: tombstone marker: deletes in an LSM are writes of a special value that
#: shadows older versions until compaction drops the key entirely
TOMBSTONE = "\x00__tombstone__"


def _key_lanes(key: int) -> tuple[int, ...]:
    return tuple((key >> (8 * lane)) & 0xFF for lane in range(_FINGERPRINT_LANES))


class LsmTree:
    """Handle to the two-tier store."""

    def __init__(self, runtime: OrthrusRuntime, max_level: int = 4, seed: int = 0):
        self.max_level = max_level
        #: head node: ("head", forwards) — forwards[i] is the first node at
        #: level i, or None
        self.head = runtime.new(("head", (None,) * max_level))
        #: ("meta", seq, count): write sequence number and memtable size
        self.meta = runtime.new(("meta", 0, 0))
        #: tier 2: list of immutable sorted blocks, newest last (external
        #: device, owned by the control path)
        self.disk: list[tuple] = []
        #: client-side randomness source for level selection (recorded as a
        #: syscall so validation replays it)
        self.rng = random.Random(seed)


def _level_for(o, tree: LsmTree) -> int:
    """Probabilistic level via recorded randomness and FPU compares.

    ``r < P**level`` evaluated with floating-point instructions: the fp
    error surface of this data path.
    """
    r = sys_random(tree.rng)
    level = 1
    threshold = o.fpu.fmul(_P, 1.0)
    while level < tree.max_level:
        diff = o.fpu.fsub(r, threshold)
        if o.alu.lt(0.0, diff):
            break
        level += 1
        threshold = o.fpu.fmul(threshold, _P)
    return level


def _find_predecessors(o, tree: LsmTree, key: int) -> list[OrthrusPtr | None]:
    """Per-level pointers to the node *before* ``key`` (None = head)."""
    preds: list[OrthrusPtr | None] = [None] * tree.max_level
    _, head_forwards = o.cache.load_shared(tree.head.load())
    node_ptr: OrthrusPtr | None = None
    forwards = head_forwards
    for level in range(tree.max_level - 1, -1, -1):
        while forwards[level] is not None:
            candidate = forwards[level]
            _, cand_key, _, _, cand_forwards = o.cache.load_shared(candidate.load())
            if not o.alu.lt(cand_key, key):
                break
            node_ptr = candidate
            forwards = cand_forwards
        preds[level] = node_ptr
    return preds


@closure(name="lsm.put")
def lsm_put(tree: LsmTree, kv_ptr: OrthrusPtr) -> int:
    """Insert/overwrite a key in the memtable; returns the sequence number."""
    o = ops()
    key, value = kv_ptr.load()
    fingerprint = o.simd.vsum(_key_lanes(o.alu.hash64(key)))
    preds = _find_predecessors(o, tree, key)

    # Existing node? (level-0 successor holds the smallest key >= key)
    successor = _forward_of(o, tree, preds[0], 0)
    if successor is not None:
        _, succ_key, _, _, succ_forwards = o.cache.load_shared(successor.load())
        if o.alu.eq(succ_key, key):
            successor.store(
                o.cache.store_shared(("node", key, value, fingerprint, succ_forwards))
            )
            return _bump_meta(o, tree, grew=False)

    level = _level_for(o, tree)
    new_forwards = []
    for lvl in range(tree.max_level):
        if lvl < level:
            new_forwards.append(_forward_of(o, tree, preds[lvl], lvl))
        else:
            new_forwards.append(None)
    node = orthrus_new(("node", key, value, fingerprint, tuple(new_forwards)))
    for lvl in range(level):
        _set_forward(o, tree, preds[lvl], lvl, node)
    return _bump_meta(o, tree, grew=True)


def _forward_of(o, tree: LsmTree, pred: OrthrusPtr | None, level: int):
    if pred is None:
        _, forwards = o.cache.load_shared(tree.head.load())
        return forwards[level]
    _, _, _, _, forwards = o.cache.load_shared(pred.load())
    return forwards[level]


def _set_forward(o, tree: LsmTree, pred: OrthrusPtr | None, level: int, target: OrthrusPtr):
    if pred is None:
        tag, forwards = o.cache.load_shared(tree.head.load())
        updated = forwards[:level] + (target,) + forwards[level + 1 :]
        tree.head.store(o.cache.store_shared((tag, updated)))
        return
    tag, key, value, fingerprint, forwards = o.cache.load_shared(pred.load())
    updated = forwards[:level] + (target,) + forwards[level + 1 :]
    pred.store(o.cache.store_shared((tag, key, value, fingerprint, updated)))


def _bump_meta(o, tree: LsmTree, grew: bool) -> int:
    _, seq, count = o.cache.load_shared(tree.meta.load())
    new_seq = o.alu.add(seq, 1)
    new_count = o.alu.add(count, 1) if grew else count
    tree.meta.store(o.cache.store_shared(("meta", new_seq, new_count)))
    return new_seq


@closure(name="lsm.remove")
def lsm_remove(tree: LsmTree, key_ptr: OrthrusPtr) -> int:
    """Delete a key by writing a tombstone (the LSM deletion idiom): the
    marker shadows older versions in lower tiers until compaction."""
    return lsm_put(tree, key_ptr)


@closure(name="lsm.get")
def lsm_get(tree: LsmTree, key: int):
    """Read a key: memtable first, then SSTable blocks newest-first."""
    o = ops()
    preds = _find_predecessors(o, tree, key)
    successor = _forward_of(o, tree, preds[0], 0)
    if successor is not None:
        _, succ_key, succ_value, _, _ = o.cache.load_shared(successor.load())
        if o.alu.eq(succ_key, key):
            return None if succ_value == TOMBSTONE else succ_value
    # Tier 2: binary-search each block, newest first.  Block reads are
    # device interactions, recorded for replay.
    for index in range(len(tree.disk) - 1, -1, -1):
        block = syscall("disk_read", lambda i=index: tree.disk[i])
        pairs, _checksum = block
        low, high = 0, len(pairs)
        while o.alu.lt(low, high):
            mid = o.alu.shr(o.alu.add(low, high), 1)
            if o.alu.lt(pairs[mid][0], key):
                low = o.alu.add(mid, 1)
            else:
                high = mid
        if low < len(pairs) and o.alu.eq(pairs[low][0], key):
            value = pairs[low][1]
            return None if value == TOMBSTONE else value
    return None


@closure(name="lsm.flush")
def lsm_flush(tree: LsmTree) -> int:
    """Flush the memtable into a new SSTable block; returns pairs written.

    Walks the level-0 chain (already sorted), computes a vectorized block
    checksum, writes the block through a recorded device write, deletes
    the memtable nodes, and resets the head/meta.
    """
    o = ops()
    pairs: list[tuple[int, int]] = []
    nodes: list[OrthrusPtr] = []
    _, forwards = o.cache.load_shared(tree.head.load())
    cursor = forwards[0]
    while cursor is not None:
        _, key, value, _, node_forwards = o.cache.load_shared(cursor.load())
        pairs.append((key, value))
        nodes.append(cursor)
        cursor = node_forwards[0]
    block_checksum = o.simd.vsum(tuple(key & 0xFFFF for key, _ in pairs) or (0,))
    block = (tuple(pairs), block_checksum)
    syscall("disk_write", lambda: _disk_append(tree, block))
    for node in nodes:
        node.delete()
    tree.head.store(o.cache.store_shared(("head", (None,) * tree.max_level)))
    _, seq, _ = o.cache.load_shared(tree.meta.load())
    tree.meta.store(o.cache.store_shared(("meta", seq, 0)))
    # The checksum is part of the returned status so a corrupted block
    # checksum is comparable (the block itself lives on the device, outside
    # the versioned space).
    return (len(pairs), block_checksum)


def _disk_append(tree: LsmTree, block: tuple) -> int:
    tree.disk.append(block)
    return len(block[0])


@closure(name="lsm.compact")
def lsm_compact(tree: LsmTree) -> int:
    """Merge all SSTable blocks into one (newest value wins); returns the
    merged block size."""
    o = ops()
    blocks = syscall("disk_read_all", lambda: list(tree.disk))
    merged: dict[int, int] = {}
    for pairs, _checksum in blocks:  # oldest → newest
        for key, value in pairs:
            merged[key] = value
    # Compaction is where tombstoned keys finally disappear.
    pairs = tuple(
        (key, value) for key, value in sorted(merged.items()) if value != TOMBSTONE
    )
    block_checksum = o.simd.vsum(tuple(key & 0xFFFF for key, _ in pairs) or (0,))
    syscall("disk_replace", lambda: _disk_replace(tree, (pairs, block_checksum)))
    return (len(pairs), block_checksum)


def _disk_replace(tree: LsmTree, block: tuple) -> int:
    tree.disk.clear()
    tree.disk.append(block)
    return len(block[0])
