"""Log-structured merge tree (Table 1 workload #3)."""

from repro.apps.lsmtree.lsm import (
    TOMBSTONE,
    LsmTree,
    lsm_compact,
    lsm_flush,
    lsm_get,
    lsm_put,
    lsm_remove,
)
from repro.apps.lsmtree.server import LsmTreeServer

__all__ = [
    "LsmTree",
    "LsmTreeServer",
    "TOMBSTONE",
    "lsm_compact",
    "lsm_flush",
    "lsm_get",
    "lsm_put",
    "lsm_remove",
]
