"""The four evaluated applications (Table 1), each split into an
Orthrus-protected data path and a conventional control path."""

from repro.apps.common import AppServer, Packet, transfer, unwrap
from repro.apps.lsmtree import LsmTreeServer
from repro.apps.masstree import MasstreeServer
from repro.apps.memcached import MemcachedServer
from repro.apps.phoenix import WordCountJob

__all__ = [
    "AppServer",
    "LsmTreeServer",
    "MasstreeServer",
    "MemcachedServer",
    "Packet",
    "WordCountJob",
    "transfer",
    "unwrap",
]
