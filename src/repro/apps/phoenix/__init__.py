"""Phoenix MapReduce framework and the word-count job (Table 1 #4)."""

from repro.apps.phoenix.framework import PhoenixJob, map_task, reduce_task
from repro.apps.phoenix.wordcount import WordCountJob, wordcount_map, wordcount_reduce

__all__ = [
    "PhoenixJob",
    "WordCountJob",
    "map_task",
    "reduce_task",
    "wordcount_map",
    "wordcount_reduce",
]
