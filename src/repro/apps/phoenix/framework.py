"""Phoenix MapReduce framework: split/map/shuffle/reduce over closures.

The framework code (splitter, shuffler, scheduler) is the control path; the
map and reduce *tasks* are annotated closures, exactly how the paper ports
Phoenix (§4.1: "each map and reduce function is annotated as a closure").
User-defined map/reduce functions are plain callables executed inside the
task closures, so re-execution covers them.

Unlike the KV stores, each task manipulates a large batch of user data and
produces one big container version — few logs, big payloads.  That shape is
what drives Phoenix's behaviour in the paper: tiny runtime overhead (<2%),
huge RBV serialization costs, and the steepest coverage drop when validation
cores are scarce (each skipped log forfeits a lot of user data).

Instruction mix: ALU (hashing, counting), FPU (per-chunk statistics), SIMD
(vectorized count aggregation).  No cache-coherency instructions — Table
2's Phoenix cache column is zero because mappers share nothing.
"""

from __future__ import annotations

from typing import Callable

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.memory.pointer import OrthrusPtr, orthrus_new

#: user map: (ops, text) -> iterable of (key, value)
MapFn = Callable[[object, str], list[tuple[str, int]]]
#: user reduce: (ops, key, values) -> value
ReduceFn = Callable[[object, str, list[int]], int]


@closure(name="phx.map_task")
def map_task(map_fn: MapFn, chunk_ptr: OrthrusPtr, n_partitions: int) -> OrthrusPtr:
    """Run one user map over a chunk and partition its emissions.

    Output: one container version holding ``n_partitions`` dicts plus
    per-chunk statistics (pair count, mean value — floating point).
    """
    o = ops()
    text = chunk_ptr.load()  # CRC probe: the chunk crossed the control path
    partitions: tuple[dict, ...] = tuple({} for _ in range(n_partitions))
    pair_count = 0
    value_total = 0.0
    for key, value in map_fn(o, text):
        index = o.alu.mod(o.alu.hash64(key), n_partitions)
        bucket = partitions[index]
        if key in bucket:
            bucket[key] = o.alu.add(bucket[key], value)
        else:
            bucket[key] = value
        pair_count = o.alu.add(pair_count, 1)
        value_total = o.fpu.fadd(value_total, float(value))
    mean_value = o.fpu.fdiv(value_total, float(pair_count)) if pair_count else 0.0
    lane_counts = tuple(len(bucket) for bucket in partitions)
    distinct = o.simd.vsum(lane_counts)
    container = orthrus_new(
        {
            "partitions": partitions,
            "pairs": pair_count,
            "mean": mean_value,
            "distinct": distinct,
        }
    )
    return container


@closure(name="phx.reduce_task")
def reduce_task(
    reduce_fn: ReduceFn,
    containers: tuple[OrthrusPtr, ...],
    partition: int,
) -> OrthrusPtr:
    """Merge one partition across all map outputs with the user reduce."""
    o = ops()
    grouped: dict[str, list[int]] = {}
    mean_total = 0.0
    distinct_lanes = []
    for container in containers:
        payload = container.load()
        for key, value in payload["partitions"][partition].items():
            grouped.setdefault(key, []).append(value)
        # Fold the mappers' floating-point and vector statistics into this
        # partition's summary, so fp/vector corruption in any map stage
        # propagates to user data the job externalizes.
        mean_total = o.fpu.fadd(mean_total, payload["mean"])
        distinct_lanes.append(payload["distinct"])
    mean_stat = o.fpu.fdiv(mean_total, float(len(containers))) if containers else 0.0
    spread = o.simd.vsum(tuple(distinct_lanes) or (0.0,))
    reduced = {
        key: reduce_fn(o, key, values) for key, values in sorted(grouped.items())
    }
    lanes = tuple(v & 0xFFFF for v in list(reduced.values())[:8]) or (0,)
    digest = o.simd.vsum(lanes)
    result = orthrus_new(
        {
            "partition": partition,
            "counts": reduced,
            "digest": digest,
            "mean_stat": mean_stat,
            "spread": spread,
        }
    )
    return result


class PhoenixJob:
    """One MapReduce job: owns the control path (split/schedule/merge)."""

    def __init__(
        self,
        runtime,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        n_partitions: int = 8,
    ):
        from repro.runtime.orthrus import OrthrusRuntime

        assert isinstance(runtime, OrthrusRuntime)
        self.runtime = runtime
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.n_partitions = n_partitions
        self.map_outputs: list[OrthrusPtr] = []
        self.reduce_outputs: list[OrthrusPtr] = []

    def split(self, chunks: list[str]) -> list[OrthrusPtr]:
        """Splitter (control path): each chunk travels as a checksummed
        packet through a control-path hop into versioned memory."""
        from repro.apps.common import Packet, transfer, unwrap

        core = self.runtime.current_core()
        chunk_ptrs = []
        for chunk in chunks:
            packet = transfer(core, Packet.wrap(chunk), "phx.control.split")
            value, checksum = unwrap(packet)
            chunk_ptrs.append(self.runtime.receive(value, checksum))
        return chunk_ptrs

    def run(self, chunks: list[str]) -> dict[str, int]:
        """Execute the full job; returns the merged result."""
        with self.runtime:
            return self._run(chunks)

    def _run(self, chunks: list[str]) -> dict[str, int]:
        chunk_ptrs = self.split(chunks)
        self.map_outputs = [
            map_task(self.map_fn, chunk_ptr, self.n_partitions)
            for chunk_ptr in chunk_ptrs
        ]
        containers = tuple(self.map_outputs)
        self.reduce_outputs = [
            reduce_task(self.reduce_fn, containers, partition)
            for partition in range(self.n_partitions)
        ]
        return self.merge()

    def merge(self) -> dict[str, int]:
        """Final merge (control path): results are only revealed here, at
        the end of execution — Phoenix's natural safe-mode point (§3.5)."""
        heap = self.runtime.heap
        merged: dict[str, int] = {}
        self.stats = []
        for result in self.reduce_outputs:
            payload = heap.latest(result.obj_id).value
            merged.update(payload["counts"])
            self.stats.append(
                (
                    payload["partition"],
                    payload["digest"],
                    payload["mean_stat"],
                    payload["spread"],
                )
            )
        return merged
