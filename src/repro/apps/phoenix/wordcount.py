"""Word count on Phoenix — the paper's batch workload (WMT corpus)."""

from __future__ import annotations

import hashlib

from repro.apps.phoenix.framework import PhoenixJob
from repro.memory.checksum import serialize
from repro.runtime.orthrus import OrthrusRuntime


def wordcount_map(o, text: str) -> list[tuple[str, int]]:
    """User map: tokenize and emit (word, 1) with counted instructions."""
    emits = []
    for word in text.split():
        emits.append((word, 1))
    return emits


def wordcount_reduce(o, word: str, values: list[int]) -> int:
    """User reduce: sum the partial counts through ALU adds."""
    total = 0
    for value in values:
        total = o.alu.add(total, value)
    return total


class WordCountJob:
    """Driver bundling the Phoenix job with digest/reference helpers."""

    externalizing = frozenset({"phx.reduce_task"})

    def __init__(self, runtime: OrthrusRuntime, n_partitions: int = 8):
        self.runtime = runtime
        self.job = PhoenixJob(runtime, wordcount_map, wordcount_reduce, n_partitions)
        self.result: dict[str, int] = {}

    def run(self, chunks: list[str]) -> dict[str, int]:
        self.result = self.job.run(chunks)
        return self.result

    def state_digest(self) -> int:
        stats = tuple(getattr(self.job, "stats", ()))
        payload = serialize((tuple(sorted(self.result.items())), stats))
        return int.from_bytes(hashlib.sha1(payload).digest()[:8], "little")
