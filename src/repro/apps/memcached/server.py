"""Memcached control path: request parsing, dispatch, and response.

The control path mirrors Listing 3's server side: requests arrive as
packets, the command token is parsed and compared with control-path
instructions (``drive_machine`` → ``process_command_ascii``), and the
matching data operator is invoked.  Faults in this code can:

* corrupt a payload in transit → caught by the CRC probe at the first
  data-path load (Figure 3);
* corrupt the response in transit → caught by the client-side CRC check;
* flip a dispatch comparison so the wrong operator runs → *not* caught by
  Orthrus (§2.3, limitation 3) but caught by RBV's full re-execution.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.apps.common import AppServer, Packet
from repro.apps.memcached.storage import HashTable, mc_get, mc_incr, mc_remove, mc_set
from repro.memory.checksum import serialize
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.base import Op


class MemcachedServer(AppServer):
    """An in-memory object cache with an Orthrus-protected data path."""

    externalizing = frozenset({"mc.get"})

    def __init__(self, runtime: OrthrusRuntime, n_buckets: int = 64):
        super().__init__(runtime)
        self.table = HashTable(runtime, n_buckets)

    # ------------------------------------------------------------------
    def _handle(self, op: Op) -> Any:
        """Process one client operation end to end (control + data path)."""
        command = self._dispatch(self._parse_token(op.kind.value))
        if command == "set":
            kv_ptr = self.receive(Packet.wrap((op.key, op.value)), "mc.control.rx")
            mc_set(self.table, kv_ptr)
            kv_ptr.delete()  # free the request buffer (its version stays
            # readable until the closure's validation window closes)
            return "STORED"
        if command == "get":
            value = mc_get(self.table, op.key)
            return self.respond(value, "mc.control.tx")
        if command == "remove":
            removed = mc_remove(self.table, op.key)
            return "DELETED" if removed else "NOT_FOUND"
        if command == "incr":
            value = mc_incr(self.table, op.key, int(op.value or 1))
            return self.respond(value, "mc.control.tx")
        raise ValueError(f"unknown command {command!r}")

    def _dispatch(self, token: str) -> str:
        """``process_command_ascii``: one compare instruction per command.

        Each comparison is a distinct instruction site, so a fault pinned
        to one of them silently redirects exactly one command type to the
        wrong operator — e.g. GETs falling through to REMOVE (silent data
        loss, invisible to checksums; §2.3 limitation 3).
        """
        core = self._core()
        with core.scope("mc.control.dispatch"):
            for command in ("set", "get", "remove", "incr"):
                if core.alu.eq(token, command):
                    return command
        return "?"

    def _parse_token(self, kind: str) -> str:
        """ASCII command parsing (``try_read_command_ascii``): the token
        bytes move through a control-path copy instruction."""
        core = self._core()
        with core.scope("mc.control.parse"):
            raw = core.alu.copy(kind.encode("ascii"))
        return raw.decode("ascii", errors="replace")

    # ------------------------------------------------------------------
    def state_digest(self) -> int:
        """Ground-truth digest of the cache contents (pure Python).

        Structure-sensitive: the digest covers *which bucket* each item
        sits in, so a mis-hashed insert (Listing 2's never-retrievable
        item) diverges even when the flat key/value multiset matches.
        """
        heap = self.runtime.heap
        layout = []
        for index, bucket in enumerate(self.table.buckets):
            chain = []
            for entry in heap.latest(bucket.obj_id).value:
                if heap.exists(entry.obj_id):
                    key, value, digest = heap.latest(entry.obj_id).value
                    chain.append((key, value, digest))
            if chain:
                layout.append((index, tuple(sorted(chain))))
        payload = serialize(tuple(layout))
        return int.from_bytes(hashlib.sha1(payload).digest()[:8], "little")

    def items(self) -> dict[str, str]:
        """Plain-Python view of live cache contents (tests/examples)."""
        out = {}
        heap = self.runtime.heap
        for bucket in self.table.buckets:
            for entry in heap.latest(bucket.obj_id).value:
                if heap.exists(entry.obj_id):
                    key, value, _ = heap.latest(entry.obj_id).value
                    out[key] = value
        return out
