"""Memcached data path: a versioned hash table and its operators.

Mirrors Listing 3's split: the operators below (`set`, `get`, `remove`,
`incr`) are the *entire* data path — the only code that touches user data —
and each is an annotated closure.  The hash table lives in versioned
memory: each bucket is a user-data object holding a tuple of item pointers,
and each item is a ``(key, value)`` payload.

Instruction mix (drives Table 2's per-unit SDC columns for Memcached):
ALU (hashing, masking, key compare), SIMD (vectorized value digest — the
SSE memcpy/memcmp of real memcached), CACHE (coherent bucket/item access
under item locks).  No floating point, matching the paper's Memcached
fp-SDC count of zero.
"""

from __future__ import annotations

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.memory.pointer import OrthrusPtr, orthrus_new
from repro.runtime.orthrus import OrthrusRuntime

#: lanes used for the vectorized value digest
_DIGEST_LANES = 8


def _value_lanes(value: str) -> tuple[int, ...]:
    """Fixed-width lane view of a value, as a vector unit would see it."""
    codes = [ord(ch) for ch in value[:_DIGEST_LANES]]
    codes.extend([0] * (_DIGEST_LANES - len(codes)))
    return tuple(codes)


class HashTable:
    """A power-of-two-bucket hash table in versioned memory."""

    def __init__(self, runtime: OrthrusRuntime, n_buckets: int = 64):
        if n_buckets & (n_buckets - 1):
            raise ValueError("n_buckets must be a power of two")
        self.mask = n_buckets - 1
        #: bucket objects, allocated at startup (control-path setup)
        self.buckets: list[OrthrusPtr] = [runtime.new(()) for _ in range(n_buckets)]

    def bucket_for(self, hashed: int) -> OrthrusPtr:
        return self.buckets[hashed & self.mask]


@closure(name="mc.set")
def mc_set(table: HashTable, kv_ptr: OrthrusPtr):
    """Insert or update a key — Listing 3's ``set`` operator.

    The first ``kv_ptr.load()`` verifies the CRC that travelled with the
    payload through the control path (Figure 3).
    """
    o = ops()
    key, value = kv_ptr.load()
    hashed = o.alu.hash64(key)
    index = o.alu.and_(hashed, table.mask)
    bucket = table.buckets[index]
    entries = o.cache.load_shared(bucket.load())
    digest = o.simd.vsum(_value_lanes(value))
    for entry in entries:
        entry_key, _, _ = o.cache.load_shared(entry.load())
        if o.alu.eq(entry_key, key):
            entry.store(o.cache.store_shared((key, value, digest)))
            return entry
    item = orthrus_new((key, value, digest))
    bucket.store(o.cache.store_shared((item,) + entries))
    return item


@closure(name="mc.get")
def mc_get(table: HashTable, key: str):
    """Lookup — the externalizing operator (its result reaches the client).

    Pure ALU + cache-coherency instructions: the vectorized digest is
    produced on the write path only, so (as in the real codebase) the hot
    read path carries no fp/vector instructions and is *not* tagged
    error-prone by the compiler (§3.5).
    """
    o = ops()
    hashed = o.alu.hash64(key)
    index = o.alu.and_(hashed, table.mask)
    bucket = table.buckets[index]
    entries = o.cache.load_shared(bucket.load())
    for entry in entries:
        entry_key, entry_value, _digest = o.cache.load_shared(entry.load())
        if o.alu.eq(entry_key, key):
            return entry_value
    return None


@closure(name="mc.remove")
def mc_remove(table: HashTable, key: str) -> bool:
    """Delete a key — frees the item and rewrites the bucket chain."""
    o = ops()
    hashed = o.alu.hash64(key)
    index = o.alu.and_(hashed, table.mask)
    bucket = table.buckets[index]
    entries = o.cache.load_shared(bucket.load())
    for position, entry in enumerate(entries):
        entry_key, _, _ = o.cache.load_shared(entry.load())
        if o.alu.eq(entry_key, key):
            remaining = entries[:position] + entries[position + 1 :]
            bucket.store(o.cache.store_shared(remaining))
            entry.delete()
            return True
    return False


@closure(name="mc.incr")
def mc_incr(table: HashTable, key: str, delta: int):
    """Arithmetic update of a counter value (memcached ``incr``)."""
    o = ops()
    hashed = o.alu.hash64(key)
    index = o.alu.and_(hashed, table.mask)
    bucket = table.buckets[index]
    entries = o.cache.load_shared(bucket.load())
    for entry in entries:
        entry_key, entry_value, _ = o.cache.load_shared(entry.load())
        if o.alu.eq(entry_key, key):
            new_value = str(o.alu.add(int(entry_value), delta))
            digest = o.simd.vsum(_value_lanes(new_value))
            entry.store(o.cache.store_shared((key, new_value, digest)))
            return new_value
    return None
