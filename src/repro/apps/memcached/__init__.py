"""Memcached-style in-memory object cache (Table 1 workload #1)."""

from repro.apps.memcached.server import MemcachedServer
from repro.apps.memcached.storage import HashTable, mc_get, mc_incr, mc_remove, mc_set

__all__ = ["HashTable", "MemcachedServer", "mc_get", "mc_incr", "mc_remove", "mc_set"]
