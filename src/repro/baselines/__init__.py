"""Comparison baselines: RBV, random sampling, offline CPU testing."""

from repro.baselines.offline import OfflineCpuCheck, ScanResult
from repro.baselines.rbv import RbvStats, RbvValidator
from repro.baselines.same_core_replay import SameCoreReplayValidator
from repro.runtime.sampling import RandomSampler

__all__ = [
    "OfflineCpuCheck",
    "RandomSampler",
    "RbvStats",
    "RbvValidator",
    "SameCoreReplayValidator",
    "ScanResult",
]
