"""Replication-based validation (RBV) baseline (§4.1).

RBV runs an unmodified replica of the application on a *separate server*
(healthy cores, independent state).  The primary batches each request and
its response and forwards them to the replica, which re-executes the full
request — control path included — and compares results; any mismatch
interrupts the primary.

This functional model captures RBV's detection behaviour:

* it re-executes the *entire* program, so it also catches control-path
  branch errors that Orthrus's checksums cannot (Table 2's gap);
* it must replay requests in submission order — data dependencies force
  sequential replica execution (the synchronization costs measured by the
  timing harness);
* it compares externally visible responses per request plus periodic state
  digests (the classic replicated-state-machine output/state check).

Timing (network transfer, batching stalls, tail latency) is charged by the
benchmark harness; this module is the functional engine it drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.detection import DetectionEvent, DetectionReport
from repro.workloads.base import Op


@dataclass
class RbvStats:
    requests: int = 0
    batches: int = 0
    state_checks: int = 0
    forwarded_bytes: int = 0


class RbvValidator:
    """Drives a primary/replica pair and compares their behaviour.

    Args:
        primary: the (possibly mercurial) application server.
        replica: an identically-configured server on healthy cores.
        batch_size: requests per replication batch (§4.1 uses batching to
            reduce sync frequency).
        state_check_every: compare full state digests every N requests —
            catches corruptions that never surfaced in a response.
    """

    def __init__(
        self,
        primary,
        replica,
        batch_size: int = 16,
        state_check_every: int = 64,
        estimate_bytes: Callable[[Any], int] | None = None,
    ):
        self.primary = primary
        self.replica = replica
        self.batch_size = batch_size
        self.state_check_every = state_check_every
        self.report = DetectionReport()
        self.stats = RbvStats()
        self._pending: list[tuple[Op, Any, BaseException | None]] = []
        self._estimate_bytes = estimate_bytes or (lambda response: 64)

    # ------------------------------------------------------------------
    def submit(self, op: Op) -> Any:
        """Process one request on the primary and enqueue it for replica
        validation; returns the primary's response."""
        error: BaseException | None = None
        response: Any = None
        try:
            response = self.primary.handle(op)
        except Exception as exc:  # primary fail-stop still gets replayed
            error = exc
        self._pending.append((op, response, error))
        self.stats.requests += 1
        self.stats.forwarded_bytes += self._estimate_bytes(response)
        if len(self._pending) >= self.batch_size:
            self.flush()
        if self.stats.requests % self.state_check_every == 0:
            self.check_state()
        if error is not None:
            raise error
        return response

    def flush(self) -> None:
        """Replay the pending batch on the replica, in order, comparing
        each response."""
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.stats.batches += 1
        for op, primary_response, primary_error in batch:
            replica_error: BaseException | None = None
            replica_response: Any = None
            try:
                replica_response = self.replica.handle(op)
            except Exception as exc:
                replica_error = exc
            if primary_error is not None or replica_error is not None:
                if type(primary_error) is not type(replica_error):
                    self._detect(op, "crash divergence between primary and replica")
                continue
            if primary_response != replica_response:
                self._detect(op, "response divergence")

    def check_state(self) -> None:
        """Compare full state digests (flushes the batch first so both
        sides have processed the same prefix)."""
        self.flush()
        self.stats.state_checks += 1
        if self.primary.state_digest() != self.replica.state_digest():
            self._detect(None, "state digest divergence")

    def finish(self) -> DetectionReport:
        """End of run: flush and do a final state comparison."""
        self.flush()
        self.check_state()
        return self.report

    # ------------------------------------------------------------------
    def _detect(self, op: Op | None, detail: str) -> None:
        self.report.record(
            DetectionEvent(
                kind="rbv",
                closure=str(op.kind.value) if op is not None else "<state>",
                seq=self.stats.requests,
                time=float(self.stats.requests),
                detail=detail,
            )
        )

    @property
    def detections(self) -> int:
        return self.report.count()
