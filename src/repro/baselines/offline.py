"""Offline CPU testing baseline (§5, "Offline CPU testing").

Cloud providers periodically run known-answer test batteries over their
fleets (e.g. Google's cpu-check); this finds *mercurial cores* but not the
user data they corrupted in the weeks between runs.  The battery below
exercises each functional unit with fixed inputs and compares against
golden outputs computed off-machine.

Two properties the benchmarks demonstrate:

* a battery pass does not imply application safety — a fault pinned to an
  application-specific instruction site is invisible to the battery's
  sites (the paper's core argument for online validation);
* even when the battery catches a defective core, every corruption that
  happened since the previous scan has already escaped (timeliness gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.core import Core
from repro.machine.cpu import Machine


def _battery(core: Core) -> list[tuple[str, object]]:
    """Run the known-answer kernels on a core; returns (name, result)."""
    results: list[tuple[str, object]] = []
    with core.scope("cpucheck.battery"):
        acc = 0
        for value in range(1, 17):
            acc = core.alu.add(acc, value)
        results.append(("alu.sum", acc))
        results.append(("alu.hash", core.alu.hash64("cpu-check-vector")))
        f = 1.0
        for _ in range(8):
            f = core.fpu.fmul(f, 1.5)
        results.append(("fpu.pow", f))
        results.append(("simd.dot", core.simd.vdot((1, 2, 3, 4), (5, 6, 7, 8))))
        results.append(("simd.sum", core.simd.vsum(tuple(range(16)))))
        results.append(("alu.copy", core.alu.copy(b"0123456789abcdef" * 4)))
    return results


#: golden outputs, computed once on a known-healthy core
_GOLDEN = _battery(Core(core_id=-1))


@dataclass
class ScanResult:
    """One fleet scan."""

    #: core_id → list of failed kernel names
    failures: dict[int, list[str]] = field(default_factory=dict)

    @property
    def flagged_cores(self) -> list[int]:
        return sorted(self.failures)

    @property
    def clean(self) -> bool:
        return not self.failures


class OfflineCpuCheck:
    """Periodic fleet scanner."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.scans = 0

    def scan(self) -> ScanResult:
        """Run the battery on every core and compare with golden outputs."""
        self.scans += 1
        result = ScanResult()
        for core in self.machine.cores:
            failed = [
                name
                for (name, value), (gold_name, gold_value) in zip(
                    _battery(core), _GOLDEN
                )
                if value != gold_value
            ]
            if failed:
                result.failures[core.core_id] = failed
        return result
