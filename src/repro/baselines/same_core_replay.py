"""Same-core replay baseline (§5 "Transient Error Detection").

PASC/SEI-style time redundancy tolerates *transient* errors by re-executing
work on the **same core** and comparing.  The paper's fault model (§2.1)
is different: production SDCs are dominated by persistent, reproducible
defects pinned to one core — and replaying on that same core reproduces
the corruption bit-for-bit, so the comparison passes and the error escapes.

This baseline exists to demonstrate that distinction: it reuses Orthrus's
closure logs but schedules the re-execution on the core that ran the
original.  Against transient faults (``trigger_rate`` well below 1) the two
executions usually disagree and the error is caught; against the paper's
persistent faults it is blind, which is exactly why Orthrus insists on a
*different* core (§3.3).
"""

from __future__ import annotations

from typing import Callable

from repro.clock import Clock
from repro.closures.context import ExecutionContext
from repro.closures.log import ClosureLog
from repro.detection import DetectionEvent
from repro.machine.core import Core
from repro.memory.heap import VersionedHeap
from repro.validation.comparator import (
    ComparisonResult,
    canonicalize_ptrs,
    compare_execution,
)


class SameCoreReplayValidator:
    """Time-redundancy validator: replay on the original core."""

    def __init__(
        self,
        heap: VersionedHeap,
        clock: Clock,
        detector: Callable[[DetectionEvent], None] | None = None,
    ):
        self._heap = heap
        self._clock = clock
        self._detector = detector
        self.replayed_count = 0
        self.mismatch_count = 0

    def replay(self, log: ClosureLog, core: Core) -> bool:
        """Re-execute ``log`` on ``core`` (the APP core); returns True when
        the replay matched.  A persistent defect on that core corrupts the
        replay identically, so a match does NOT imply correctness."""
        ctx = ExecutionContext(
            ExecutionContext.VAL,
            core=core,
            heap=self._heap,
            log=log,
            verify_checksums=False,
        )
        failure: str | None = None
        val_retval = None
        try:
            with ctx:
                raw = log.func(*log.args, **log.kwargs)
                val_retval = ctx.canonicalize(raw)
        except Exception as exc:
            failure = f"replay raised {type(exc).__name__}: {exc}"

        if failure is not None:
            result = ComparisonResult.mismatch(failure)
        else:
            app_positions = {oid: k for k, oid in enumerate(log.allocated)}

            def canon_app(obj_id: int):
                position = app_positions.get(obj_id)
                return ("ptr:new", position) if position is not None else ("ptr", obj_id)

            app_outputs = [
                (
                    canon_app(self._heap.version(vid).obj_id),
                    canonicalize_ptrs(self._heap.version(vid).value, canon_app),
                )
                for vid in log.output_versions
            ]
            val_outputs = [
                (ctx.canon_obj(obj_id), canonicalize_ptrs(value, ctx.canon_obj))
                for obj_id, value in ctx.private.writes
            ]
            val_deletes = [ctx.canon_obj(oid) for oid in ctx.private.deleted]
            result = compare_execution(
                app_outputs=app_outputs,
                val_outputs=val_outputs,
                app_retval=log.retval,
                val_retval=val_retval,
                app_deletes=log.deletes,
                val_deletes=val_deletes,
                compare=log.compare,
            )

        self.replayed_count += 1
        if not result.matches:
            self.mismatch_count += 1
            if self._detector is not None:
                self._detector(
                    DetectionEvent(
                        kind="same-core-replay",
                        closure=log.closure_name,
                        seq=log.seq,
                        time=self._clock.now(),
                        detail=result.detail,
                    )
                )
        return result.matches
