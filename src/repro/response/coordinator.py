"""The response coordinator: wires detection into remediation.

Attached to an :class:`~repro.runtime.orthrus.OrthrusRuntime` as its
``responder``, the coordinator observes every closure log and every
detection event the runtime produces and drives the response state
machine:

1. first detection → **pause reclamation** (blast-radius evidence must not
   be garbage-collected mid-incident);
2. validation mismatch → **arbitrate** on a third core, feed the verdict
   into per-core health scores;
3. health threshold crossed → **quarantine** the core out of both
   scheduling pools;
4. :meth:`finalize` → **blast-radius analysis + repair** on healthy cores,
   reclamation resumed, everything summarized in an
   :class:`~repro.response.report.IncidentReport`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.closures.log import ClosureLog
from repro.detection import DetectionEvent, is_canary_closure
from repro.errors import ConfigurationError
from repro.response.arbiter import Arbiter
from repro.response.quarantine import QuarantineConfig, QuarantineManager
from repro.response.repair import Repairer, RepairResult
from repro.response.report import IncidentReport
from repro.validation.validator import ValidationOutcome


@dataclass(slots=True)
class ResponseConfig:
    """Knobs for the detection→remediation pipeline."""

    quarantine: QuarantineConfig = field(default_factory=QuarantineConfig)
    #: run the third-core referee on every validation mismatch
    arbitrate: bool = True
    #: freeze version reclamation from first detection to finalize()
    pause_reclamation: bool = True
    #: run blast-radius analysis + repair in finalize()
    auto_repair: bool = True
    #: closure logs retained for blast-radius/repair (None: unbounded —
    #: fine for tests and demos; deployments bound this by the window)
    log_retention: int | None = None
    #: cap on repair taint-fixpoint rounds
    max_repair_rounds: int = 8
    #: clean logs retained as probation-probe material
    probe_retention: int = 32
    #: keep the evidence hold past finalize() so probation probes can still
    #: replay their retained logs (the deferred reclamation pass at resume
    #: would collect the probes' pinned versions); :meth:`run_probation`
    #: ends the hold.  Set this whenever probation will follow finalize.
    hold_evidence_for_probation: bool = False


class ResponseCoordinator:
    """Observes one runtime and remediates the incidents it detects."""

    def __init__(self, runtime, config: ResponseConfig | None = None):
        self.runtime = runtime
        self.config = config if config is not None else ResponseConfig()
        self.arbiter = Arbiter(runtime.heap, obs=runtime.obs)
        self.quarantine = QuarantineManager(
            machine=runtime.machine,
            scheduler=runtime.scheduler,
            heap=runtime.heap,
            config=self.config.quarantine,
            obs=runtime.obs,
        )
        self.repairer = Repairer(runtime.heap, obs=runtime.obs)
        self.report = IncidentReport()
        #: the finalize() repair result, for post-mortem inspection
        self.last_repair: RepairResult | None = None
        self.verdicts = []
        self.events: list[DetectionEvent] = []
        self._logs: "OrderedDict[int, ClosureLog]" = OrderedDict()
        self._clean_logs: "OrderedDict[int, ClosureLog]" = OrderedDict()
        self._paused_reclaim = False
        self._finalized = False
        runtime.responder = self

    # ------------------------------------------------------------------
    # runtime hooks
    # ------------------------------------------------------------------
    def on_log(self, log: ClosureLog) -> None:
        """Every completed closure log, before its validation."""
        self._logs[log.seq] = log
        retention = self.config.log_retention
        if retention is not None:
            while len(self._logs) > retention:
                self._logs.popitem(last=False)

    def on_outcome(self, outcome: ValidationOutcome) -> None:
        """Every validation outcome (clean ones decay health scores)."""
        if outcome.passed:
            self.quarantine.record_clean(outcome.log.core_id)
            self._clean_logs[outcome.log.seq] = outcome.log
            while len(self._clean_logs) > self.config.probe_retention:
                self._clean_logs.popitem(last=False)

    def on_detection(self, event: DetectionEvent) -> None:
        """Every detection event, before the runtime's abort policy runs."""
        if is_canary_closure(event.closure):
            # Canary mismatches are manufactured: the probe *proving* the
            # validation plane is alive.  No evidence hold, no arbitration,
            # no core gets blamed for doing its job.
            return
        self.events.append(event)
        now = self.runtime.heap.now()
        self.report.add(event.time, "detection", f"{event.kind} {event.detail}")
        if (
            self.config.pause_reclamation
            and not self._paused_reclaim
        ):
            self.runtime.reclaimer.pause()
            self._paused_reclaim = True
            self.report.add(now, "reclamation-paused", "evidence hold begins")
        obs = self.runtime.obs
        if obs.enabled:
            obs.spans.record(
                "arbitrate", event.seq, event.time, event.time,
                closure=event.closure, kind=event.kind,
            )
        if event.kind == "mismatch" and self.config.arbitrate:
            self._arbitrate(event, now)
        elif event.kind == "checksum" and event.app_core >= 0:
            # CRC breakage at the control/data boundary is direct evidence
            # against the core that computed/transported the payload.
            self._record_fault(event.app_core, event.time, event.seq)

    # ------------------------------------------------------------------
    def _arbitrate(self, event: DetectionEvent, now: float) -> None:
        log = self._logs.get(event.seq)
        referee = self._pick_referee(event)
        if log is None or referee is None:
            self.report.arbitrations["inconclusive"] = (
                self.report.arbitrations.get("inconclusive", 0) + 1
            )
            reason = "log evicted" if log is None else "no referee core"
            self.report.add(
                now, "arbitration", f"seq={event.seq} inconclusive ({reason})"
            )
            return
        verdict = self.arbiter.arbitrate(log, event, referee)
        self.verdicts.append(verdict)
        self.report.arbitrations[verdict.suspect] = (
            self.report.arbitrations.get(verdict.suspect, 0) + 1
        )
        self.report.add(
            now,
            "arbitration",
            f"seq={event.seq} referee=core{referee.core_id} "
            f"suspect={verdict.suspect}"
            + (f" (core {verdict.suspect_core})" if verdict.conclusive else ""),
        )
        if verdict.conclusive:
            self._record_fault(verdict.suspect_core, event.time, event.seq)

    def _record_fault(self, core_id: int, when: float, seq: int) -> None:
        newly = self.quarantine.record_fault(core_id, when, seq=seq)
        health = self.quarantine.health(core_id)
        if newly:
            obs = self.runtime.obs
            if obs.enabled:
                obs.spans.record(
                    "quarantine", seq, when, when, core=core_id,
                )
            self.report.add(
                when,
                "quarantine",
                f"core {core_id} quarantined "
                f"(score={health.score:.1f}, faults={health.faults})",
            )
        elif health.held_in_service:
            self.report.add(
                when,
                "quarantine-refused",
                f"core {core_id} implicated but kept in service "
                f"(last core of its role)",
            )

    def _pick_referee(self, event: DetectionEvent):
        """A serviceable core distinct from both implicated cores."""
        for core in self.runtime.machine.serviceable_cores:
            if core.core_id not in (event.app_core, event.val_core):
                return core
        return None

    # ------------------------------------------------------------------
    # probation
    # ------------------------------------------------------------------
    def _replayable(self, log: ClosureLog) -> bool:
        """Can ``log`` still be re-executed and compared against the heap?

        Once finalize() ends the evidence hold, reclamation may drop a
        retained log's pinned inputs or recorded outputs; replaying such a
        log raises rather than diverges, so it is useless as a probe.
        """
        heap = self.runtime.heap
        return all(
            heap.has_version(vid) for vid in log.inputs.values()
        ) and all(heap.has_version(vid) for vid in log.output_versions)

    def run_probation(self) -> list[int]:
        """Probe every quarantined core with retained clean logs.

        Returns the cores re-admitted.  Probes use logs produced (and
        validated clean) on *other* cores, whose evidence is still
        resolvable on the heap; a core with no eligible probe material
        simply stays quarantined.
        """
        readmitted = []
        for core_id in self.quarantine.quarantined:
            probes = [
                log
                for log in reversed(self._clean_logs.values())
                if log.core_id != core_id and self._replayable(log)
            ]
            for log in probes:
                self.quarantine.probe(core_id, log)
                state = self.quarantine.state(core_id)
                if state == "in-service":
                    readmitted.append(core_id)
                    self.report.add(
                        self.runtime.heap.now(),
                        "readmit",
                        f"core {core_id} re-admitted after probation",
                    )
                    break
        if self._finalized:
            self._end_evidence_hold()
        return readmitted

    # ------------------------------------------------------------------
    # finalize: blast radius + repair + report
    # ------------------------------------------------------------------
    def finalize(self) -> IncidentReport:
        """Close the incident: repair the heap, resume reclamation, report."""
        if self._finalized:
            raise ConfigurationError("incident already finalized")
        self._finalized = True
        report = self.report
        report.detections = len(self.events)
        by_kind: dict[str, int] = {}
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        report.detections_by_kind = by_kind
        report.quarantined_cores = self.quarantine.quarantined

        suspect = self.quarantine.top_suspect()
        if suspect is not None:
            report.faulty_core = suspect.core_id
            report.first_fault_time = suspect.first_fault_time
            report.first_fault_seq = suspect.first_fault_seq
            if self.config.auto_repair:
                self._repair(suspect.core_id, suspect.first_fault_seq)

        if not self.config.hold_evidence_for_probation:
            self._end_evidence_hold()
        now = self.runtime.heap.now()
        # Telemetry anomaly flags (SloMonitor's EWMA/z-score hooks land on
        # the runtime's DetectionReport) are incident evidence too: a
        # validator-starvation regime explains late detections.
        for regime, count in self.runtime.report.anomaly_regimes().items():
            report.add(now, "anomaly", f"{count} {regime} telemetry flag(s)")
        report.add(
            now,
            "report",
            f"incident closed: faulty_core={report.faulty_core} "
            f"repaired={report.versions_repaired} "
            f"unrecoverable={report.versions_unrecoverable}",
        )
        obs = self.runtime.obs
        if obs.enabled:
            obs.tracer.emit(
                "response.report",
                ts=now,
                faulty_core=report.faulty_core,
                detections=report.detections,
                repaired=report.versions_repaired,
                unrecoverable=report.versions_unrecoverable,
                complete=report.repair_complete,
            )
        return report

    def _end_evidence_hold(self) -> None:
        if not self._paused_reclaim:
            return
        self.runtime.reclaimer.resume()
        self._paused_reclaim = False
        self.report.add(
            self.runtime.heap.now(),
            "reclamation-resumed",
            "evidence hold ends",
        )

    def _repair(self, suspect_core: int, first_fault_seq: int | None) -> RepairResult:
        report = self.report
        since_seq = first_fault_seq if first_fault_seq is not None else 0
        healthy = [
            core
            for core in self.runtime.machine.serviceable_cores
            if core.core_id != suspect_core
        ]
        result = self.repairer.repair(
            list(self._logs.values()),
            suspect_core=suspect_core,
            since_seq=since_seq,
            healthy_cores=healthy,
            max_rounds=self.config.max_repair_rounds,
        )
        self.last_repair = result
        if result.blast is not None:
            report.versions_scanned = result.blast.versions_scanned
            report.add(
                self.runtime.heap.now(),
                "blast-radius",
                f"{len(result.blast.affected)} affected closures, "
                f"{len(result.blast.tainted_versions)} tainted versions "
                f"since seq={since_seq}",
            )
        obs = self.runtime.obs
        if obs.enabled:
            now = self.runtime.heap.now()
            obs.spans.record(
                "repair",
                since_seq,
                now,
                now,
                repaired=len(result.versions_repaired),
                unrecoverable=len(result.versions_unrecoverable),
            )
        report.versions_corrupted = len(result.versions_corrupted)
        report.versions_repaired = len(result.versions_repaired)
        report.versions_unrecoverable = len(result.versions_unrecoverable)
        report.objects_restored = len(result.objects_restored) + len(
            result.objects_deleted
        )
        report.closures_reexecuted = result.reexecuted
        report.repair_rounds = result.rounds
        report.repair_complete = result.complete
        report.add(
            self.runtime.heap.now(),
            "repair",
            f"{result.reexecuted} replays over {result.rounds} round(s): "
            f"{len(result.versions_repaired)} repaired, "
            f"{len(result.versions_unrecoverable)} unrecoverable",
        )
        return result
