"""Repair: replay affected closures on healthy cores and fix the heap (§2.3).

The blast radius gives the affected closure logs in execution order.  Each
is re-executed on a healthy core with its private heap *seeded* from an
overlay of already-corrected upstream values, so the replay computes what
the application **would** have produced without the fault.  The corrected
outputs are installed over the corrupted versions in place
(:meth:`~repro.memory.heap.VersionedHeap.repair_version`), preserving
version ids and visible windows so every log that pinned a corrupted
version re-validates against the corrected payload.

Misdirected writes need more than positional patching: a fault that
corrupts a pointer (or a hash, Listing 2) makes the APP write the *wrong
object*, so the replay's write set differs from the log's recorded one.
The repairer handles the three divergences:

* replay writes an object the log did not record → the write was
  misdirected away from it; the corrected value is installed on the true
  target, and the target joins the taint set for another blast-radius
  round (closures that read it are affected too — a fixpoint);
* the log records versions the replay never writes → those versions are
  bogus; their payload is restored to the value visible before the
  closure ran;
* the replay allocates more objects than the log → the fault suppressed
  an allocation; a fresh object is materialized to carry the value.

The fixpoint converges because taint only grows and is bounded by the
object population; a round cap guards pathological cases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.closures.log import ClosureLog
from repro.machine.core import Core
from repro.memory.heap import VersionedHeap
from repro.memory.pointer import OrthrusPtr
from repro.obs.observability import NULL_OBS
from repro.response.blast import BlastRadius, BlastRadiusAnalyzer
from repro.validation.comparator import values_equal
from repro.validation.validator import reexecute


@dataclass(slots=True)
class RepairResult:
    """Outcome of the replay-and-install pass."""

    rounds: int = 0
    #: closure replays performed on healthy cores
    reexecuted: int = 0
    #: APP output versions compared against their replayed value
    versions_checked: int = 0
    versions_corrupted: list[int] = field(default_factory=list)
    versions_repaired: list[int] = field(default_factory=list)
    versions_unrecoverable: list[int] = field(default_factory=list)
    #: misdirected-write targets whose live value was restored
    objects_restored: list[int] = field(default_factory=list)
    #: objects deleted because the healthy replay deleted them
    objects_deleted: list[int] = field(default_factory=list)
    #: objects the APP deleted but the replay did not (cannot resurrect)
    objects_unrestorable: list[int] = field(default_factory=list)
    #: seqs of logs whose replay failed outright
    failed_seqs: list[int] = field(default_factory=list)
    blast: BlastRadius | None = None

    @property
    def complete(self) -> bool:
        return (
            not self.failed_seqs
            and not self.versions_unrecoverable
            and not self.objects_unrestorable
        )


class _RepairState:
    """Accumulators shared across fixpoint rounds (sets keep replays
    idempotent: a round-2 replay of a round-1 log re-derives the same
    repairs without double counting)."""

    def __init__(self):
        self.checked: set[int] = set()
        self.corrupted: set[int] = set()
        self.repaired: set[int] = set()
        self.unrecoverable: set[int] = set()
        self.failed: set[int] = set()
        self.materialized: dict[int, int] = {}  # (seq, position) keyed below
        self.unrestorable_objects: set[int] = set()
        self.reexecuted = 0
        # per-round (last round wins): corrected final value per object and
        # deletes the healthy replay performed that the APP did not
        self.final_values: dict[int, object] = {}
        self.pending_deletes: set[int] = set()
        self.restored_objects: set[int] = set()

    def begin_round(self) -> None:
        self.final_values = {}
        self.pending_deletes = set()
        self.restored_objects = set()


class Repairer:
    """Replays affected closures and installs corrected versions."""

    MAX_ROUNDS = 8

    def __init__(self, heap: VersionedHeap, obs=None):
        self._heap = heap
        self._obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------------
    def repair(
        self,
        logs: list[ClosureLog],
        suspect_core: int,
        since_seq: int,
        healthy_cores: list[Core],
        analyzer: BlastRadiusAnalyzer | None = None,
        max_rounds: int | None = None,
    ) -> RepairResult:
        """Blast-radius → replay → install, iterated to a taint fixpoint."""
        if analyzer is None:
            analyzer = BlastRadiusAnalyzer(self._heap)
        rounds_cap = max_rounds if max_rounds is not None else self.MAX_ROUNDS
        state = _RepairState()
        result = RepairResult()
        seeds: set[int] = set()
        blast: BlastRadius | None = None
        while result.rounds < rounds_cap:
            result.rounds += 1
            blast = analyzer.analyze(
                logs, suspect_core, since_seq, seed_objects=seeds
            )
            state.begin_round()
            overlay: dict[int, object] = {}
            discovered: set[int] = set()
            cursor = 0
            for log in blast.affected:
                core, cursor = self._pick_core(healthy_cores, log, cursor)
                if core is None:
                    state.failed.add(log.seq)
                    state.unrecoverable.update(
                        vid
                        for vid in log.output_versions
                        if vid not in state.repaired
                    )
                    continue
                discovered |= self._replay(log, core, overlay, state)
            new_taint = discovered - blast.tainted_objects
            seeds = blast.tainted_objects | discovered
            if not new_taint:
                break
        self._install(state)
        result.blast = blast
        result.reexecuted = state.reexecuted
        result.versions_checked = len(state.checked)
        result.versions_corrupted = sorted(state.corrupted)
        result.versions_repaired = sorted(state.repaired)
        unrecoverable = set(state.unrecoverable)
        if blast is not None:
            unrecoverable.update(blast.unrecoverable_versions)
        result.versions_unrecoverable = sorted(unrecoverable - state.repaired)
        result.objects_restored = sorted(state.restored_objects)
        result.objects_deleted = sorted(
            obj for obj in state.pending_deletes if not self._heap.exists(obj)
        )
        result.objects_unrestorable = sorted(state.unrestorable_objects)
        result.failed_seqs = sorted(state.failed)
        obs = self._obs
        if obs.enabled:
            registry = obs.registry
            registry.counter(
                "orthrus_repair_reexecutions_total",
                help="closure replays performed by the repairer",
            ).inc(result.reexecuted)
            for label, count in (
                ("repaired", len(result.versions_repaired)),
                ("clean", result.versions_checked - len(result.versions_corrupted)),
                ("unrecoverable", len(result.versions_unrecoverable)),
            ):
                registry.counter(
                    "orthrus_repair_versions_total",
                    {"result": label},
                    help="versions examined by repair, by outcome",
                ).inc(count)
            obs.tracer.emit(
                "response.repair",
                ts=self._heap.now(),
                suspect_core=suspect_core,
                rounds=result.rounds,
                reexecuted=result.reexecuted,
                repaired=len(result.versions_repaired),
                unrecoverable=len(result.versions_unrecoverable),
                complete=result.complete,
            )
        return result

    # ------------------------------------------------------------------
    def _pick_core(
        self, healthy_cores: list[Core], log: ClosureLog, cursor: int
    ) -> tuple[Core | None, int]:
        """Round-robin over healthy cores, never the log's own APP core."""
        candidates = [c for c in healthy_cores if c.core_id != log.core_id]
        if not candidates:
            return None, cursor
        return candidates[cursor % len(candidates)], cursor + 1

    # ------------------------------------------------------------------
    def _replay(
        self,
        log: ClosureLog,
        core: Core,
        overlay: dict[int, object],
        state: _RepairState,
    ) -> set[int]:
        """Replay one log; update overlay/state; return newly tainted objs."""
        state.reexecuted += 1
        try:
            rerun = reexecute(self._heap, log, core, private_seed=overlay)
        except Exception:
            rerun = None
        if rerun is None or rerun.error is not None:
            state.failed.add(log.seq)
            state.unrecoverable.update(
                vid for vid in log.output_versions if vid not in state.repaired
            )
            return set()
        ctx = rerun.context
        mapping, surplus = self._allocation_mapping(log, ctx, state)
        # Objects the APP allocated that the healthy replay does not are
        # spurious (e.g. a duplicate item inserted because a misdirected
        # earlier write hid the real one): schedule them for deletion and
        # treat their versions as handled below.
        state.pending_deletes.update(surplus)

        # Align the replay's write stream per object against the APP's
        # recorded output versions for the same object.
        app_chain: dict[int, deque[int]] = {}
        for obj, vid in zip(log.output_objects, log.output_versions):
            app_chain.setdefault(obj, deque()).append(vid)

        discovered: set[int] = set()
        for obj, value in ctx.private.writes:
            real = mapping.get(obj, obj)
            corrected = self._remap(value, mapping)
            overlay[real] = corrected
            state.final_values[real] = corrected
            chain = app_chain.get(real)
            if chain:
                vid = chain.popleft()
                state.checked.add(vid)
                if self._heap.has_version(vid):
                    if not values_equal(self._heap.version(vid).value, corrected):
                        state.corrupted.add(vid)
                        self._heap.repair_version(vid, corrected)
                        state.repaired.add(vid)
                else:
                    state.corrupted.add(vid)
                    state.unrecoverable.add(vid)
            else:
                # The APP never recorded this write: it was misdirected
                # away from ``real`` (or suppressed).  Install later and
                # taint the true target for the next blast-radius round.
                state.restored_objects.add(real)
                discovered.add(real)

        # Versions the APP recorded that the replay never produced are
        # bogus writes; restore the payload their readers should have seen.
        for obj, chain in app_chain.items():
            for vid in chain:
                state.checked.add(vid)
                state.corrupted.add(vid)
                if obj in state.pending_deletes:
                    # spurious allocation: remediated by deleting the object
                    state.repaired.add(vid)
                    continue
                if not self._heap.has_version(vid):
                    state.unrecoverable.add(vid)
                    continue
                if obj in overlay:
                    previous = overlay[obj]
                else:
                    try:
                        previous = self._heap.visible_at(
                            obj, log.start_time
                        ).value
                    except Exception:
                        state.unrecoverable.add(vid)
                        continue
                self._heap.repair_version(vid, previous)
                state.repaired.add(vid)
                overlay[obj] = previous
                state.final_values[obj] = previous

        replay_deletes = {mapping.get(o, o) for o in ctx.private.deleted}
        app_deletes = self._app_deletes(log)
        for obj in replay_deletes - app_deletes:
            state.pending_deletes.add(obj)
            discovered.add(obj)
        for obj in app_deletes - replay_deletes:
            state.unrestorable_objects.add(obj)
        return discovered

    @staticmethod
    def _app_deletes(log: ClosureLog) -> set[int]:
        """The APP's deleted object ids, decanonicalized.

        The runtime rewrites ``log.deletes`` into comparison-canonical
        form — ``("ptr", obj_id)`` or ``("ptr:new", position)`` — after
        the APP run; the repairer needs the raw heap ids back.
        """
        out: set[int] = set()
        for entry in log.deletes:
            if isinstance(entry, tuple):
                kind, value = entry
                out.add(log.allocated[value] if kind == "ptr:new" else value)
            else:
                out.add(entry)
        return out

    def _allocation_mapping(
        self, log: ClosureLog, ctx, state: _RepairState
    ) -> tuple[dict[int, int], list[int]]:
        """Map the replay's shadow allocations to the APP's object ids.

        The k-th shadow allocation corresponds to the APP's k-th recorded
        allocation; a replay that allocates *more* than the APP recorded
        materializes fresh heap objects for the surplus (the fault made the
        APP skip them).  Materializations are memoized per (seq, position)
        so fixpoint rounds reuse the same object.  Also returns the APP
        allocations the replay never made — spurious objects the fault
        caused.
        """
        mapping: dict[int, int] = {}
        replay_allocs = 0
        for shadow, position in ctx._alloc_positions.items():
            if shadow >= 0:
                continue
            replay_allocs += 1
            if position < len(log.allocated):
                mapping[shadow] = log.allocated[position]
            else:
                key = log.seq * 1_000_003 + position
                real = state.materialized.get(key)
                if real is None:
                    real = self._heap.allocate(None)
                    state.materialized[key] = real
                mapping[shadow] = real
        return mapping, list(log.allocated[replay_allocs:])

    def _remap(self, value, mapping: dict[int, int]):
        """Rewrite shadow-object pointers inside a replayed value."""
        if isinstance(value, OrthrusPtr):
            real = mapping.get(value.obj_id)
            if real is not None and real != value.obj_id:
                return OrthrusPtr(self._heap, real)
            return value
        if isinstance(value, list):
            return [self._remap(item, mapping) for item in value]
        if isinstance(value, tuple):
            return tuple(self._remap(item, mapping) for item in value)
        if isinstance(value, dict):
            return {
                key: self._remap(item, mapping) for key, item in value.items()
            }
        return value

    # ------------------------------------------------------------------
    def _install(self, state: _RepairState) -> None:
        """Bring the *live* heap state in line with the corrected values.

        In-place version repairs already happened during replay; what is
        left is the live tip of misdirected-write targets (objects whose
        version chain never recorded the write the app should have made)
        and deletes the healthy replay performed.
        """
        for obj in sorted(state.pending_deletes):
            if self._heap.exists(obj):
                self._heap.delete(obj)
        for obj in sorted(state.restored_objects):
            if obj in state.pending_deletes or not self._heap.exists(obj):
                continue
            value = state.final_values.get(obj)
            try:
                latest = self._heap.latest(obj)
            except Exception:
                state.unrestorable_objects.add(obj)
                continue
            if not values_equal(latest.value, value):
                self._heap.repair_version(latest.version_id, value)
        # A wrongly-deleted object is only lost if nothing re-created it:
        # when a later affected closure re-allocated it, that write was
        # itself replayed and verified above.
        state.unrestorable_objects = {
            obj for obj in state.unrestorable_objects if not self._heap.exists(obj)
        }
