"""Blast-radius analysis: what did the faulty core poison? (§2.3)

Once arbitration has implicated a core, every version that core produced
since its first confirmed fault is suspect — and so is everything *derived*
from those versions by healthy cores that read them.  The versioned heap
makes this walk tractable: closure logs pin their exact input versions and
record their output versions/objects, so the taint cone is a single pass
over the logs in execution (seq) order.

Taint propagates at two granularities:

* **version taint** — a closure whose pinned inputs include a tainted
  version is affected (it computed on poisoned bytes);
* **object taint** — a closure that read *or wrote* a tainted object is
  affected even when version ids do not line up, which catches misdirected
  writes (the corrupted-pointer store of Listing 2 lands on the wrong
  object entirely).

Versions that fell out of the reclamation window before the response layer
paused reclamation are enumerable (the log keeps their ids) but
unrecoverable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.closures.log import ClosureLog
from repro.memory.heap import VersionedHeap
from repro.memory.pointer import OrthrusPtr


def _referenced_objects(value, acc: set[int]) -> None:
    """Collect obj_ids of every OrthrusPtr reachable inside ``value``."""
    if isinstance(value, OrthrusPtr):
        acc.add(value.obj_id)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _referenced_objects(item, acc)
    elif isinstance(value, dict):
        for key, item in value.items():
            _referenced_objects(key, acc)
            _referenced_objects(item, acc)


@dataclass(slots=True)
class BlastRadius:
    """The taint cone of one implicated core."""

    suspect_core: int
    since_seq: int
    #: output versions examined across all scanned logs
    versions_scanned: int = 0
    #: tainted version ids, in creation order
    tainted_versions: list[int] = field(default_factory=list)
    #: objects any tainted closure touched (outputs + allocations)
    tainted_objects: set[int] = field(default_factory=set)
    #: affected closure logs in seq order (repair replays these)
    affected: list[ClosureLog] = field(default_factory=list)
    #: tainted versions already reclaimed — enumerable but unrestorable
    unrecoverable_versions: list[int] = field(default_factory=list)

    @property
    def affected_seqs(self) -> list[int]:
        return [log.seq for log in self.affected]


class BlastRadiusAnalyzer:
    """Walks closure logs to enumerate the taint cone of a suspect core."""

    def __init__(self, heap: VersionedHeap):
        self._heap = heap

    def analyze(
        self,
        logs: Iterable[ClosureLog],
        suspect_core: int,
        since_seq: int,
        seed_objects: Iterable[int] = (),
    ) -> BlastRadius:
        """Taint every version/object downstream of ``suspect_core``.

        ``since_seq`` bounds the walk on the left: the seq of the first
        closure confirmed faulty (outputs before the first fault are
        trusted).  ``seed_objects`` pre-taints objects discovered by a
        previous repair round (the fixpoint over misdirected writes).
        """
        blast = BlastRadius(suspect_core=suspect_core, since_seq=since_seq)
        tainted_versions: set[int] = set()
        tainted_objects: set[int] = set(seed_objects)
        for log in sorted(logs, key=lambda entry: entry.seq):
            if log.seq < since_seq:
                continue
            blast.versions_scanned += len(log.output_versions)
            direct = log.core_id == suspect_core
            derived = False
            if not direct:
                if any(vid in tainted_versions for vid in log.inputs.values()):
                    derived = True
                elif any(obj in tainted_objects for obj in log.inputs):
                    derived = True
                elif any(obj in tainted_objects for obj in log.output_objects):
                    # wrote an object a tainted closure also wrote — its
                    # read-modify-write consumed poisoned state even if the
                    # pinned version ids predate the taint bookkeeping
                    derived = True
                else:
                    # a pointer argument into a tainted object (loads may
                    # not have pinned it if the value was passed by arg)
                    refs: set[int] = set()
                    _referenced_objects(log.args, refs)
                    _referenced_objects(log.kwargs, refs)
                    derived = bool(refs & tainted_objects)
            if not (direct or derived):
                continue
            blast.affected.append(log)
            for vid in log.output_versions:
                if vid not in tainted_versions:
                    tainted_versions.add(vid)
                    blast.tainted_versions.append(vid)
                    if not self._heap.has_version(vid):
                        blast.unrecoverable_versions.append(vid)
            tainted_objects.update(log.output_objects)
            tainted_objects.update(log.allocated)
        blast.tainted_objects = tainted_objects
        return blast
