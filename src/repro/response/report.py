"""The incident report: what happened, what was poisoned, what was fixed.

An :class:`IncidentReport` is the terminal artifact of one response episode
— the document an operator (or the fleet-level manager of §2.1) receives
after Orthrus has detected a corruption, arbitrated the faulty core,
quarantined it, sized the blast radius and replayed the affected closures.
It round-trips through JSON so it can be shipped off-box.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(slots=True)
class TimelineEntry:
    """One step of the incident, in occurrence order."""

    time: float
    kind: str
    detail: str

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TimelineEntry":
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            detail=str(data["detail"]),
        )


@dataclass(slots=True)
class IncidentReport:
    """Summary of one detection→remediation episode.

    ``faulty_core`` is the response layer's *inference*; the fault-injection
    campaign scores it against the injected ground truth.  A value of -1
    means no core was ever implicated (clean run).
    """

    #: the core the response layer concluded is mercurial (-1: none)
    faulty_core: int = -1
    #: cores currently quarantined (usually ``[faulty_core]``)
    quarantined_cores: list[int] = field(default_factory=list)
    #: total detection events observed
    detections: int = 0
    #: detection events by kind (mismatch / checksum / ...)
    detections_by_kind: dict[str, int] = field(default_factory=dict)
    #: arbitration verdicts by suspect role (app / validator / inconclusive)
    arbitrations: dict[str, int] = field(default_factory=dict)
    #: heap time of the first confirmed fault on ``faulty_core``
    first_fault_time: float | None = None
    #: seq of the first closure confirmed faulty on ``faulty_core``
    first_fault_seq: int | None = None
    #: versions examined by blast-radius analysis
    versions_scanned: int = 0
    #: versions whose payload diverged from the healthy re-execution
    versions_corrupted: int = 0
    #: corrupted versions restored in place
    versions_repaired: int = 0
    #: tainted versions already reclaimed (or otherwise unrestorable)
    versions_unrecoverable: int = 0
    #: objects whose live value was restored (misdirected-write targets)
    objects_restored: int = 0
    #: closure replays the repairer performed on healthy cores
    closures_reexecuted: int = 0
    #: taint-propagation rounds the repair fixpoint needed
    repair_rounds: int = 0
    #: False when replays failed or unrecoverable versions remain
    repair_complete: bool = True
    timeline: list[TimelineEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, time: float, kind: str, detail: str) -> None:
        self.timeline.append(TimelineEntry(time=time, kind=kind, detail=detail))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        data["timeline"] = [entry.to_dict() for entry in self.timeline]
        return data

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "IncidentReport":
        report = cls(
            faulty_core=int(data.get("faulty_core", -1)),
            quarantined_cores=[int(c) for c in data.get("quarantined_cores", [])],
            detections=int(data.get("detections", 0)),
            detections_by_kind={
                str(k): int(v) for k, v in data.get("detections_by_kind", {}).items()
            },
            arbitrations={
                str(k): int(v) for k, v in data.get("arbitrations", {}).items()
            },
            first_fault_time=data.get("first_fault_time"),
            first_fault_seq=data.get("first_fault_seq"),
            versions_scanned=int(data.get("versions_scanned", 0)),
            versions_corrupted=int(data.get("versions_corrupted", 0)),
            versions_repaired=int(data.get("versions_repaired", 0)),
            versions_unrecoverable=int(data.get("versions_unrecoverable", 0)),
            objects_restored=int(data.get("objects_restored", 0)),
            closures_reexecuted=int(data.get("closures_reexecuted", 0)),
            repair_rounds=int(data.get("repair_rounds", 0)),
            repair_complete=bool(data.get("repair_complete", True)),
        )
        report.timeline = [
            TimelineEntry.from_dict(entry) for entry in data.get("timeline", [])
        ]
        return report

    @classmethod
    def from_json(cls, text: str) -> "IncidentReport":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def summary_lines(self) -> list[str]:
        """Human-readable summary for CLI / demo output."""
        lines = [
            f"faulty core        : {self.faulty_core if self.faulty_core >= 0 else 'none'}",
            f"quarantined cores  : {self.quarantined_cores or 'none'}",
            f"detections         : {self.detections} {self.detections_by_kind}",
            f"arbitrations       : {self.arbitrations}",
            f"versions scanned   : {self.versions_scanned}",
            f"versions corrupted : {self.versions_corrupted}",
            f"versions repaired  : {self.versions_repaired}",
            f"unrecoverable      : {self.versions_unrecoverable}",
            f"objects restored   : {self.objects_restored}",
            f"closures replayed  : {self.closures_reexecuted} "
            f"({self.repair_rounds} round(s))",
            f"repair complete    : {self.repair_complete}",
        ]
        if self.first_fault_seq is not None:
            lines.insert(
                2,
                f"first fault        : seq={self.first_fault_seq} "
                f"t={self.first_fault_time}",
            )
        return lines
