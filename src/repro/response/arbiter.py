"""Arbitration: which core is lying? (§2.3)

A validation mismatch says the APP execution and the VAL re-execution
disagree — it does not say which one is wrong.  Either the application core
corrupted the original run, or the validation core corrupted the re-run.
The arbiter settles it by majority-of-three: the closure log is re-executed
a *third* time on a referee core distinct from both.  If the referee agrees
with the APP record, the validation core is the outlier; if the referee
diverges too, the application core is.  (Two simultaneously-faulty cores
corrupting identically would defeat this, exactly as it defeats dual
modular redundancy in general.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.closures.log import ClosureLog
from repro.detection import DetectionEvent
from repro.machine.core import Core
from repro.memory.heap import VersionedHeap
from repro.obs.observability import NULL_OBS
from repro.validation.validator import reexecute


@dataclass(frozen=True, slots=True)
class ArbitrationVerdict:
    """Outcome of one third-core re-execution."""

    seq: int
    closure: str
    app_core: int
    val_core: int
    referee_core: int
    #: "app", "validator", or "inconclusive"
    suspect: str
    #: the implicated core id; -1 when inconclusive
    suspect_core: int
    time: float
    detail: str

    @property
    def conclusive(self) -> bool:
        return self.suspect_core >= 0

    def to_dict(self) -> dict:
        return asdict(self)


class Arbiter:
    """Runs the referee re-execution and renders the verdict."""

    def __init__(self, heap: VersionedHeap, obs=None):
        self._heap = heap
        self._obs = obs if obs is not None else NULL_OBS
        self.arbitrations = 0

    def arbitrate(
        self, log: ClosureLog, event: DetectionEvent, referee: Core
    ) -> ArbitrationVerdict:
        """Re-execute ``log`` on ``referee`` and implicate a core.

        The referee must differ from both the APP core and the validation
        core that produced the mismatch; the coordinator picks it from the
        serviceable pool.
        """
        self.arbitrations += 1
        now = self._heap.now()
        try:
            rerun = reexecute(self._heap, log, referee)
        except Exception as exc:
            # Evidence gone (e.g. a pinned version reclaimed) or referee
            # misconfigured — cannot break the tie.
            verdict = ArbitrationVerdict(
                seq=log.seq,
                closure=log.closure_name,
                app_core=log.core_id,
                val_core=event.val_core,
                referee_core=referee.core_id,
                suspect="inconclusive",
                suspect_core=-1,
                time=now,
                detail=f"referee re-execution failed: {exc}",
            )
        else:
            if rerun.matches:
                # Referee agrees with the APP record: the validation run
                # was the outlier, so the validation core is suspect.
                verdict = ArbitrationVerdict(
                    seq=log.seq,
                    closure=log.closure_name,
                    app_core=log.core_id,
                    val_core=event.val_core,
                    referee_core=referee.core_id,
                    suspect="validator",
                    suspect_core=event.val_core,
                    time=now,
                    detail="referee matched the APP record",
                )
            else:
                verdict = ArbitrationVerdict(
                    seq=log.seq,
                    closure=log.closure_name,
                    app_core=log.core_id,
                    val_core=event.val_core,
                    referee_core=referee.core_id,
                    suspect="app",
                    suspect_core=log.core_id,
                    time=now,
                    detail=f"referee diverged from the APP record: "
                    f"{rerun.result.detail}",
                )
        obs = self._obs
        if obs.enabled:
            obs.registry.counter(
                "orthrus_arbitrations_total",
                {"suspect": verdict.suspect},
                help="third-core arbitration verdicts by implicated role",
            ).inc()
            obs.tracer.emit(
                "response.arbitrate",
                ts=now,
                seq=log.seq,
                closure=log.closure_name,
                app_core=verdict.app_core,
                val_core=verdict.val_core,
                referee_core=referee.core_id,
                suspect=verdict.suspect,
                suspect_core=verdict.suspect_core,
            )
        return verdict
