"""Per-core health tracking and quarantine (§2.3).

Every arbitration verdict against a core adds to its health score; when the
score crosses the configured threshold the core is pulled from *both*
scheduling pools — it must neither run application closures (it would keep
corrupting user data) nor validations (it would raise false alarms against
healthy cores).  Clean validations decay the score so a one-off transient
(a particle strike rather than a mercurial defect) does not bench a healthy
core forever.

A quarantined core can earn its way back through *probation*: the manager
re-executes known-clean closure logs on it and re-admits the core after N
consecutive agreeing probes.  Mercurial defects are often workload- or
data-dependent (§2.1), so probes reuse real production logs rather than a
synthetic self-test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.machine.cpu import Machine
from repro.memory.heap import VersionedHeap
from repro.obs.observability import NULL_OBS
from repro.runtime.scheduler import Scheduler
from repro.validation.validator import reexecute

IN_SERVICE = "in-service"
QUARANTINED = "quarantined"
PROBATION = "probation"


@dataclass(slots=True)
class QuarantineConfig:
    """Thresholds for the health-score state machine."""

    #: score at which a core is quarantined
    fault_threshold: float = 2.0
    #: score added per conclusive verdict against the core
    fault_weight: float = 1.0
    #: multiplier applied to the score per clean validation observed.
    #: The default (1.0) never decays: two confirmed faults — ever —
    #: quarantine the core, matching how persistently mercurial defects
    #: behave.  Deployments expecting transients set this below 1 so
    #: isolated strikes age out between faults.
    clean_decay: float = 1.0
    #: consecutive clean probes required to re-admit a quarantined core
    probation_probes: int = 3

    def violations(self) -> list[str]:
        found = []
        if self.fault_threshold <= 0:
            found.append("fault_threshold must be positive")
        if self.fault_weight <= 0:
            found.append("fault_weight must be positive")
        if not 0.0 <= self.clean_decay <= 1.0:
            found.append("clean_decay must be in [0, 1]")
        if self.probation_probes < 1:
            found.append("probation_probes must be >= 1")
        return found

    def validate(self) -> None:
        for message in self.violations():
            raise ConfigurationError(message)


@dataclass(slots=True)
class CoreHealth:
    """Response-layer view of one core."""

    core_id: int
    score: float = 0.0
    faults: int = 0
    cleans: int = 0
    state: str = IN_SERVICE
    first_fault_time: float | None = None
    first_fault_seq: int | None = None
    quarantined_at: float | None = None
    probes_passed: int = 0
    #: True when quarantine was requested but the scheduler refused
    #: (last core of a role) — the core stays scheduled, flagged.
    held_in_service: bool = False


class QuarantineManager:
    """Drives the in-service → quarantined → probation → in-service cycle."""

    def __init__(
        self,
        machine: Machine,
        scheduler: Scheduler,
        heap: VersionedHeap,
        config: QuarantineConfig | None = None,
        obs=None,
    ):
        self.config = config if config is not None else QuarantineConfig()
        self.config.validate()
        self._machine = machine
        self._scheduler = scheduler
        self._heap = heap
        self._obs = obs if obs is not None else NULL_OBS
        self._health: dict[int, CoreHealth] = {}
        if self._obs.enabled:
            self._obs.registry.gauge(
                "orthrus_quarantined_cores",
                help="cores currently removed from service",
            ).set_function(lambda: float(len(self._machine.quarantined_cores)))

    # ------------------------------------------------------------------
    def health(self, core_id: int) -> CoreHealth:
        record = self._health.get(core_id)
        if record is None:
            record = self._health[core_id] = CoreHealth(core_id=core_id)
        return record

    def state(self, core_id: int) -> str:
        return self.health(core_id).state

    @property
    def quarantined(self) -> list[int]:
        return sorted(
            h.core_id
            for h in self._health.values()
            if h.state in (QUARANTINED, PROBATION)
        )

    def top_suspect(self) -> CoreHealth | None:
        """The most implicated core: quarantined first, then by score."""
        candidates = [h for h in self._health.values() if h.faults > 0]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda h: (h.state in (QUARANTINED, PROBATION), h.score, h.faults),
        )

    # ------------------------------------------------------------------
    # signal intake
    # ------------------------------------------------------------------
    def record_fault(
        self, core_id: int, when: float, seq: int | None = None
    ) -> bool:
        """A conclusive verdict implicated ``core_id``.

        Returns True when this fault tipped the core into quarantine.
        """
        record = self.health(core_id)
        record.faults += 1
        record.score += self.config.fault_weight
        if record.first_fault_time is None:
            record.first_fault_time = when
        if seq is not None and (
            record.first_fault_seq is None or seq < record.first_fault_seq
        ):
            record.first_fault_seq = seq
        if record.state == IN_SERVICE and record.score >= self.config.fault_threshold:
            return self._quarantine(record, when)
        return False

    def record_clean(self, core_id: int) -> None:
        """A validation involving ``core_id`` passed; decay its score."""
        record = self.health(core_id)
        record.cleans += 1
        if record.state == IN_SERVICE:
            record.score *= self.config.clean_decay

    # ------------------------------------------------------------------
    # quarantine / probation
    # ------------------------------------------------------------------
    def _quarantine(self, record: CoreHealth, when: float) -> bool:
        try:
            self._scheduler.remove_core(record.core_id)
        except ConfigurationError:
            # Last core of its role: cannot be pulled without stopping the
            # deployment.  Keep it scheduled but flagged, so operators (and
            # the incident report) see the degraded state.
            record.held_in_service = True
            if self._obs.enabled:
                self._obs.tracer.emit(
                    "response.quarantine_refused",
                    ts=when,
                    core=record.core_id,
                    score=record.score,
                )
            return False
        self._machine.core(record.core_id).quarantined = True
        record.state = QUARANTINED
        record.quarantined_at = when
        record.probes_passed = 0
        if self._obs.enabled:
            self._obs.registry.counter(
                "orthrus_quarantines_total",
                {"core": str(record.core_id)},
                help="cores pulled from service by the response layer",
            ).inc()
            self._obs.tracer.emit(
                "response.quarantine",
                ts=when,
                core=record.core_id,
                score=record.score,
                faults=record.faults,
            )
        return True

    def probe(self, core_id: int, log: ClosureLog) -> bool:
        """Probation probe: replay a known-clean log on the suspect core.

        ``log`` must have been produced on a *different* core and validated
        clean — agreement then exercises the suspect's own units against a
        known-good record.  Returns True when the probe passed.
        """
        record = self.health(core_id)
        if record.state == IN_SERVICE:
            raise ConfigurationError(
                f"probe of core {core_id} which is not quarantined"
            )
        record.state = PROBATION
        core = self._machine.core(core_id)
        try:
            rerun = reexecute(self._heap, log, core)
            passed = rerun.matches
        except Exception:
            passed = False
        now = self._heap.now()
        if passed:
            record.probes_passed += 1
        else:
            record.probes_passed = 0
        if self._obs.enabled:
            self._obs.registry.counter(
                "orthrus_probation_probes_total",
                {"result": "pass" if passed else "fail"},
                help="probation re-executions on quarantined cores",
            ).inc()
            self._obs.tracer.emit(
                "response.probe",
                ts=now,
                core=core_id,
                seq=log.seq,
                passed=passed,
                streak=record.probes_passed,
            )
        if record.probes_passed >= self.config.probation_probes:
            self._readmit(record, now)
        return passed

    def _readmit(self, record: CoreHealth, when: float) -> None:
        self._scheduler.restore_core(record.core_id)
        self._machine.core(record.core_id).quarantined = False
        record.state = IN_SERVICE
        record.score = 0.0
        record.quarantined_at = None
        record.probes_passed = 0
        if self._obs.enabled:
            self._obs.registry.counter(
                "orthrus_readmissions_total",
                help="quarantined cores re-admitted after probation",
            ).inc()
            self._obs.tracer.emit(
                "response.readmit", ts=when, core=record.core_id
            )
