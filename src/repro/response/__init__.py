"""Incident response: detection → arbitration → quarantine → repair (§2.3).

Detection alone tells an operator *that* a silent corruption happened; the
response layer turns the detection into a remediation: a third-core
re-execution arbitrates which core is at fault, the quarantine manager
pulls that core from both scheduling pools, blast-radius analysis walks the
versioned heap and the closure logs to enumerate every data version the
core could have poisoned, and the repairer replays the affected closures on
healthy cores to restore the corrupted versions in place.  The whole
episode is summarized in an :class:`~repro.response.report.IncidentReport`.
"""

from repro.response.arbiter import ArbitrationVerdict, Arbiter
from repro.response.blast import BlastRadius, BlastRadiusAnalyzer
from repro.response.coordinator import ResponseConfig, ResponseCoordinator
from repro.response.quarantine import (
    CoreHealth,
    QuarantineConfig,
    QuarantineManager,
)
from repro.response.repair import Repairer, RepairResult
from repro.response.report import IncidentReport, TimelineEntry

__all__ = [
    "Arbiter",
    "ArbitrationVerdict",
    "BlastRadius",
    "BlastRadiusAnalyzer",
    "CoreHealth",
    "IncidentReport",
    "QuarantineConfig",
    "QuarantineManager",
    "Repairer",
    "RepairResult",
    "ResponseConfig",
    "ResponseCoordinator",
    "TimelineEntry",
]
