"""Compiler-style fault-injection framework (Appendix A)."""

from repro.faultinject.campaign import CampaignResult, FaultInjectionCampaign
from repro.faultinject.classify import (
    CoverageRow,
    OutcomeKind,
    TrialResult,
    classify_outcome,
    coverage_by_unit,
    overall_detection_rate,
)
from repro.faultinject.config import InjectionConfig
from repro.faultinject.fleet_faults import (
    FleetFaultPlan,
    HostCrash,
    LinkDegradation,
    LinkPartition,
    StragglerWindow,
)
from repro.faultinject.validator_faults import (
    ValidatorChaosConfig,
    ValidatorFault,
    ValidatorFaultBox,
    ValidatorFaultKind,
)

__all__ = [
    "CampaignResult",
    "CoverageRow",
    "FaultInjectionCampaign",
    "FleetFaultPlan",
    "HostCrash",
    "InjectionConfig",
    "LinkDegradation",
    "LinkPartition",
    "StragglerWindow",
    "ValidatorChaosConfig",
    "ValidatorFault",
    "ValidatorFaultBox",
    "ValidatorFaultKind",
    "OutcomeKind",
    "TrialResult",
    "classify_outcome",
    "coverage_by_unit",
    "overall_detection_rate",
]
