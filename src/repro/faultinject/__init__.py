"""Compiler-style fault-injection framework (Appendix A)."""

from repro.faultinject.campaign import CampaignResult, FaultInjectionCampaign
from repro.faultinject.classify import (
    CoverageRow,
    OutcomeKind,
    TrialResult,
    classify_outcome,
    coverage_by_unit,
    overall_detection_rate,
)
from repro.faultinject.config import InjectionConfig

__all__ = [
    "CampaignResult",
    "CoverageRow",
    "FaultInjectionCampaign",
    "InjectionConfig",
    "OutcomeKind",
    "TrialResult",
    "classify_outcome",
    "coverage_by_unit",
    "overall_detection_rate",
]
