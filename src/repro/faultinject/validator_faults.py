"""Chaos-injectable faults for the *validation plane* (not the data path).

:mod:`repro.machine.faults` corrupts application computation — the SDCs
Orthrus exists to catch.  This module instead breaks the catcher: the
validation cores themselves.  Four failure modes, mirroring what fleet
operators actually see from mercurial hosts running detection tooling:

* **crash** — the validator dies; whatever it had dequeued is stranded
  in flight until the watchdog expires it;
* **hang** — the validator blocks forever mid-validation (stuck
  interconnect, livelocked core) without freeing its slot;
* **slowdown** — every validation takes ``slowdown_factor`` times longer
  (thermal throttling, a failing DIMM retrying ECC);
* **verdict-loss** — the re-execution completes, burns its cycles, and
  the verdict evaporates (lost IPC, dropped completion interrupt).

Fault plans are derived deterministically from a config seed, so a chaos
run is byte-replayable from its :meth:`ValidatorChaosConfig.digest`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.determinism import derived_rng, stable_digest
from repro.errors import ConfigurationError


class ValidatorFaultKind(enum.Enum):
    CRASH = "crash"
    HANG = "hang"
    SLOWDOWN = "slowdown"
    VERDICT_LOSS = "verdict-loss"


_KINDS_BY_VALUE = {kind.value: kind for kind in ValidatorFaultKind}


@dataclass(frozen=True, slots=True)
class ValidatorFault:
    """One armed fault on one validation core."""

    kind: ValidatorFaultKind
    core_id: int
    #: virtual time the fault arms (0.0 = from the start)
    at: float = 0.0
    #: how long it stays armed; None = for the rest of the run
    duration: float | None = None
    #: validation time multiplier for SLOWDOWN faults
    slowdown_factor: float = 8.0

    def active(self, now: float) -> bool:
        if now < self.at:
            return False
        return self.duration is None or now < self.at + self.duration


@dataclass(frozen=True)
class ValidatorChaosConfig:
    """Which fraction (or count) of validation cores gets which fault.

    ``specs`` entries are ``(kind, amount)``: an amount below 1.0 is a
    fraction of the validation cores (rounded up, so 0.25 of 4 cores is
    one core), an amount >= 1 is an absolute core count.
    """

    specs: tuple[tuple[str, float], ...] = ()
    seed: int = 0
    #: virtual time the faults arm
    arm_at: float = 0.0
    #: fault lifetime; None = permanent
    duration: float | None = None
    slowdown_factor: float = 8.0

    @staticmethod
    def parse(
        specs: list[str],
        seed: int = 0,
        arm_at: float = 0.0,
        duration: float | None = None,
        slowdown_factor: float = 8.0,
    ) -> "ValidatorChaosConfig":
        """Parse CLI-style specs like ``crash=0.25`` or ``hang=2``."""
        parsed = []
        for spec in specs:
            kind, sep, amount_text = spec.partition("=")
            kind = kind.strip()
            if kind not in _KINDS_BY_VALUE:
                raise ConfigurationError(
                    f"unknown validator fault kind {kind!r}; expected one of "
                    f"{sorted(_KINDS_BY_VALUE)}"
                )
            if not sep:
                amount = 1.0
            else:
                try:
                    amount = float(amount_text)
                except ValueError:
                    raise ConfigurationError(
                        f"bad validator fault amount in {spec!r}"
                    ) from None
            if amount <= 0:
                raise ConfigurationError(
                    f"validator fault amount must be positive in {spec!r}"
                )
            parsed.append((kind, amount))
        return ValidatorChaosConfig(
            specs=tuple(parsed),
            seed=seed,
            arm_at=arm_at,
            duration=duration,
            slowdown_factor=slowdown_factor,
        )

    def digest(self) -> str:
        """Stable digest: two configs with equal digests plan identically."""
        return stable_digest(self)

    def count_for(self, amount: float, n_cores: int) -> int:
        if amount < 1.0:
            return min(n_cores, max(1, math.ceil(amount * n_cores)))
        return min(n_cores, int(amount))

    def plan(self, core_ids: list[int]) -> tuple[ValidatorFault, ...]:
        """Assign faults to cores, deterministically from the seed.

        Each core receives at most one fault; specs claim cores in order
        from the shrinking healthy pool.
        """
        rng = derived_rng(self.seed, "validator-faults")
        available = sorted(core_ids)
        faults = []
        for kind_text, amount in self.specs:
            if not available:
                break
            count = min(self.count_for(amount, len(core_ids)), len(available))
            victims = rng.sample(available, count)
            for core_id in sorted(victims):
                available.remove(core_id)
                faults.append(
                    ValidatorFault(
                        kind=_KINDS_BY_VALUE[kind_text],
                        core_id=core_id,
                        at=self.arm_at,
                        duration=self.duration,
                        slowdown_factor=self.slowdown_factor,
                    )
                )
        return tuple(faults)


class ValidatorFaultBox:
    """Runtime lookup of armed validator faults, one per core."""

    def __init__(self, faults: tuple[ValidatorFault, ...] = ()):
        self._by_core: dict[int, ValidatorFault] = {}
        for fault in faults:
            if fault.core_id in self._by_core:
                raise ConfigurationError(
                    f"core {fault.core_id} assigned two validator faults"
                )
            self._by_core[fault.core_id] = fault

    def fault_for(self, core_id: int, now: float) -> ValidatorFault | None:
        fault = self._by_core.get(core_id)
        if fault is not None and fault.active(now):
            return fault
        return None

    def disarm(self, core_id: int) -> None:
        """Clear a core's fault (probation readmits a repaired core)."""
        self._by_core.pop(core_id, None)

    @property
    def faulted_cores(self) -> list[int]:
        return sorted(self._by_core)

    @property
    def faults(self) -> tuple[ValidatorFault, ...]:
        return tuple(self._by_core[core] for core in sorted(self._by_core))

    def __len__(self) -> int:
        return len(self._by_core)
