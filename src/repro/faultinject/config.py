"""Fault-injection configuration (Appendix A.3.1).

Inputs to the framework: which fault mechanisms to use, how many faults to
plant, the per-unit distribution, and optional function filters.  The
defaults follow the paper: bitflip/stuckat0/stuckat1/nop mechanisms, and
fault counts distributed across ALU:SIMD:FPU:CACHE at Alibaba's observed
1:2:2:1 ratio (§A.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultInjectionError
from repro.machine.faults import FaultKind
from repro.machine.units import ALIBABA_FAULT_RATIO, Unit


@dataclass(frozen=True)
class InjectionConfig:
    """Parameters for one injection campaign."""

    #: total faults to plant (one per trial run)
    n_faults: int = 48
    #: fault mechanisms, sampled uniformly; bitflip is repeated to weight
    #: it higher, matching the prevalence of single-bit defects
    kinds: tuple[FaultKind, ...] = (
        FaultKind.BITFLIP,
        FaultKind.BITFLIP,
        FaultKind.STUCKAT0,
        FaultKind.STUCKAT1,
        FaultKind.NOP,
    )
    #: per-unit fault-count ratio (§A.2)
    unit_ratio: dict[Unit, int] = field(
        default_factory=lambda: dict(ALIBABA_FAULT_RATIO)
    )
    #: result-bit range the defect can occupy
    bit_range: tuple[int, int] = (0, 64)
    #: probability each matching execution corrupts (1.0 = the paper's
    #: highly reproducible mercurial defect)
    trigger_rate: float = 1.0
    #: restrict injection to sites within these functions (closure names /
    #: control-path labels); None = everything the profiling run executed
    target_functions: tuple[str, ...] | None = None
    seed: int = 0

    def __post_init__(self):
        if self.n_faults < 1:
            raise FaultInjectionError("n_faults must be positive")
        if not self.kinds:
            raise FaultInjectionError("at least one fault kind required")
        low, high = self.bit_range
        if not 0 <= low < high <= 64:
            raise FaultInjectionError(f"invalid bit range {self.bit_range}")
        if not 0 < self.trigger_rate <= 1.0:
            raise FaultInjectionError("trigger_rate must be in (0, 1]")
        if any(weight < 0 for weight in self.unit_ratio.values()):
            raise FaultInjectionError("unit ratio weights must be non-negative")

    def fault_counts(self, available_units: set[Unit]) -> dict[Unit, int]:
        """Split ``n_faults`` across the units the program actually
        executed, honouring the configured ratio (§A.3.2's example)."""
        weights = {
            unit: self.unit_ratio.get(unit, 0)
            for unit in available_units
            if self.unit_ratio.get(unit, 0) > 0
        }
        total_weight = sum(weights.values())
        if total_weight == 0:
            raise FaultInjectionError(
                "no injectable units: the profile and the unit ratio are disjoint"
            )
        counts = {
            unit: (self.n_faults * weight) // total_weight
            for unit, weight in weights.items()
        }
        # Distribute the remainder to the heaviest units, deterministically.
        remainder = self.n_faults - sum(counts.values())
        for unit, _ in sorted(
            weights.items(), key=lambda item: (-item[1], item[0].value)
        ):
            if remainder == 0:
                break
            counts[unit] += 1
            remainder -= 1
        return counts
