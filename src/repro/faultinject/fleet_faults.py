"""Fleet-level infrastructure fault plans (hosts and links, not cores).

:mod:`repro.faultinject.validator_faults` breaks individual validation
cores *inside* a healthy host.  This module breaks the infrastructure the
validation plane runs on — the failure classes Dixit et al. report as a
continuous fleet phenomenon:

* **host crash** — a host dies at a planned epoch, taking every shard it
  serves (app cores, validator pools, queues) with it; optionally it
  restarts after a fixed outage and re-admits through a probation window;
* **link partition** — the network path between a host pair goes dark for
  a window, severing the cross-host RBV spill route;
* **link degradation** — the path stays up but transfers take
  ``factor``× longer (congested spine, flapping optics);
* **straggler window** — a host group runs at ``factor``× capacity
  (thermal throttling, noisy neighbours) without failing outright.

A :class:`FleetFaultPlan` is declarative and deterministic: times are
*epoch indices* on the fleet's virtual clock, and the seeded
:meth:`FleetFaultPlan.generate` constructor derives every draw from
:func:`repro.determinism.derived_rng`, so a chaos run is byte-replayable
from its :meth:`~FleetFaultPlan.digest` alone.  The failover semantics —
ring re-homing, backlog re-dispatch, probation — live in
:mod:`repro.fleet.chaos`; this module only *describes* the faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.determinism import derived_rng, stable_digest
from repro.errors import FaultInjectionError

__all__ = [
    "FleetFaultPlan",
    "HostCrash",
    "LinkDegradation",
    "LinkPartition",
    "StragglerWindow",
]


@dataclass(frozen=True)
class HostCrash:
    """One host outage: dies at ``at_epoch``, optionally restarts."""

    host: int
    at_epoch: int
    #: epochs the host stays down; None = dead for the rest of the run
    restart_after: int | None = None

    @classmethod
    def parse(cls, spec: str) -> "HostCrash":
        """``HOST@EPOCH`` or ``HOST@EPOCH+RESTART`` (epochs down)."""
        try:
            host_text, _, when = spec.partition("@")
            at_text, sep, restart_text = when.partition("+")
            return cls(
                host=int(host_text),
                at_epoch=int(at_text),
                restart_after=int(restart_text) if sep else None,
            )
        except ValueError:
            raise FaultInjectionError(
                f"bad host-crash spec {spec!r}; expected HOST@EPOCH[+RESTART]"
            ) from None


def _parse_link(spec: str, what: str) -> tuple[int, int, int, int, str]:
    """``A-B@EPOCH+DURATION[:EXTRA]`` shared by partition/degradation."""
    try:
        pair_text, _, when = spec.partition("@")
        a_text, _, b_text = pair_text.partition("-")
        window, _, extra = when.partition(":")
        at_text, _, duration_text = window.partition("+")
        return int(a_text), int(b_text), int(at_text), int(duration_text), extra
    except ValueError:
        raise FaultInjectionError(
            f"bad {what} spec {spec!r}; expected A-B@EPOCH+DURATION"
        ) from None


@dataclass(frozen=True)
class LinkPartition:
    """The path between ``host_a`` and ``host_b`` is down (symmetric)."""

    host_a: int
    host_b: int
    at_epoch: int
    duration: int

    @classmethod
    def parse(cls, spec: str) -> "LinkPartition":
        a, b, at, duration, _ = _parse_link(spec, "partition")
        return cls(host_a=a, host_b=b, at_epoch=at, duration=duration)

    def active(self, epoch: int) -> bool:
        return self.at_epoch <= epoch < self.at_epoch + self.duration

    def covers(self, a: int, b: int) -> bool:
        return {a, b} == {self.host_a, self.host_b}


@dataclass(frozen=True)
class LinkDegradation:
    """The path stays up but transfers take ``factor``× longer."""

    host_a: int
    host_b: int
    at_epoch: int
    duration: int
    factor: float = 4.0

    @classmethod
    def parse(cls, spec: str) -> "LinkDegradation":
        a, b, at, duration, extra = _parse_link(spec, "link-degradation")
        try:
            factor = float(extra) if extra else 4.0
        except ValueError:
            raise FaultInjectionError(
                f"bad link-degradation factor in {spec!r}"
            ) from None
        return cls(host_a=a, host_b=b, at_epoch=at, duration=duration,
                   factor=factor)

    def active(self, epoch: int) -> bool:
        return self.at_epoch <= epoch < self.at_epoch + self.duration

    def covers(self, a: int, b: int) -> bool:
        return {a, b} == {self.host_a, self.host_b}


@dataclass(frozen=True)
class StragglerWindow:
    """A host group runs at ``factor``× validator capacity for a window."""

    hosts: tuple[int, ...]
    at_epoch: int
    duration: int
    factor: float = 0.5

    @classmethod
    def parse(cls, spec: str) -> "StragglerWindow":
        """``H1,H2@EPOCH+DURATION[:FACTOR]``."""
        try:
            hosts_text, _, when = spec.partition("@")
            window, _, factor_text = when.partition(":")
            at_text, _, duration_text = window.partition("+")
            return cls(
                hosts=tuple(int(h) for h in hosts_text.split(",")),
                at_epoch=int(at_text),
                duration=int(duration_text),
                factor=float(factor_text) if factor_text else 0.5,
            )
        except ValueError:
            raise FaultInjectionError(
                f"bad straggler spec {spec!r}; "
                "expected H1,H2@EPOCH+DURATION[:FACTOR]"
            ) from None

    def active(self, epoch: int) -> bool:
        return self.at_epoch <= epoch < self.at_epoch + self.duration


@dataclass(frozen=True)
class FleetFaultPlan:
    """A deterministic infrastructure fault schedule for one fleet run.

    All times are epoch indices on the fleet's virtual clock; the plan is
    pure data, picklable, and :func:`~repro.determinism.stable_digest`-able
    — it rides on :class:`~repro.fleet.topology.FleetConfig` and therefore
    enters the fleet digest, so two runs with the same plan replay
    byte-identically at any worker count.
    """

    crashes: tuple[HostCrash, ...] = ()
    partitions: tuple[LinkPartition, ...] = ()
    degradations: tuple[LinkDegradation, ...] = ()
    stragglers: tuple[StragglerWindow, ...] = field(default=())

    @property
    def empty(self) -> bool:
        return not (
            self.crashes or self.partitions
            or self.degradations or self.stragglers
        )

    def digest(self) -> str:
        """Stable digest: equal digests ⇒ identical fault schedules."""
        return stable_digest(self)

    def merge(self, other: "FleetFaultPlan") -> "FleetFaultPlan":
        """Concatenate two plans (explicit specs + a generated batch)."""
        return FleetFaultPlan(
            crashes=self.crashes + other.crashes,
            partitions=self.partitions + other.partitions,
            degradations=self.degradations + other.degradations,
            stragglers=self.stragglers + other.stragglers,
        )

    # -- constructors ----------------------------------------------------
    @classmethod
    def parse(
        cls,
        crashes=(),
        partitions=(),
        degradations=(),
        stragglers=(),
    ) -> "FleetFaultPlan":
        """Build a plan from CLI-style spec strings."""
        return cls(
            crashes=tuple(HostCrash.parse(s) for s in crashes),
            partitions=tuple(LinkPartition.parse(s) for s in partitions),
            degradations=tuple(LinkDegradation.parse(s) for s in degradations),
            stragglers=tuple(StragglerWindow.parse(s) for s in stragglers),
        )

    @classmethod
    def generate(
        cls,
        hosts: int,
        epochs: int,
        crashes: int = 0,
        partitions: int = 0,
        seed: int | str = 0,
    ) -> "FleetFaultPlan":
        """A seeded random plan (the chaos-smoke entry point).

        Crash victims are distinct hosts (never the whole fleet), crash
        onsets land in the first half of the run so the failover and
        recovery paths actually execute before the horizon, and
        partitions cut ring-successor links — the exact links the
        cross-host RBV spill path uses — so a partition is guaranteed to
        exercise the reroute/fallback machinery rather than an idle pair.
        """
        if hosts < 1 or epochs < 4:
            raise FaultInjectionError(
                "generated chaos needs hosts >= 1 and epochs >= 4"
            )
        rng = derived_rng(seed, "fleet-chaos")
        crash_list = []
        victims = rng.sample(range(hosts), min(crashes, max(0, hosts - 1)))
        for host in sorted(victims):
            at = rng.randrange(max(1, epochs // 8), max(2, epochs // 2))
            restart = max(2, epochs // 6) + rng.randrange(max(1, epochs // 8))
            crash_list.append(
                HostCrash(host=host, at_epoch=at, restart_after=restart)
            )
        partition_list = []
        for _ in range(partitions):
            a = rng.randrange(hosts)
            b = (a + 1) % hosts if hosts > 1 else a
            at = rng.randrange(max(1, epochs // 8), max(2, epochs // 2))
            duration = max(2, epochs // 4)
            partition_list.append(
                LinkPartition(host_a=a, host_b=b, at_epoch=at,
                              duration=duration)
            )
        return cls(crashes=tuple(crash_list), partitions=tuple(partition_list))

    # -- serialization (doctor JSON specs) -------------------------------
    def to_dict(self) -> dict:
        return {
            "crashes": [
                [c.host, c.at_epoch, c.restart_after] for c in self.crashes
            ],
            "partitions": [
                [p.host_a, p.host_b, p.at_epoch, p.duration]
                for p in self.partitions
            ],
            "degradations": [
                [d.host_a, d.host_b, d.at_epoch, d.duration, d.factor]
                for d in self.degradations
            ],
            "stragglers": [
                [list(s.hosts), s.at_epoch, s.duration, s.factor]
                for s in self.stragglers
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetFaultPlan":
        unknown = sorted(
            set(payload) - {"crashes", "partitions", "degradations", "stragglers"}
        )
        if unknown:
            raise FaultInjectionError(
                f"unknown fault-plan key(s): {', '.join(unknown)}"
            )
        try:
            return cls(
                crashes=tuple(
                    HostCrash(int(h), int(at),
                              None if restart is None else int(restart))
                    for h, at, restart in payload.get("crashes", ())
                ),
                partitions=tuple(
                    LinkPartition(int(a), int(b), int(at), int(duration))
                    for a, b, at, duration in payload.get("partitions", ())
                ),
                degradations=tuple(
                    LinkDegradation(int(a), int(b), int(at), int(duration),
                                    float(factor))
                    for a, b, at, duration, factor
                    in payload.get("degradations", ())
                ),
                stragglers=tuple(
                    StragglerWindow(tuple(int(h) for h in hosts), int(at),
                                    int(duration), float(factor))
                    for hosts, at, duration, factor
                    in payload.get("stragglers", ())
                ),
            )
        except (TypeError, ValueError) as exc:
            raise FaultInjectionError(f"bad fault-plan payload: {exc}") from None

    # -- schedule queries (used by audit rules and the compiler) ---------
    def down_hosts_at(self, epoch: int) -> set[int]:
        """Hosts dead at ``epoch`` (crash windows only, not probation)."""
        down = set()
        for crash in self.crashes:
            end = (
                None if crash.restart_after is None
                else crash.at_epoch + crash.restart_after
            )
            if crash.at_epoch <= epoch and (end is None or epoch < end):
                down.add(crash.host)
        return down

    def link_partitioned(self, a: int, b: int, epoch: int) -> bool:
        return any(
            p.covers(a, b) and p.active(epoch) for p in self.partitions
        )

    def link_factor(self, a: int, b: int, epoch: int) -> float:
        """Combined degradation factor on the (a, b) path at ``epoch``."""
        factor = 1.0
        for d in self.degradations:
            if d.covers(a, b) and d.active(epoch):
                factor *= d.factor
        return factor

    def straggle_factor(self, host: int, epoch: int) -> float:
        """Combined capacity factor for ``host`` at ``epoch`` (<= 1.0)."""
        factor = 1.0
        for s in self.stragglers:
            if host in s.hosts and s.active(epoch):
                factor *= s.factor
        return min(1.0, factor)
