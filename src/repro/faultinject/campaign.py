"""The three-phase fault-injection campaign (Appendix A.3).

**Inspection + profiling.**  The workload runs once on an instrumented,
healthy machine with site recording enabled; every executed instruction
site is captured with its functional-unit classification (the paper does
this with INT3 trapping over machine IR; here the simulated cores record
sites natively).  The same run doubles as the *golden* run for outcome
classification.

**Injection.**  Fault counts are split across units by the configured
ratio; each fault pins a mechanism (bitflip / stuck-at / nop) and a result
bit to one executed site, armed on application core 0 — a single mercurial
core, as observed in production [44].

**Execution + classification.**  Each trial reruns the identical workload
under the Orthrus deployment (and optionally the RBV baseline) and is
classified fail-stop / masked / SDC against the golden run, recording who
detected what.  Aggregations reproduce Table 2 and Figs 9–10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import FaultInjectionError
from repro.faultinject.classify import (
    CoverageRow,
    OutcomeKind,
    TrialResult,
    attribution_accuracy,
    classify_outcome,
    coverage_by_unit,
    overall_detection_rate,
)
from repro.faultinject.config import InjectionConfig
from repro.harness.pipeline import (
    PipelineConfig,
    RunResult,
    run_orthrus_server,
    run_rbv_server,
)
from repro.machine.faults import Fault
from repro.machine.instruction import Site
from repro.machine.units import Unit

#: signature of a deployment runner: (scenario, n_units, pipeline_config)
Runner = Callable[..., RunResult]


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    scenario_name: str
    profiled_sites: dict[Site, Unit]
    golden: RunResult
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def sdc_trials(self) -> list[TrialResult]:
        return [t for t in self.trials if t.is_sdc]

    @property
    def detection_rate(self) -> float:
        return overall_detection_rate(self.trials)

    @property
    def attribution_accuracy(self) -> float | None:
        """How often detection implicated the core the campaign armed."""
        return attribution_accuracy(self.trials)

    def coverage_table(self) -> dict[Unit, CoverageRow]:
        return coverage_by_unit(self.trials)

    def outcome_counts(self) -> dict[OutcomeKind, int]:
        counts = {kind: 0 for kind in OutcomeKind}
        for trial in self.trials:
            counts[trial.outcome] += 1
        return counts


class FaultInjectionCampaign:
    """Runs the full inspection → profiling → injection pipeline."""

    def __init__(
        self,
        scenario,
        workload_size: int,
        injection: InjectionConfig | None = None,
        make_pipeline: Callable[[], PipelineConfig] | None = None,
        runner: Runner = run_orthrus_server,
        rbv_runner: Runner | None = run_rbv_server,
    ):
        self.scenario = scenario
        self.workload_size = workload_size
        self.injection = injection or InjectionConfig()
        self.make_pipeline = make_pipeline or (lambda: PipelineConfig())
        self.runner = runner
        self.rbv_runner = rbv_runner
        self._rng = random.Random(self.injection.seed)

    # ------------------------------------------------------------------
    # phase 1+2: inspection & profiling (and the golden run)
    # ------------------------------------------------------------------
    def profile(self) -> tuple[dict[Site, Unit], RunResult]:
        config = self.make_pipeline()
        machine = config.build_machine()
        for core in machine.cores:
            core.record_sites = True
        config.machine = machine
        golden = self.runner(self.scenario, self.workload_size, config)
        if golden.crashed:
            raise FaultInjectionError(
                f"golden run crashed: {golden.crash_reason}"
            )
        sites: dict[Site, Unit] = {}
        self._site_counts = {}
        for core in machine.cores:
            sites.update(core.site_units)
            for site, count in core.site_counts.items():
                self._site_counts[site] = self._site_counts.get(site, 0) + count
            core.record_sites = False
        if self.injection.target_functions is not None:
            allowed = set(self.injection.target_functions)
            sites = {s: u for s, u in sites.items() if s.function in allowed}
        if not sites:
            raise FaultInjectionError("profiling recorded no injectable sites")
        return sites, golden

    # ------------------------------------------------------------------
    # phase 3: injection planning
    # ------------------------------------------------------------------
    def plan_faults(self, sites: dict[Site, Unit]) -> list[Fault]:
        by_unit: dict[Unit, list[Site]] = {}
        for site, unit in sites.items():
            by_unit.setdefault(unit, []).append(site)
        for unit_sites in by_unit.values():
            unit_sites.sort(key=str)  # determinism across runs
        counts = self.injection.fault_counts(set(by_unit))
        low, high = self.injection.bit_range
        site_counts = getattr(self, "_site_counts", {})
        faults: list[Fault] = []
        for unit in sorted(counts, key=lambda u: u.value):
            # Sample *dynamic* instructions: sites weighted by how often
            # they executed in the profiling run (REFINE's model — a
            # random executed instruction, not a random static one).
            weights = [max(1, site_counts.get(site, 1)) for site in by_unit[unit]]
            for _ in range(counts[unit]):
                site = self._rng.choices(by_unit[unit], weights=weights, k=1)[0]
                faults.append(
                    Fault(
                        unit=unit,
                        kind=self._rng.choice(self.injection.kinds),
                        site=site,
                        bit=self._rng.randrange(low, high),
                        trigger_rate=self.injection.trigger_rate,
                    )
                )
        return faults

    # ------------------------------------------------------------------
    # trial execution
    # ------------------------------------------------------------------
    def run_trial(
        self, fault: Fault, golden: RunResult, trial_index: int = 0
    ) -> TrialResult:
        config = self.make_pipeline()
        # One mercurial application core, armed after setup/preload so the
        # campaign injects into the serving phase.  Which core is defective
        # varies across trials — in production any core can go mercurial,
        # and pinning it would alias against the round-robin scheduler.
        core_id = (self.injection.seed * 31 + trial_index * 7) % config.app_threads
        config.deferred_faults = ((core_id, fault),)
        # Decorrelate sampler decisions across trials (the workload seed
        # must stay fixed so the golden run remains comparable).
        config.sampler_seed = self.injection.seed * 7919 + trial_index
        trial = self.runner(self.scenario, self.workload_size, config)
        outcome = classify_outcome(golden, trial)

        orthrus_detected = trial.detections > 0
        orthrus_kind = None
        implicated: tuple[int, ...] = ()
        if trial.runtime is not None:
            if trial.runtime.report.first is not None:
                orthrus_kind = trial.runtime.report.first.kind
            implicated = tuple(
                sorted(
                    {
                        event.app_core
                        for event in trial.runtime.report.events
                        if event.app_core >= 0
                    }
                )
            )

        rbv_detected: bool | None = None
        if self.rbv_runner is not None and outcome is OutcomeKind.SDC:
            rbv_config = self.make_pipeline()
            rbv_config.deferred_faults = ((core_id, fault),)
            rbv_trial = self.rbv_runner(self.scenario, self.workload_size, rbv_config)
            rbv_detected = rbv_trial.rbv_detections > 0 or rbv_trial.crashed

        return TrialResult(
            fault=fault,
            unit=fault.unit,
            outcome=outcome,
            orthrus_detected=orthrus_detected,
            orthrus_kind=orthrus_kind if orthrus_detected else None,
            rbv_detected=rbv_detected,
            injected_core=core_id,
            implicated_cores=implicated,
        )

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        sites, golden = self.profile()
        result = CampaignResult(
            scenario_name=self.scenario.name,
            profiled_sites=sites,
            golden=golden,
        )
        for index, fault in enumerate(self.plan_faults(sites)):
            result.trials.append(self.run_trial(fault, golden, trial_index=index))
        return result
