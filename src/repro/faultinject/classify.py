"""Trial-outcome classification (Appendix A.1).

A fault-injected run is compared against the golden (fault-free) run of
the identical workload:

* **fail-stop** — the run crashed (exception / hardware-style trap);
* **masked** — it completed with identical responses and end state;
* **SDC** — it completed but responses or end state diverged silently.

Only SDC trials count toward the coverage tables; each carries whether
Orthrus (and, when measured, RBV) flagged the corruption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.machine.faults import Fault
from repro.machine.units import Unit


class OutcomeKind(enum.Enum):
    FAIL_STOP = "fail-stop"
    MASKED = "masked"
    SDC = "sdc"


def classify_outcome(golden, trial) -> OutcomeKind:
    """Compare a trial :class:`~repro.harness.pipeline.RunResult` against
    the golden run."""
    if trial.crashed:
        return OutcomeKind.FAIL_STOP
    if trial.responses != golden.responses:
        return OutcomeKind.SDC
    if golden.digest is not None and trial.digest != golden.digest:
        return OutcomeKind.SDC
    return OutcomeKind.MASKED


@dataclass(frozen=True, slots=True)
class TrialResult:
    """One fault-injection trial."""

    fault: Fault
    unit: Unit
    outcome: OutcomeKind
    #: Orthrus flagged the corruption during the run
    orthrus_detected: bool
    #: which mechanism fired first: "checksum" / "mismatch" / None
    orthrus_kind: str | None
    #: RBV flagged it (None when the RBV arm was not run)
    rbv_detected: bool | None = None
    #: ground truth: the application core the campaign armed (-1: unknown)
    injected_core: int = -1
    #: cores the detection events implicated (app-side), for scoring the
    #: response layer's attribution against the injected ground truth
    implicated_cores: tuple[int, ...] = ()

    @property
    def is_sdc(self) -> bool:
        return self.outcome is OutcomeKind.SDC

    @property
    def attribution_correct(self) -> bool | None:
        """Did detection implicate the armed core?  None when unscorable
        (nothing detected, or ground truth not recorded)."""
        if not self.orthrus_detected or self.injected_core < 0:
            return None
        if not self.implicated_cores:
            return None
        return self.injected_core in self.implicated_cores


@dataclass
class CoverageRow:
    """One (application × unit) row of Table 2."""

    unit: Unit
    total_sdcs: int
    orthrus_detected: int
    rbv_detected: int | None

    @property
    def orthrus_rate(self) -> float:
        if self.total_sdcs == 0:
            return 0.0
        return self.orthrus_detected / self.total_sdcs

    @property
    def rbv_rate(self) -> float:
        if not self.total_sdcs or self.rbv_detected is None:
            return 0.0
        return self.rbv_detected / self.total_sdcs


def coverage_by_unit(trials: list[TrialResult]) -> dict[Unit, CoverageRow]:
    """Aggregate trials into Table-2-style per-unit rows."""
    rows: dict[Unit, CoverageRow] = {}
    for unit in Unit:
        unit_sdcs = [t for t in trials if t.unit is unit and t.is_sdc]
        rbv_counted = [t for t in unit_sdcs if t.rbv_detected is not None]
        rows[unit] = CoverageRow(
            unit=unit,
            total_sdcs=len(unit_sdcs),
            orthrus_detected=sum(t.orthrus_detected for t in unit_sdcs),
            rbv_detected=sum(t.rbv_detected for t in rbv_counted)
            if rbv_counted
            else None,
        )
    return rows


def overall_detection_rate(trials: list[TrialResult]) -> float:
    """Fraction of SDC trials Orthrus detected (Fig 9/10's y-axis)."""
    sdcs = [t for t in trials if t.is_sdc]
    if not sdcs:
        return 0.0
    return sum(t.orthrus_detected for t in sdcs) / len(sdcs)


def attribution_accuracy(trials: list[TrialResult]) -> float | None:
    """Fraction of scorable detected trials that implicated the armed core.

    The response layer's quarantine decisions hinge on blaming the right
    core, so this is the campaign-level accuracy of detection-event core
    tagging.  None when no trial is scorable.
    """
    scorable = [t for t in trials if t.attribution_correct is not None]
    if not scorable:
        return None
    return sum(t.attribution_correct for t in scorable) / len(scorable)
