"""Orthrus reproduction: resource-adaptive computation validation.

A Python reproduction of *Orthrus: Efficient and Timely Detection of Silent
User Data Corruption in the Cloud with Resource-Adaptive Computation
Validation* (SOSP 2025).

Quickstart::

    from repro import OrthrusRuntime, closure, ops, orthrus_new

    @closure
    def bump(ptr, delta):
        value = ptr.load()
        ptr.store(ops().alu.add(value, delta))

    runtime = OrthrusRuntime()
    with runtime:
        counter = runtime.new(0)
        bump(counter, 5)
    assert runtime.report.detected is False

See ``DESIGN.md`` for the full system inventory and ``examples/`` for
runnable scenarios, including fault-injection campaigns.
"""

from repro.clock import LogicalClock, ManualClock
from repro.closures import (
    CLOSURE_REGISTRY,
    ClosureLog,
    closure,
    ops,
    syscall,
    sys_randint,
    sys_random,
    sys_read,
    sys_time,
    sys_write,
    user_data,
)
from repro.detection import DetectionEvent, DetectionReport
from repro.errors import (
    ChecksumMismatch,
    ConfigurationError,
    HeapError,
    NoActiveContext,
    ReproError,
    SdcDetected,
    ValidationMismatch,
)
from repro.machine import Fault, FaultKind, Machine, Unit
from repro.memory import OrthrusPtr, VersionedHeap, orthrus_new, orthrus_receive
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.runtime import (
    AdaptiveSampler,
    AlwaysSampler,
    OrthrusRuntime,
    RandomSampler,
    SafeModePolicy,
    SamplerConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSampler",
    "AlwaysSampler",
    "CLOSURE_REGISTRY",
    "ChecksumMismatch",
    "ClosureLog",
    "ConfigurationError",
    "DetectionEvent",
    "DetectionReport",
    "Fault",
    "FaultKind",
    "HeapError",
    "LogicalClock",
    "Machine",
    "ManualClock",
    "MetricsRegistry",
    "NoActiveContext",
    "Observability",
    "OrthrusPtr",
    "OrthrusRuntime",
    "RandomSampler",
    "ReproError",
    "SafeModePolicy",
    "SamplerConfig",
    "SdcDetected",
    "Tracer",
    "Unit",
    "ValidationMismatch",
    "VersionedHeap",
    "__version__",
    "closure",
    "ops",
    "orthrus_new",
    "orthrus_receive",
    "syscall",
    "sys_randint",
    "sys_random",
    "sys_read",
    "sys_time",
    "sys_write",
    "user_data",
]
