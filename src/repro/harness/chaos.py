"""Chaos driver: the Orthrus deployment under validation-plane faults.

:func:`run_chaos_server` is the fault-tolerant sibling of
:func:`repro.harness.pipeline.run_orthrus_server`.  Where the plain driver
models the validation plane as a reliable shared store drained by
immortal validator processes, this driver models what production actually
has — per-core *bounded* queues with work stealing, validator cores that
crash / hang / slow down / lose verdicts (chaos-injected via
:mod:`repro.faultinject.validator_faults`), a
:class:`~repro.validation.watchdog.ValidationWatchdog` that re-dispatches
stranded logs, and a
:class:`~repro.runtime.degradation.DegradationController` that walks the
explicit degradation ladder instead of letting coverage rot silently.

The driver's contract is *conservation*: every closure log produced by
the application reaches exactly one terminal state — validated, skipped
by the sampler, dropped with a reason counter, or degraded to a CRC
checksum fallback — no matter which validator faults fire.  The
:class:`~repro.validation.watchdog.ValidationLedger` enforces it and the
chaos tests assert it.

Liveness under total validation-plane death (every validator crashed or
quarantined) is handled by the watchdog tick: pending logs are settled as
checksum fallbacks so application threads blocked on safe-mode holds are
always released.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.detection import DetectionEvent
from repro.errors import ConfigurationError
from repro.faultinject.validator_faults import (
    ValidatorFaultBox,
    ValidatorFaultKind,
)
from repro.harness.pipeline import (
    PipelineConfig,
    RunResult,
    _audit_setup,
    _exposure_staleness,
    _finish_profile,
    _orthrus_overhead_cycles,
    _with_profiler,
)
from repro.memory.checksum import checksum_of
from repro.obs.canary import CanaryScheduler, LivenessMonitor, is_canary_log
from repro.obs.profiling import active as profiling_active
from repro.obs.slo import SloMonitor, default_objectives
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    install_audit_probes,
    install_canary_probes,
    install_default_probes,
    install_span_probes,
)
from repro.response.coordinator import ResponseCoordinator
from repro.response.quarantine import QuarantineManager
from repro.runtime.degradation import (
    DegradationController,
    DegradationLevel,
    FaultToleranceConfig,
)
from repro.runtime.orthrus import OrthrusRuntime
from repro.runtime.safemode import SafeModePolicy
from repro.runtime.sampling import COVERAGE_REASONS, sampler_decision
from repro.sim.events import Environment, SimClock, Store
from repro.sim.metrics import RunMetrics
from repro.validation.queues import QueueSet
from repro.validation.watchdog import ValidationLedger, ValidationWatchdog

#: wake-channel token: "one accepted push happened, somebody dequeue"
_TOKEN = object()


@dataclass
class FaultToleranceReport:
    """Everything a chaos run reports about its validation plane."""

    ledger: dict = field(default_factory=dict)
    conserved: bool = True
    #: watchdog counters
    dispatches: int = 0
    timeouts: int = 0
    redispatches: int = 0
    duplicates: int = 0
    exhausted: int = 0
    #: degradation ladder (None when the controller was disabled)
    degradation: dict | None = None
    terminal_level: str = "normal"
    peak_level: str = "normal"
    #: validation cores the watchdog fed into quarantine
    quarantined_validators: list[int] = field(default_factory=list)
    #: armed chaos plan, by kind
    faulted_cores: dict[str, list[int]] = field(default_factory=dict)
    #: digest of the chaos config — the replay handle
    chaos_digest: str | None = None
    queue_drops: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "conserved": self.conserved,
            "ledger": self.ledger,
            "watchdog": {
                "dispatches": self.dispatches,
                "timeouts": self.timeouts,
                "redispatches": self.redispatches,
                "duplicates": self.duplicates,
                "exhausted": self.exhausted,
            },
            "degradation": self.degradation,
            "terminal_level": self.terminal_level,
            "peak_level": self.peak_level,
            "quarantined_validators": self.quarantined_validators,
            "faulted_cores": self.faulted_cores,
            "chaos_digest": self.chaos_digest,
            "queue_drops": self.queue_drops,
        }


def run_chaos_server(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    """Run the Orthrus deployment with a fault-tolerant validation plane."""
    if config.validation_cores < 1:
        raise ConfigurationError("Orthrus needs at least one validation core")
    return _with_profiler(
        config, "driver.chaos", lambda: _run_chaos_impl(scenario, n_ops, config)
    )


def _run_chaos_impl(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    ft = (
        config.fault_tolerance
        if config.fault_tolerance is not None
        else FaultToleranceConfig()
    )
    prof = profiling_active()
    env = Environment()
    if prof.enabled:
        env.profiler = prof
    machine = config.build_machine()
    app_cores = list(range(config.app_threads))
    val_cores = [config.app_threads + i for i in range(config.validation_cores)]
    runtime = OrthrusRuntime(
        machine=machine,
        app_cores=app_cores,
        validation_cores=val_cores,
        clock=SimClock(env),
        mode="external",
        checksums=True,
        reclaim_batch=config.reclaim_batch,
        obs=config.obs,
    )
    sampler = config.make_sampler()
    obs = runtime.obs
    responder = None
    if config.response is not None:
        responder = ResponseCoordinator(runtime, config.response)
    server = scenario.build(runtime)
    runtime._hold_versions = False  # setup closures are not validated
    try:
        scenario.setup(server)
    except Exception as exc:
        return RunResult(
            metrics=RunMetrics(),
            runtime=runtime,
            crashed=True,
            crash_reason=f"setup: {type(exc).__name__}: {exc}",
        )
    runtime._hold_versions = True
    for core_id, fault in config.deferred_faults:
        machine.arm(core_id, fault)

    # ------------------------------------------------------------------
    # validation-plane machinery
    # ------------------------------------------------------------------
    queues = QueueSet(
        len(val_cores),
        capacity=ft.queue_capacity,
        policy=ft.overflow_policy,
        obs=obs,
    )
    queue_index_by_core = {core_id: i for i, core_id in enumerate(val_cores)}
    ledger = ValidationLedger()
    safe_policy = SafeModePolicy(
        enabled=config.safe_mode,
        externalizing=frozenset(scenario.externalizing),
    )
    controller = None
    if ft.degradation is not None:
        controller = DegradationController(
            ft.degradation,
            obs=obs,
            # A user-requested safe mode always holds; only let the ladder
            # drive the policy when it is not statically on.
            safe_mode=None if config.safe_mode else safe_policy,
        )
    quarantine = (
        responder.quarantine
        if responder is not None
        else QuarantineManager(
            machine=machine,
            scheduler=runtime.scheduler,
            heap=runtime.heap,
            obs=obs,
        )
    )
    chaos = config.validator_faults
    box = ValidatorFaultBox(chaos.plan(val_cores) if chaos is not None else ())
    #: validator cores still consuming work (not crashed/hung/quarantined)
    alive: set[int] = set(val_cores)

    def on_offender(core_id: int, when: float) -> None:
        # An offender already represents ``offender_threshold`` missed
        # deadlines; record them as that many faults so the health score
        # crosses the quarantine threshold in one report.
        newly = False
        for _ in range(max(1, watchdog.config.offender_threshold)):
            newly = quarantine.record_fault(core_id, when) or newly
        if responder is not None:
            responder.report.add(
                when,
                "watchdog-offender",
                f"validation core {core_id} repeatedly missed deadlines"
                + (" -> quarantined" if newly else ""),
            )
        if newly:
            alive.discard(core_id)
            # Hand the quarantined core's backlog to the healthy queues.
            for orphan in queues.drain_queue(queue_index_by_core[core_id]):
                enqueue(orphan, when)

    watchdog = ValidationWatchdog(ft.watchdog, obs=obs, on_offender=on_offender)

    ops = scenario.make_ops(n_ops, config.seed)
    metrics = RunMetrics()
    result = RunResult(metrics=metrics, runtime=runtime)
    responses_by_index: dict[int, Any] = {}
    pending_bytes = [0]
    request_logs: list[Any] = []
    runtime._on_log = request_logs.append
    done_events: dict[int, Any] = {}
    deadline = [float("inf")]
    redispatch_pending = [0]
    apps_done = [False]
    stop = [False]

    drift, exposure = _audit_setup(config, sampler, metrics, obs)
    if drift is not None:
        # The conservation ledger is the residual-drift signal: work
        # outstanding while nothing settles means the plane is wedged.
        drift.attach_ledger(ledger)
    stale_s = _exposure_staleness(sampler)

    recorder = None
    slo_monitor = None
    if config.timeseries is not None and obs.enabled:
        recorder = TimeSeriesRecorder(obs.registry, config.timeseries)
        install_default_probes(recorder)
        if obs.spans.enabled:
            install_span_probes(recorder)
        if config.canary is not None:
            install_canary_probes(recorder)
        if drift is not None:
            install_audit_probes(recorder)
        slo_monitor = SloMonitor(
            recorder,
            objectives=(
                config.slos if config.slos is not None else default_objectives()
            ),
            tracer=obs.tracer,
            report=runtime.report,
        )

    def track_memory() -> None:
        extra = (
            server.resident_bytes_extra()
            if hasattr(server, "resident_bytes_extra")
            else 0
        )
        metrics.peak_live_bytes = max(
            metrics.peak_live_bytes, runtime.heap.live_bytes + extra
        )
        metrics.peak_versioned_bytes = max(
            metrics.peak_versioned_bytes,
            runtime.heap.versioned_bytes + pending_bytes[0] + extra,
        )

    def memory_in_use() -> float:
        return runtime.heap.versioned_bytes + pending_bytes[0]

    # ------------------------------------------------------------------
    # terminal-state settlement (the conservation contract)
    # ------------------------------------------------------------------
    def release(log) -> None:
        event = done_events.pop(log.seq, None)
        if event is not None:
            event.succeed()

    def settle_drop(log, reason: str, now: float) -> None:
        """Account a dropped log: window closed, waiter released."""
        ledger.dropped(log.seq, reason)
        runtime.validator.drop(log, reason)
        if exposure is not None:
            # A drop exposes the key for the queue time already burned
            # plus the span until its next validation opportunity.
            waited = max(0.0, now - log.enqueue_time) if log.enqueue_time else 0.0
            exposure.record(log.closure_name, reason, waited + stale_s)
        release(log)

    def checksum_fallback(log, now: float) -> None:
        """Degraded validation: verify the §3.4 CRC boundary checksums of
        the log's output versions instead of re-executing.  Honest reduced
        coverage — accounted separately from both validation and drops."""
        for vid in log.output_versions:
            if not runtime.heap.has_version(vid):
                continue
            version = runtime.heap.version(vid)
            if version.checksum is None:
                continue
            if checksum_of(version.value) != version.checksum:
                runtime._on_detection(
                    DetectionEvent(
                        kind="checksum",
                        closure=log.closure_name,
                        seq=log.seq,
                        time=now,
                        detail="degraded-mode CRC boundary check failed",
                        app_core=log.core_id,
                    )
                )
        ledger.fallback(log.seq)
        runtime.reclaimer.closure_finished(log.seq)
        if exposure is not None:
            # CRC checks catch bit-flips but not mercurial compute errors:
            # partial coverage, honestly accounted as exposure.
            exposure.record(log.closure_name, "checksum-only", stale_s)
        if obs.enabled:
            obs.registry.counter(
                "orthrus_checksum_fallbacks_total",
                help="logs settled by CRC fallback instead of re-execution",
            ).inc()
            obs.spans.record(
                "fallback", log.seq, now, now, closure=log.closure_name
            )
        release(log)

    def enqueue(log, now: float):
        """Push into the bounded queues; settle whatever falls out."""
        outcome = queues.push(log, now)
        if outcome.accepted:
            pending_bytes[0] += log.approx_bytes()
            wake.put(_TOKEN)
        if outcome.dropped is not None:
            if outcome.reason == "evicted-oldest":
                pending_bytes[0] -= outcome.dropped.approx_bytes()
            settle_drop(outcome.dropped, outcome.reason, now)
        return outcome

    wake = Store(env)

    # ------------------------------------------------------------------
    # application threads
    # ------------------------------------------------------------------
    def submit(log):
        """Enqueue one log, honoring block-producer backpressure."""
        while True:
            outcome = enqueue(log, env.now)
            if not outcome.would_block:
                return
            if not alive:
                # Nobody will ever free queue space: shed explicitly.
                settle_drop(log, "no-capacity", env.now)
                return
            yield env.timeout(ft.block_poll)

    def app_thread(thread_id: int):
        core = machine.core(thread_id)
        for index in range(thread_id, len(ops), config.app_threads):
            began = env.now
            before = core.total_cycles
            with runtime.bind_core(thread_id):
                try:
                    responses_by_index[index] = server.handle(ops[index])
                except Exception as exc:
                    result.crashed = True
                    result.crash_reason = f"{type(exc).__name__}: {exc}"
                    return
            logs = list(request_logs)
            request_logs.clear()
            cycles = core.total_cycles - before + config.costs.control_path_cycles
            cycles += sum(_orthrus_overhead_cycles(log, config.costs) for log in logs)
            yield env.timeout(config.costs.seconds(cycles))
            hold: list[Any] = []
            for log in logs:
                ledger.enqueue(log.seq)
                event = env.event()
                done_events[log.seq] = event
                if safe_policy.must_hold(log.closure_name):
                    hold.append(event)
                yield from submit(log)
                if obs.enabled:
                    # Execution plus control path plus any producer
                    # backpressure stall; queue.wait starts exactly where
                    # this ends (queues.push stamps enqueue_time at accept).
                    obs.spans.record(
                        "closure.run",
                        log.seq,
                        log.start_time,
                        env.now,
                        closure=log.closure_name,
                        core=thread_id,
                    )
            if hold:
                # Safe mode (static or SAFE_HOLD-engaged): withhold
                # externalizing results until their logs settle.
                yield env.all_of(hold)
            metrics.request_latency.add(env.now - began)
            metrics.operations += 1
            if obs.enabled:
                obs.registry.counter(
                    "orthrus_requests_total", help="completed application requests"
                ).inc()
                obs.registry.histogram(
                    "orthrus_request_latency_seconds",
                    help="request begin to response (incl. safe-mode holds)",
                ).record(env.now - began)
            track_memory()

    # ------------------------------------------------------------------
    # validator processes (chaos-faultable)
    # ------------------------------------------------------------------
    def validator_process(core):
        core_id = core.core_id
        queue_index = queue_index_by_core[core_id]
        dispatch_s = config.costs.seconds(config.costs.validation_dispatch_cycles)
        while True:
            token = yield wake.get()
            if not runtime.scheduler.in_service(core_id):
                # Quarantined: hand the token to a healthy peer and leave.
                alive.discard(core_id)
                wake.put(token)
                return
            now = env.now
            fault = box.fault_for(core_id, now)
            kind = fault.kind if fault is not None else None
            log = queues.pop(queue_index, allow_steal=True)
            if kind is ValidatorFaultKind.CRASH:
                # Die mid-dispatch: the popped log is stranded in flight
                # until the watchdog expires it.
                alive.discard(core_id)
                if log is not None:
                    pending_bytes[0] -= log.approx_bytes()
                    watchdog.dispatched(log, core_id, now)
                return
            if log is None:
                # Orphan token (its log was evicted, redistributed, or
                # stolen); nothing to do.
                continue
            pending_bytes[0] -= log.approx_bytes()
            if obs.enabled:
                obs.spans.record(
                    "queue.wait",
                    log.seq,
                    log.enqueue_time,
                    now,
                    closure=log.closure_name,
                )
            if now > deadline[0]:
                # Past the timely-detection window (drain grace).
                if obs.enabled:
                    obs.registry.counter(
                        "orthrus_deadline_drops_total",
                        help="logs dropped past the timely-detection window",
                    ).inc()
                    obs.spans.record(
                        "drop", log.seq, now, now,
                        closure=log.closure_name, reason="deadline",
                    )
                metrics.skipped += 1
                settle_drop(log, "deadline", now)
                continue
            if kind is ValidatorFaultKind.HANG:
                # Block forever holding the dispatched log.
                alive.discard(core_id)
                watchdog.dispatched(log, core_id, now)
                yield env.event()
                return  # pragma: no cover — the event never fires
            is_canary = is_canary_log(log)
            if is_canary:
                # Canary probes bypass the sampler and its coverage
                # accounting: a skipped canary would prove nothing about
                # plane liveness.  They still ride the watchdog dispatch
                # path so a hung or crashed validator strands them — that
                # stranding is precisely the signal the LivenessMonitor
                # turns into ``canary.missed``.
                decision = None
            else:
                t0 = prof.now() if prof.enabled else 0
                if config.memory_budget_bytes is not None:
                    sampler.observe_memory(
                        memory_in_use(), config.memory_budget_bytes
                    )
                else:
                    sampler.observe_delay(now - log.enqueue_time)
                decision = sampler_decision(sampler, log, now)
                if prof.enabled:
                    prof.lap("sampler.decide", t0)
            if obs.enabled:
                obs.registry.histogram(
                    "orthrus_queue_delay_seconds",
                    help="log age (enqueue to dequeue) at each validator dispatch",
                ).record(now - log.enqueue_time)
                if decision is not None:
                    obs.registry.counter(
                        "orthrus_sampler_decisions_total",
                        {
                            "decision": "validate" if decision.validate else "skip",
                            "reason": decision.reason,
                        },
                        help="sampler verdicts by outcome and reason",
                    ).inc()
            if controller is not None and controller.checksum_only:
                # CHECKSUM_ONLY rung: CRC boundary checks, no re-execution.
                busy = sum(
                    config.costs.checksum_cycles(64)
                    for _ in range(max(1, len(log.output_versions)))
                )
                yield env.timeout(config.costs.seconds(busy))
                checksum_fallback(log, env.now)
                on_step()
                continue
            shed_for_coverage = (
                decision is not None
                and controller is not None
                and controller.coverage_only
                and decision.reason not in COVERAGE_REASONS
            )
            if decision is not None and (not decision.validate or shed_for_coverage):
                runtime.validator.skip(log)
                ledger.skipped(log.seq)
                metrics.skipped += 1
                if exposure is not None:
                    exposure.record(
                        log.closure_name,
                        "coverage-shed" if shed_for_coverage else "sampled-out",
                        stale_s,
                    )
                if obs.enabled:
                    obs.spans.record(
                        "skip", log.seq, now, now,
                        closure=log.closure_name,
                        reason="coverage-shed" if shed_for_coverage
                        else decision.reason,
                    )
                yield env.timeout(config.costs.seconds(config.costs.skip_cycles))
                release(log)
                on_step()
                continue
            # -- dispatch under the watchdog's deadline ------------------
            watchdog.dispatched(log, core_id, now)
            output_bytes = log.approx_bytes()
            for vid in log.output_versions:
                try:
                    output_bytes += runtime.heap.version(vid).size
                except Exception:
                    pass
            # The re-execution costs about what the APP run cost; the
            # functional replay happens at completion time below.
            busy = config.costs.validation_dispatch_cycles + log.app_cycles
            busy += config.costs.compare_cycles_per_byte * output_bytes
            if log.core_id >= 0:
                # Canary probes carry a synthetic app core (-1): no NUMA
                # placement applies to them.
                app_core = machine.core(log.core_id)
                if app_core.numa_node != core.numa_node:
                    busy += config.costs.cross_numa_penalty_cycles
            if kind is ValidatorFaultKind.SLOWDOWN:
                busy *= fault.slowdown_factor
            yield env.timeout(config.costs.seconds(busy))
            if kind is ValidatorFaultKind.VERDICT_LOSS:
                # The work happened; the verdict evaporated.  Leave the
                # dispatch in flight for the watchdog to expire.
                on_step()
                continue
            if not watchdog.completed(log.seq, env.now):
                # The watchdog already expired this dispatch and handed the
                # log to another core: this verdict is a duplicate.
                on_step()
                continue
            outcome = runtime.validator.validate(log, core)
            if drift is not None:
                drift.verdict(core_id)
            if responder is not None:
                responder.on_outcome(outcome)
            if not is_canary:
                # Canaries stay out of the sampler's feedback loop, the
                # latency-driven scaling stats, and the coverage metrics.
                sampler.on_validated(log, env.now)
                latency = env.now - log.enqueue_time
                metrics.validation_latency.add(latency)
                runtime.latency.record(log.closure_name, latency)
                metrics.validated += 1
            ledger.validated(log.seq)
            if obs.enabled:
                level = (
                    controller.level.label if controller is not None else "normal"
                )
                obs.spans.record(
                    "dispatch", log.seq, now, now + dispatch_s,
                    closure=log.closure_name, core=core_id,
                )
                obs.spans.record(
                    "validate", log.seq, now + dispatch_s, env.now,
                    closure=log.closure_name, core=core_id, level=level,
                )
                obs.spans.record(
                    "verdict", log.seq, env.now, env.now,
                    closure=log.closure_name, passed=outcome.passed,
                )
            release(log)
            on_step()

    on_step = track_memory

    # ------------------------------------------------------------------
    # watchdog / degradation tick
    # ------------------------------------------------------------------
    def redispatch_later(log, delay: float):
        yield env.timeout(delay)
        redispatch_pending[0] -= 1
        if ledger.is_terminal(log.seq):
            return  # settled while backing off (e.g. total-death sweep)
        enqueue(log, env.now)

    def ticker():
        prev_drops = prev_attempts = prev_timeouts = prev_dispatches = 0
        while not stop[0]:
            yield env.timeout(ft.check_interval)
            now = env.now
            for dispatch in watchdog.expired(now):
                if obs.enabled:
                    # The dead time on the faulted core, from dispatch to
                    # the watchdog noticing.
                    obs.spans.record(
                        "stalled",
                        dispatch.log.seq,
                        dispatch.dispatched_at,
                        now,
                        closure=dispatch.log.closure_name,
                        core=dispatch.core_id,
                        attempt=dispatch.attempt,
                    )
                delay = watchdog.plan_redispatch(dispatch, now)
                if delay is None:
                    # Retry budget exhausted: degrade, don't strand.
                    checksum_fallback(dispatch.log, now)
                else:
                    redispatch_pending[0] += 1
                    if exposure is not None:
                        # The backoff delay is pure exposure: the log sits
                        # unprotected until its re-enqueue.
                        exposure.record(
                            dispatch.log.closure_name, "redispatch", delay
                        )
                    if obs.enabled:
                        # Backoff before the re-enqueue; the next queue.wait
                        # starts where this ends.
                        obs.spans.record(
                            "redispatch",
                            dispatch.log.seq,
                            now,
                            now + delay,
                            closure=dispatch.log.closure_name,
                        )
                    env.process(redispatch_later(dispatch.log, delay))
            if not alive and (queues.pending or watchdog.in_flight):
                # Total validation-plane death: settle everything via the
                # CRC fallback so blocked producers are released.
                for log in queues.drain():
                    pending_bytes[0] -= log.approx_bytes()
                    checksum_fallback(log, now)
                for dispatch in watchdog.abandon(now):
                    checksum_fallback(dispatch.log, now)
            if controller is not None:
                drops = queues.dropped_total
                attempts = queues.accepted_total + drops
                timeouts = watchdog.timeouts_total
                dispatches = watchdog.dispatches_total
                d_attempts = attempts - prev_attempts
                d_drops = drops - prev_drops
                d_timeouts = timeouts - prev_timeouts
                d_dispatches = dispatches - prev_dispatches
                controller.observe(
                    now,
                    utilization=queues.utilization,
                    drop_rate=(d_drops / d_attempts) if d_attempts else 0.0,
                    timeout_rate=(
                        d_timeouts / max(1, d_dispatches)
                        if (d_timeouts or d_dispatches)
                        else 0.0
                    ),
                )
                prev_drops, prev_attempts = drops, attempts
                prev_timeouts, prev_dispatches = timeouts, dispatches

    # ------------------------------------------------------------------
    threads = [env.process(app_thread(i)) for i in range(config.app_threads)]
    for core_id in val_cores:
        env.process(validator_process(machine.core(core_id)))
    env.process(ticker())

    if recorder is not None:
        def telemetry_process():
            while True:
                recorder.sample(env.now)
                yield env.timeout(recorder.cadence)

        env.process(telemetry_process())

    canary_monitor = None
    if config.canary is not None:
        canary_sched = CanaryScheduler(config.canary, seed=config.seed)
        canary_monitor = LivenessMonitor(config.canary, runtime.report, obs=obs)

        def canary_issuer():
            # Probes ride the same bounded queues and watchdog dispatch as
            # organic traffic: whatever strands real logs strands them too.
            while True:
                yield env.timeout(config.canary.period)
                if apps_done[0] or stop[0]:
                    return
                runtime._seq += 1
                log = canary_sched.next_log(runtime._seq, env.now)
                canary_monitor.issue(log, env.now)
                ledger.enqueue(log.seq)
                done_events[log.seq] = env.event()
                yield from submit(log)
                if obs.enabled:
                    obs.spans.record(
                        "closure.run",
                        log.seq,
                        log.start_time,
                        env.now,
                        closure=log.closure_name,
                    )

        def canary_poller():
            step = config.canary.deadline / 4
            while not stop[0]:
                yield env.timeout(step)
                canary_monitor.poll(env.now)

        env.process(canary_issuer())
        env.process(canary_poller())
        if drift is not None:
            drift.attach_canary(canary_monitor)

    if drift is not None:
        # Drift probes ride their own virtual-time cadence so
        # declared-vs-observed contradictions surface even while the app
        # threads are blocked on backpressure or safe-mode holds.
        def audit_probe_process():
            while not stop[0]:
                yield env.timeout(drift.config.cadence)
                drift.probe(env.now)

        env.process(audit_probe_process())

    def coordinator():
        yield env.all_of(threads)
        apps_done[0] = True
        metrics.duration = env.now
        deadline[0] = env.now * (1 + config.drain_grace_fraction)
        hard_stop = deadline[0] + 64 * ft.check_interval
        while env.now < hard_stop:
            settled = ledger.outstanding == 0 and redispatch_pending[0] == 0
            recovered = (
                controller is None
                or controller.level is DegradationLevel.NORMAL
                or not alive
            )
            if settled and recovered:
                break
            yield env.timeout(ft.check_interval)
        stop[0] = True
        # Final sweep: whatever is still unsettled is accounted, never
        # silently stranded.
        queues.shutdown()
        for log in queues.drain():
            pending_bytes[0] -= log.approx_bytes()
            settle_drop(log, "shutdown-drain", env.now)
        for dispatch in watchdog.abandon(env.now):
            checksum_fallback(dispatch.log, env.now)

    env.run(until=env.process(coordinator()))
    metrics.detections = runtime.detections
    result.responses = [responses_by_index.get(i) for i in range(len(ops))]
    if canary_monitor is not None:
        # Settle overdue canaries before the final telemetry flush so the
        # last timeline sample sees every miss.
        canary_monitor.finalize(env.now)
        result.canary = canary_monitor.summary()
    if drift is not None:
        # One terminal probe (so the last timeline sample sees every
        # violation counter), then freeze the audit payload.
        result.audit = drift.finalize(env.now)
    if recorder is not None:
        recorder.sample(env.now, force=True)
        result.timeline = recorder
        result.slo = slo_monitor.finalize(env.now)
    if responder is not None and not result.crashed:
        result.incident = responder.finalize()

    faulted: dict[str, list[int]] = {}
    for fault in box.faults:
        faulted.setdefault(fault.kind.value, []).append(fault.core_id)
    result.ft = FaultToleranceReport(
        ledger=ledger.summary(),
        conserved=ledger.conserved,
        dispatches=watchdog.dispatches_total,
        timeouts=watchdog.timeouts_total,
        redispatches=watchdog.redispatches_total,
        duplicates=watchdog.duplicates_total,
        exhausted=watchdog.exhausted_total,
        degradation=controller.summary() if controller is not None else None,
        terminal_level=(
            controller.level.label if controller is not None else "normal"
        ),
        peak_level=(
            controller.peak.label if controller is not None else "normal"
        ),
        quarantined_validators=sorted(
            c for c in quarantine.quarantined if c in val_cores
        ),
        faulted_cores=faulted,
        chaos_digest=chaos.digest() if chaos is not None else None,
        queue_drops=queues.drops,
    )
    result.digest = server.state_digest() if not result.crashed else None
    if prof.enabled:
        _finish_profile(prof, env, [machine])
    return result
