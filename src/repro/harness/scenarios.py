"""Benchmark scenarios: one standard way to build and drive each app.

A scenario bundles what the evaluation needs to vary per application
(Table 1): how to construct the server on a given runtime, the op stream,
any pre-load, and which closures externalize results (safe mode).  The
timing drivers (:mod:`repro.harness.pipeline`) and the fault-injection
campaign (:mod:`repro.faultinject.campaign`) both consume scenarios, so a
Table-2 trial and a Fig-6 run exercise identical code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.lsmtree import LsmTreeServer
from repro.apps.masstree import MasstreeServer
from repro.apps.memcached import MemcachedServer
from repro.apps.phoenix import WordCountJob
from repro.memory.version import approx_size
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.alex import AlexWorkload
from repro.workloads.base import Op
from repro.workloads.cachelib import CacheLibWorkload
from repro.workloads.wordcount import WordCountCorpus
from repro.workloads.ycsb import YcsbWriteWorkload


@dataclass
class ServerScenario:
    """A request/response application driven by an op stream."""

    name: str
    build: Callable[[OrthrusRuntime], Any]
    make_ops: Callable[[int, int], list[Op]]  # (n_ops, seed) -> ops
    setup: Callable[[Any], None] = lambda server: None
    externalizing: frozenset[str] = field(default_factory=frozenset)
    #: labels of the app's control-path scopes (fault-injection targets)
    control_functions: tuple[str, ...] = ()

    def response_bytes(self, response: Any) -> int:
        return approx_size(response)


@dataclass
class BatchScenario:
    """A batch job (Phoenix): driven by chunks, measured by job time."""

    name: str
    build: Callable[[OrthrusRuntime], Any]
    make_chunks: Callable[[int, int], list[str]]  # (n_words, seed) -> chunks
    externalizing: frozenset[str] = field(default_factory=frozenset)
    control_functions: tuple[str, ...] = ()


# ----------------------------------------------------------------------
def memcached_scenario(n_keys: int = 200, n_buckets: int = 64) -> ServerScenario:
    def make_ops(n_ops: int, seed: int) -> list[Op]:
        return list(CacheLibWorkload(n_keys=n_keys, seed=seed).ops(n_ops))

    return ServerScenario(
        name="memcached",
        build=lambda runtime: MemcachedServer(runtime, n_buckets=n_buckets),
        make_ops=make_ops,
        externalizing=MemcachedServer.externalizing,
        control_functions=(
            "mc.control.parse",
            "mc.control.dispatch",
            "mc.control.rx",
            "mc.control.tx",
        ),
    )


def masstree_scenario(n_keys: int = 200, order: int = 8) -> ServerScenario:
    def make_ops(n_ops: int, seed: int) -> list[Op]:
        return list(AlexWorkload(n_keys=n_keys, seed=seed).ops(n_ops))

    def setup(server: MasstreeServer) -> None:
        server.load_keys(AlexWorkload(n_keys=n_keys, seed=0).initial_keys())

    return ServerScenario(
        name="masstree",
        build=lambda runtime: MasstreeServer(runtime, order=order),
        make_ops=make_ops,
        setup=setup,
        externalizing=MasstreeServer.externalizing,
        control_functions=("mt.control.dispatch", "mt.control.rx", "mt.control.tx"),
    )


def lsmtree_scenario(
    n_keys: int = 200, memtable_limit: int = 128, skiplist_seed: int = 0
) -> ServerScenario:
    def make_ops(n_ops: int, seed: int) -> list[Op]:
        return list(YcsbWriteWorkload(n_keys=n_keys, seed=seed).ops(n_ops))

    return ServerScenario(
        name="lsmtree",
        build=lambda runtime: LsmTreeServer(
            runtime, memtable_limit=memtable_limit, seed=skiplist_seed
        ),
        make_ops=make_ops,
        externalizing=LsmTreeServer.externalizing,
        control_functions=("lsm.control.dispatch", "lsm.control.rx", "lsm.control.tx"),
    )


def phoenix_scenario(
    vocabulary_size: int = 300,
    words_per_chunk: int = 2000,
    n_partitions: int = 8,
) -> BatchScenario:
    def make_chunks(n_words: int, seed: int) -> list[str]:
        corpus = WordCountCorpus(
            n_words=n_words,
            vocabulary_size=vocabulary_size,
            words_per_chunk=words_per_chunk,
            seed=seed,
        )
        return corpus.chunks()

    return BatchScenario(
        name="phoenix",
        build=lambda runtime: WordCountJob(runtime, n_partitions=n_partitions),
        make_chunks=make_chunks,
        externalizing=WordCountJob.externalizing,
        control_functions=("phx.control.split",),
    )


def all_server_scenarios() -> list[ServerScenario]:
    return [memcached_scenario(), masstree_scenario(), lsmtree_scenario()]
