"""Benchmark harness: scenarios and virtual-time deployment drivers."""

from repro.harness.chaos import FaultToleranceReport, run_chaos_server
from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import (
    PipelineConfig,
    RunResult,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import (
    BatchScenario,
    ServerScenario,
    all_server_scenarios,
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)

__all__ = [
    "BatchScenario",
    "FaultToleranceReport",
    "PipelineConfig",
    "run_chaos_server",
    "RunResult",
    "ServerScenario",
    "all_server_scenarios",
    "lsmtree_scenario",
    "masstree_scenario",
    "memcached_scenario",
    "phoenix_scenario",
    "run_orthrus_server",
    "run_phoenix",
    "run_rbv_server",
    "run_vanilla_server",
]
