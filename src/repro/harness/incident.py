"""End-to-end incident scenario: inject → detect → quarantine → repair.

Drives a server scenario twice over the identical op stream:

1. a **reference** run on a healthy machine — its state digest is the
   ground truth the repaired heap must reproduce byte-for-byte;
2. an **incident** run where one application core is armed with a
   persistent fault mid-workload, with a
   :class:`~repro.response.coordinator.ResponseCoordinator` attached: the
   runtime detects the divergences, arbitrates on a third core,
   quarantines the mercurial core, and — at :func:`run_incident`'s
   finalize step — repairs every poisoned version.

The result carries both digests plus the ground-truth injected core, so
tests and the CLI can score the response layer's *attribution accuracy*
(did it blame the right core?) and *repair fidelity* (is the heap
byte-identical to the fault-free run?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.response.coordinator import ResponseConfig, ResponseCoordinator
from repro.response.report import IncidentReport
from repro.runtime.orthrus import OrthrusRuntime


def value_fault(closure: str = "mc.set", opcode: str = "vsum", bit: int = 3) -> Fault:
    """A fault that corrupts a computed *value* (stored where it should be).

    The default hits the vectorized value digest of ``mc.set`` — every
    insert on the mercurial core stores a wrong digest into the right
    item, the easiest shape for byte-identical repair.
    """
    unit = Unit.SIMD if opcode.startswith("v") else Unit.ALU
    return Fault(
        unit=unit, kind=FaultKind.BITFLIP, site=Site(closure, opcode, 0), bit=bit
    )


def misdirected_fault(closure: str = "mc.set", bit: int = 2) -> Fault:
    """A fault that corrupts the *hash*, landing writes on wrong objects.

    Listing 2's misplaced-bucket SDC: repair must walk the object-level
    taint (the true target never appears in the faulty log's write set).
    """
    return Fault(
        unit=Unit.ALU,
        kind=FaultKind.BITFLIP,
        site=Site(closure, "hash64", 0),
        bit=bit,
    )


@dataclass
class IncidentConfig:
    """Knobs for one inject→detect→quarantine→repair episode."""

    n_ops: int = 150
    seed: int = 0
    app_threads: int = 2
    validation_cores: int = 2
    #: core armed with the fault (an app core for the app-core-faulty
    #: case; a validation core id to exercise the validator-faulty case)
    faulty_core: int = 0
    fault: Fault | None = None
    #: ops served healthy before the fault is armed (trusted history)
    arm_after: int = 10
    reclaim_batch: int = 16
    response: ResponseConfig | None = None
    #: after finalize, disarm the fault and run probation probes (models a
    #: transient rather than a truly mercurial core)
    probation: bool = False
    obs: Any = None


@dataclass
class IncidentResult:
    """Everything one incident episode produced."""

    report: IncidentReport
    runtime: OrthrusRuntime
    server: Any
    coordinator: ResponseCoordinator
    responses: list = field(default_factory=list)
    reference_responses: list = field(default_factory=list)
    reference_digest: int = 0
    final_digest: int = 0
    injected_core: int = -1
    readmitted: list[int] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        """Is the repaired heap byte-identical to the fault-free run?"""
        return self.final_digest == self.reference_digest

    @property
    def attribution_correct(self) -> bool:
        """Did the response layer blame the injected core?"""
        return self.report.faulty_core == self.injected_core


def _drive(scenario, config: IncidentConfig, machine, runtime, arm: bool):
    server = scenario.build(runtime)
    scenario.setup(server)
    ops = scenario.make_ops(config.n_ops, config.seed)
    responses = []
    for index, op in enumerate(ops):
        if arm and index == config.arm_after:
            machine.arm(config.faulty_core, config.fault)
        core = runtime.scheduler.next_app_core()
        with runtime.bind_core(core.core_id):
            responses.append(server.handle(op))
    return server, responses


def run_incident(scenario, config: IncidentConfig | None = None) -> IncidentResult:
    """One full episode; see the module docstring."""
    config = config if config is not None else IncidentConfig()
    if config.fault is None:
        config.fault = value_fault()
    n_cores = config.app_threads + config.validation_cores
    if not 0 <= config.faulty_core < n_cores:
        raise ValueError(f"faulty_core {config.faulty_core} outside machine")
    app_cores = list(range(config.app_threads))
    val_cores = list(range(config.app_threads, n_cores))

    # Reference run: same topology, same ops, no fault.  Only the logical
    # end state matters (core routing does not change computed values).
    ref_machine = Machine(cores_per_node=n_cores, numa_nodes=1, seed=config.seed)
    ref_runtime = OrthrusRuntime(
        machine=ref_machine,
        app_cores=app_cores,
        validation_cores=val_cores,
        mode="inline",
        reclaim_batch=config.reclaim_batch,
    )
    ref_server, ref_responses = _drive(
        scenario, config, ref_machine, ref_runtime, arm=False
    )
    reference_digest = ref_server.state_digest()

    # Incident run: armed core + response coordinator.
    machine = Machine(cores_per_node=n_cores, numa_nodes=1, seed=config.seed)
    runtime = OrthrusRuntime(
        machine=machine,
        app_cores=app_cores,
        validation_cores=val_cores,
        mode="inline",
        reclaim_batch=config.reclaim_batch,
        obs=config.obs,
    )
    response = config.response if config.response is not None else ResponseConfig()
    if config.probation:
        # Probes replay retained logs after finalize; the deferred
        # reclamation pass at resume would collect their evidence first.
        response.hold_evidence_for_probation = True
    coordinator = ResponseCoordinator(runtime, response)
    server, responses = _drive(scenario, config, machine, runtime, arm=True)
    report = coordinator.finalize()
    readmitted: list[int] = []
    if config.probation:
        machine.disarm_all()
        readmitted = coordinator.run_probation()
    return IncidentResult(
        report=report,
        runtime=runtime,
        server=server,
        coordinator=coordinator,
        responses=responses,
        reference_responses=ref_responses,
        reference_digest=reference_digest,
        final_digest=server.state_digest(),
        injected_core=config.faulty_core,
        readmitted=readmitted,
    )
