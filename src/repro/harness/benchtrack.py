"""Benchmark tracking: canonical perf artifacts + regression comparison.

Every PR used to re-derive the paper's numbers from scratch and throw
them away; nothing recorded whether Orthrus overhead crept from 4% to 9%
between commits.  This module runs scaled-down versions of the headline
benchmarks (Fig 6 performance, Fig 8 validation latency, Table 2
coverage) and writes one ``BENCH_<name>.json`` artifact per benchmark —
schema ``orthrus-bench/1``: the config and its digest, wall time, the sim
metrics, and whole-run time-series percentiles from the telemetry
recorder.  :func:`compare_artifacts` diffs two artifacts under
per-metric *directions* (lower-better, higher-better, or stable) with a
relative tolerance, so CI can fail a PR that regresses throughput or
detection latency while letting genuine improvements through.

The comparison gates only on ``sim`` metrics: virtual-time results are
deterministic for a fixed (scale, seed), so two runs of the same config
always compare clean — wall time is recorded for trend plots but never
gates (it measures the CI host, not Orthrus).

Surfaced as the ``repro-bench bench-compare`` CLI subcommand; the seed
baselines live in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faultinject.campaign import FaultInjectionCampaign
from repro.faultinject.config import InjectionConfig
from repro.fleet import FleetConfig, run_fleet
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import lsmtree_scenario, memcached_scenario
from repro.obs import Observability, TimeSeriesConfig
from repro.obs.profiling import Profiler, activation, share_attribution
from repro.sim.metrics import slowdown

__all__ = [
    "BENCH_FORMAT",
    "BENCHES",
    "BenchComparison",
    "MetricDelta",
    "artifact_filename",
    "compare_artifacts",
    "load_artifact",
    "render_comparison",
    "run_bench",
    "write_artifact",
]

BENCH_FORMAT = "orthrus-bench/1"

#: regression semantics per metric: does the run get *worse* when the
#: value goes up, down, or whenever it moves at all?
LOWER_BETTER = "lower_better"
HIGHER_BETTER = "higher_better"
STABLE = "stable"


def _scaled(value: float, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(value * scale))


def _base_config(seed: int, **overrides) -> PipelineConfig:
    return PipelineConfig(app_threads=2, validation_cores=2, seed=seed, **overrides)


def _orthrus_with_telemetry(seed: int) -> PipelineConfig:
    """The instrumented Orthrus arm: metrics + timeline, no trace buffer
    (benchmarks do not need per-event records, only the series)."""
    return _base_config(
        seed,
        obs=Observability(trace=False),
        timeseries=TimeSeriesConfig(),
        slos=[],
    )


def _series_percentiles(result) -> dict[str, dict[str, float]]:
    if result.timeline is None:
        return {}
    return result.timeline.summary()


# ----------------------------------------------------------------------
# the benchmarks
# ----------------------------------------------------------------------
def _run_fig6(scale: float, seed: int):
    """Fig 6 (scaled): vanilla/Orthrus/RBV throughput + memory overheads."""
    sim: dict[str, float] = {}
    series: dict[str, dict[str, float]] = {}
    for label, factory in (("memcached", memcached_scenario), ("lsmtree", lsmtree_scenario)):
        scenario = factory()
        n_ops = _scaled(2500, scale)
        vanilla = run_vanilla_server(scenario, n_ops, _base_config(seed))
        orthrus = run_orthrus_server(scenario, n_ops, _orthrus_with_telemetry(seed))
        rbv = run_rbv_server(scenario, n_ops, _base_config(seed))
        sim[f"{label}_vanilla_kops"] = vanilla.metrics.throughput / 1e3
        sim[f"{label}_orthrus_overhead"] = slowdown(
            vanilla.metrics.throughput, orthrus.metrics.throughput
        )
        sim[f"{label}_rbv_overhead"] = slowdown(
            vanilla.metrics.throughput, rbv.metrics.throughput
        )
        sim[f"{label}_memory_overhead"] = orthrus.metrics.memory_overhead
        sim[f"{label}_sampling_fraction"] = orthrus.metrics.sampling_fraction
        for name, stats in _series_percentiles(orthrus).items():
            series[f"{label}.{name}"] = stats
    return sim, series


_FIG6_DIRECTIONS = {
    "memcached_vanilla_kops": HIGHER_BETTER,
    "memcached_orthrus_overhead": LOWER_BETTER,
    "memcached_rbv_overhead": STABLE,
    "memcached_memory_overhead": LOWER_BETTER,
    "memcached_sampling_fraction": HIGHER_BETTER,
    "lsmtree_vanilla_kops": HIGHER_BETTER,
    "lsmtree_orthrus_overhead": LOWER_BETTER,
    "lsmtree_rbv_overhead": STABLE,
    "lsmtree_memory_overhead": LOWER_BETTER,
    "lsmtree_sampling_fraction": HIGHER_BETTER,
}


def _run_fig8(scale: float, seed: int):
    """Fig 8 (scaled): validation latency, Orthrus vs RBV."""
    sim: dict[str, float] = {}
    series: dict[str, dict[str, float]] = {}
    for label, factory in (("memcached", memcached_scenario), ("lsmtree", lsmtree_scenario)):
        scenario = factory()
        n_ops = _scaled(3000, scale)
        orthrus = run_orthrus_server(scenario, n_ops, _orthrus_with_telemetry(seed))
        rbv = run_rbv_server(scenario, n_ops, _base_config(seed))
        o_lat = orthrus.metrics.validation_latency
        r_lat = rbv.metrics.validation_latency
        sim[f"{label}_orthrus_val_mean_us"] = o_lat.mean * 1e6
        sim[f"{label}_orthrus_val_p95_us"] = o_lat.p95 * 1e6
        sim[f"{label}_rbv_over_orthrus_ratio"] = r_lat.mean / max(o_lat.mean, 1e-12)
        for name, stats in _series_percentiles(orthrus).items():
            series[f"{label}.{name}"] = stats
    return sim, series


_FIG8_DIRECTIONS = {
    "memcached_orthrus_val_mean_us": LOWER_BETTER,
    "memcached_orthrus_val_p95_us": LOWER_BETTER,
    "memcached_rbv_over_orthrus_ratio": HIGHER_BETTER,
    "lsmtree_orthrus_val_mean_us": LOWER_BETTER,
    "lsmtree_orthrus_val_p95_us": LOWER_BETTER,
    "lsmtree_rbv_over_orthrus_ratio": HIGHER_BETTER,
}


def _run_table2(scale: float, seed: int):
    """Table 2 (scaled): fault-injection coverage on memcached."""
    campaign = FaultInjectionCampaign(
        memcached_scenario(),
        workload_size=_scaled(600, scale, minimum=50),
        injection=InjectionConfig(n_faults=_scaled(16, scale, minimum=6), seed=seed),
        make_pipeline=lambda: _base_config(seed, drain_grace_fraction=4.0),
        runner=run_orthrus_server,
        rbv_runner=None,
    )
    result = campaign.run()
    table = result.coverage_table()
    total_sdcs = sum(row.total_sdcs for row in table.values())
    detected = sum(row.orthrus_detected for row in table.values())
    sim = {
        "detection_rate": result.detection_rate,
        "total_sdc_trials": float(total_sdcs),
        "detected_sdc_trials": float(detected),
        "profiled_sites": float(len(result.profiled_sites)),
    }
    return sim, {}


_TABLE2_DIRECTIONS = {
    "detection_rate": HIGHER_BETTER,
    "total_sdc_trials": STABLE,
    "detected_sdc_trials": HIGHER_BETTER,
    "profiled_sites": STABLE,
}


def _run_fleet_scale(scale: float, seed: int):
    """Fleet rollup (scaled): coverage, lag, and incident census across a
    small sharded fleet.  Everything here is virtual-time deterministic
    for a fixed (scale, seed) — including the incident counts — so STABLE
    metrics gate exactly."""
    config = FleetConfig(
        hosts=4,
        shards=8,
        cores_per_host=32,
        keys=40_000,
        users=4_000,
        scale=scale,
        epochs=48,
        # demand beyond validator capacity, so the adaptive sampler (not
        # idle headroom) sets the coverage number this bench gates on
        load_factor=8.0,
        # a fleet this small needs a hot-running fault population for the
        # detection/quarantine path to register at all
        mercurial_rate=0.02,
        ground_shards=2,
        ground_ops=80,
        seed=seed,
    )
    report = run_fleet(config, workers=1)
    rollup = report.rollup
    sim = {
        "coverage_fraction": rollup["coverage"],
        "validation_lag_p95_us": rollup["validation_lag"].get("p95", 0.0) * 1e6,
        "escaped_sdc": float(rollup["escaped"]),
        "detections": float(
            rollup["incidents"]["by_kind"].get("detection", 0)
        ),
        "quarantined_cores": float(rollup["quarantine"]["cores"]),
        "safe_hold_shards": float(
            len(rollup["degradation"]["safe_hold_shards"])
        ),
        "remote_rbv_logs": float(rollup["rbv"]["remote_logs"]),
        "event_count": float(len(report.events)),
    }
    return sim, report.timeline.summary()


_FLEET_DIRECTIONS = {
    "coverage_fraction": HIGHER_BETTER,
    "validation_lag_p95_us": LOWER_BETTER,
    "escaped_sdc": LOWER_BETTER,
    "detections": STABLE,
    "quarantined_cores": STABLE,
    "safe_hold_shards": LOWER_BETTER,
    "remote_rbv_logs": STABLE,
    "event_count": STABLE,
}


@dataclass(frozen=True)
class BenchSpec:
    """One tracked benchmark: its runner and per-metric directions."""

    name: str
    run: Callable[[float, int], tuple[dict, dict]]
    directions: dict[str, str]
    description: str = ""


BENCHES: dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            "fig6_performance",
            _run_fig6,
            _FIG6_DIRECTIONS,
            "throughput + memory overheads (vanilla/Orthrus/RBV)",
        ),
        BenchSpec(
            "fig8_validation_latency",
            _run_fig8,
            _FIG8_DIRECTIONS,
            "validation latency (Orthrus vs RBV)",
        ),
        BenchSpec(
            "table2_coverage",
            _run_table2,
            _TABLE2_DIRECTIONS,
            "fault-injection detection coverage",
        ),
        BenchSpec(
            "fleet_scale",
            _run_fleet_scale,
            _FLEET_DIRECTIONS,
            "fleet-wide coverage, lag, and incident census",
        ),
    )
}


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
def _config_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def run_bench(name: str, scale: float = 1.0, seed: int = 1) -> dict:
    """Run one tracked benchmark and build its ``orthrus-bench/1`` dict."""
    spec = BENCHES.get(name)
    if spec is None:
        raise ValueError(
            f"unknown benchmark {name!r}; tracked: {', '.join(sorted(BENCHES))}"
        )
    config = {
        "name": name,
        "scale": scale,
        "seed": seed,
        "app_threads": 2,
        "validation_cores": 2,
    }
    # Self-profile the whole benchmark: the drivers' subsystem timers
    # record into this ambient profiler, so the artifact carries a
    # per-subsystem wall-time breakdown next to the sim metrics.  Wall
    # time (and the profile) never gates — compare_artifacts only uses
    # the profile to *attribute* a throughput regression.
    prof = Profiler()
    with activation(prof):
        with prof.scope(f"bench.{name}"):
            sim, series = spec.run(scale, seed)
    prof.stop()
    return {
        "format": BENCH_FORMAT,
        "name": name,
        "config": config,
        "config_digest": _config_digest(config),
        "wall_time_s": prof.wall_s,
        "sim": sim,
        "series_percentiles": series,
        "profile": prof.to_payload(),
    }


def artifact_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def write_artifact(artifact: dict, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, artifact_filename(artifact["name"]))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    if not isinstance(artifact, dict) or artifact.get("format") != BENCH_FORMAT:
        raise ValueError(f"{path} is not an {BENCH_FORMAT} artifact")
    return artifact


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(slots=True)
class MetricDelta:
    """One metric's baseline→current movement and its verdict."""

    metric: str
    baseline: float | None
    current: float | None
    direction: str
    #: relative change (current vs baseline); None when not computable
    rel: float | None
    #: ``ok`` | ``regression`` | ``improvement`` | ``new`` | ``missing``
    status: str


@dataclass
class BenchComparison:
    """The comparison verdict for one benchmark artifact pair."""

    name: str
    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)
    config_match: bool = True
    notes: list[str] = field(default_factory=list)
    #: per-subsystem wall-time share movement (biggest mover first) when
    #: both artifacts carry an ``orthrus-profile/1`` section; informs
    #: *where* a regression happened — it never gates
    profile_shift: list[dict] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _relative_change(baseline: float, current: float) -> float:
    if abs(baseline) > 1e-12:
        return (current - baseline) / abs(baseline)
    return math.inf if abs(current) > 1e-12 else 0.0


def _judge(direction: str, baseline: float, current: float, tolerance: float):
    rel = _relative_change(baseline, current)
    # Near-zero baselines make relative change explode; fall back to an
    # absolute-tolerance band there (overheads hovering at ~0).
    if abs(baseline) <= 1e-12:
        moved = abs(current - baseline) > tolerance
        rel_reported = rel if math.isfinite(rel) else None
    else:
        moved = abs(rel) > tolerance
        rel_reported = rel
    if not moved:
        return rel_reported, "ok"
    worse = (
        rel > 0
        if direction == LOWER_BETTER
        else rel < 0
        if direction == HIGHER_BETTER
        else True  # STABLE: any drift beyond tolerance is a regression
    )
    return rel_reported, ("regression" if worse else "improvement")


def compare_artifacts(
    baseline: dict, current: dict, tolerance: float = 0.1
) -> BenchComparison:
    """Diff two artifacts of the same benchmark under its directions."""
    name = current.get("name", "?")
    comparison = BenchComparison(name=name, tolerance=tolerance)
    if baseline.get("name") != name:
        comparison.notes.append(
            f"comparing different benchmarks: {baseline.get('name')!r} vs {name!r}"
        )
        comparison.config_match = False
    elif baseline.get("config_digest") != current.get("config_digest"):
        comparison.config_match = False
        comparison.notes.append(
            "config digests differ "
            f"({baseline.get('config_digest')} vs {current.get('config_digest')}); "
            "deltas reflect the config change, not just the code"
        )
    directions = BENCHES[name].directions if name in BENCHES else {}
    base_sim = baseline.get("sim", {})
    cur_sim = current.get("sim", {})
    for metric in sorted(set(base_sim) | set(cur_sim)):
        direction = directions.get(metric, STABLE)
        if metric not in base_sim:
            comparison.deltas.append(
                MetricDelta(metric, None, cur_sim[metric], direction, None, "new")
            )
            continue
        if metric not in cur_sim:
            comparison.deltas.append(
                MetricDelta(metric, base_sim[metric], None, direction, None, "missing")
            )
            continue
        rel, status = _judge(direction, base_sim[metric], cur_sim[metric], tolerance)
        comparison.deltas.append(
            MetricDelta(metric, base_sim[metric], cur_sim[metric], direction, rel, status)
        )
    base_profile = baseline.get("profile")
    cur_profile = current.get("profile")
    if base_profile and cur_profile:
        comparison.profile_shift = share_attribution(base_profile, cur_profile)
    return comparison


def render_comparison(comparison: BenchComparison) -> str:
    """Human-readable comparison table plus the verdict line."""
    lines = [
        f"bench {comparison.name} (tolerance ±{comparison.tolerance:.0%})"
    ]
    for note in comparison.notes:
        lines.append(f"  note: {note}")
    width = max((len(d.metric) for d in comparison.deltas), default=6)
    for delta in comparison.deltas:
        base = "—" if delta.baseline is None else f"{delta.baseline:.4g}"
        cur = "—" if delta.current is None else f"{delta.current:.4g}"
        rel = "" if delta.rel is None else f" ({delta.rel:+.1%})"
        marker = {
            "ok": " ",
            "regression": "✗",
            "improvement": "✓",
            "new": "+",
            "missing": "-",
        }[delta.status]
        lines.append(
            f"  {marker} {delta.metric.ljust(width)}  {base} -> {cur}{rel}"
            + ("" if delta.status == "ok" else f"  [{delta.status}]")
        )
    if comparison.profile_shift:
        top = comparison.profile_shift[0]
        # Name the subsystem whose share of wall time moved most — the
        # answer to "which subsystem regressed?" — whenever something
        # regressed, or whenever the shift itself is big enough to matter.
        if not comparison.ok or abs(top["delta"]) >= 0.05:
            lines.append(
                f"  profile attribution: {top['name']}"
                f" share {top['baseline_share']:.1%}"
                f" -> {top['current_share']:.1%}"
                f" ({top['delta'] * 100:+.1f}pp)"
            )
    verdict = (
        "no regressions"
        if comparison.ok
        else f"{len(comparison.regressions)} regression(s)"
    )
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)
