"""Virtual-time drivers: vanilla, Orthrus, and RBV deployments of a scenario.

Each driver wires a scenario into the discrete-event engine:

* **application threads** are closed-loop clients pinned to distinct app
  cores; a request's service time is the cycles its control+data path
  actually executed on the simulated machine, plus the deployment's
  bookkeeping costs (:mod:`repro.sim.costs`);
* **Orthrus validator cores** consume closure logs from a shared store
  (work-conserving, equivalent to per-core queues with stealing), applying
  the sampler under queueing-delay or memory-budget feedback;
* **the RBV replica** replays full requests *in submission order* on a
  separate healthy server, paying serialization + network transfer per
  batch and stalling the primary when the replication lag bound is hit.

Functional execution (what values are computed, what gets detected) and
timing (when it happens in virtual seconds) are decoupled: closures run
instantaneously in Python while the engine advances virtual time by their
measured cycle cost.  This is the substitution that makes the paper's
wall-clock figures reproducible on a laptop (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.machine.cpu import Machine
from repro.memory.version import approx_size
from repro.obs.audit import AuditConfig, DriftMonitor
from repro.obs.canary import CanaryScheduler, LivenessMonitor, is_canary_log
from repro.obs.exposure import ExposureLedger
from repro.obs.profiling import activation, active, make_profiler
from repro.obs.slo import SloMonitor, default_objectives
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    install_audit_probes,
    install_canary_probes,
    install_default_probes,
    install_span_probes,
)
from repro.response.coordinator import ResponseCoordinator
from repro.runtime.orthrus import OrthrusRuntime
from repro.runtime.sampling import AdaptiveSampler, SamplerConfig, sampler_decision
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.events import Environment, SimClock, Store
from repro.sim.metrics import RunMetrics

_SENTINEL = object()


@dataclass
class PipelineConfig:
    """Shared knobs for the timing drivers."""

    app_threads: int = 2
    validation_cores: int = 2
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    sampler: Any = None  # sampler instance; overrides sampler_factory
    #: called with (sampler_seed) to build the run's sampler; default
    #: builds an AdaptiveSampler
    sampler_factory: Any = None
    #: decorrelates sampler decisions across fault-injection trials while
    #: the workload seed stays fixed (the golden run must match)
    sampler_seed: int | None = None
    safe_mode: bool = False
    #: §3.5 dynamic scaling: start with a single validation thread and let
    #: the scheduler launch more (up to ``validation_cores``) when a
    #: closure's recent validation latency runs 50% above the global
    #: average.  False = all validation cores run from the start.
    dynamic_scaling: bool = False
    #: switch the sampling trigger from queueing delay to a memory budget
    #: (bytes of versions + pending logs) — the Fig 10 experiment
    memory_budget_bytes: float | None = None
    #: pre-armed machine (fault-injection trials); topology must fit
    machine: Machine | None = None
    #: (core_id, Fault) pairs armed *after* application setup/preload —
    #: the campaign injects into the serving phase, not the bulk load
    deferred_faults: tuple = ()
    #: how long validators may keep draining after the application
    #: finishes, as a fraction of the run's duration.  Detection past this
    #: window is not *timely* — the corrupted result has long been
    #: externalized — so remaining logs are dropped, exactly as a
    #: terminating production instance would drop them.
    drain_grace_fraction: float = 0.25
    #: versions reclaimed in batches of this size (§3.6); a huge value
    #: effectively disables the GC (the reclamation ablation)
    reclaim_batch: int = 16
    #: an ``repro.obs.Observability`` handle; None (the default) runs the
    #: pipeline fully uninstrumented
    obs: Any = None
    #: a ``repro.response.ResponseConfig``; when set the Orthrus driver
    #: attaches a ResponseCoordinator (arbitration + quarantine + repair)
    #: and the finalized IncidentReport lands on ``RunResult.incident``
    response: Any = None
    #: a ``repro.obs.TimeSeriesConfig``; with ``obs`` also set, the Orthrus
    #: driver runs a virtual-time sampling process over the registry and
    #: lands the recorder on ``RunResult.timeline``
    timeseries: Any = None
    #: list of ``repro.obs.SloObjective`` evaluated on every telemetry
    #: tick; None picks :func:`repro.obs.slo.default_objectives`, [] turns
    #: SLO evaluation off.  The terminal report lands on ``RunResult.slo``
    slos: Any = None
    #: a ``repro.runtime.degradation.FaultToleranceConfig``; when set the
    #: Orthrus driver swaps the reliable shared log store for the
    #: fault-tolerant validation plane (bounded per-core queues, watchdog
    #: re-dispatch, degradation ladder) in :mod:`repro.harness.chaos`
    fault_tolerance: Any = None
    #: a ``repro.faultinject.ValidatorChaosConfig``; arms chaos faults on
    #: validation cores (implies the fault-tolerant driver)
    validator_faults: Any = None
    #: a ``repro.obs.CanaryConfig``; when set the Orthrus drivers inject
    #: known-corrupt canary closures on its period and hold them to its
    #: detection deadline — the liveness summary lands on
    #: ``RunResult.canary`` and misses on the DetectionReport
    canary: Any = None
    #: wall-clock self-profiling (``repro.obs.profiling``): None/False =
    #: off, True = a fresh driver-owned Profiler (payload lands on
    #: ``RunResult.profile``), a ``ProfileConfig`` = owned with knobs
    #: (e.g. the sys.setprofile sampler), a ``Profiler`` instance =
    #: shared across runs — the caller installs/stops/exports it.
    #: Profiling observes wall time only; it never touches virtual time
    #: or digests (parity-tested in tests/harness/test_profile_parity.py).
    profile: Any = None
    #: an ``repro.obs.AuditConfig`` (or True for defaults); when set the
    #: Orthrus drivers run runtime drift probes (declared vs observed
    #: behavior, DESIGN §14) plus an ExposureLedger, and the terminal
    #: ``orthrus-audit/1`` payload lands on ``RunResult.audit``.
    #: Observational only: no RNG, no virtual-time perturbation of the
    #: functional path — digests are identical with auditing on or off.
    audit: Any = None
    #: closure names the sampler is *declared* to target; the static
    #: auditor cross-checks them against the closure registry (a target
    #: no app registers would be waited on forever)
    sampler_targets: tuple = ()
    seed: int = 1
    rbv_batch_size: int | None = None
    rbv_state_check_every: int = 64

    def make_sampler(self):
        if self.sampler is not None:
            return self.sampler
        seed = self.sampler_seed if self.sampler_seed is not None else self.seed
        if self.sampler_factory is not None:
            return self.sampler_factory(seed)
        return AdaptiveSampler(SamplerConfig(), seed=seed)

    def build_machine(self, extra_cores: int = 0) -> Machine:
        if self.machine is not None:
            return self.machine
        cores = self.app_threads + max(1, self.validation_cores) + extra_cores
        return Machine(cores_per_node=cores, numa_nodes=1, seed=self.seed)


@dataclass
class RunResult:
    """Metrics plus the functional state a campaign needs to classify."""

    metrics: RunMetrics
    runtime: OrthrusRuntime | None = None
    responses: list[Any] = field(default_factory=list)
    digest: int | None = None
    crashed: bool = False
    crash_reason: str = ""
    rbv_detections: int = 0
    #: finalized ``repro.response.IncidentReport`` when the run was
    #: configured with a response layer (``PipelineConfig.response``)
    incident: Any = None
    #: ``repro.obs.TimeSeriesRecorder`` when the run was configured with
    #: ``PipelineConfig.timeseries`` (and obs); None otherwise
    timeline: Any = None
    #: terminal ``repro.obs.SloReport`` for the same runs
    slo: Any = None
    #: ``repro.harness.chaos.FaultToleranceReport`` when the run used the
    #: fault-tolerant validation plane; None otherwise
    ft: Any = None
    #: canary liveness summary dict (``LivenessMonitor.summary()``) when
    #: the run was configured with ``PipelineConfig.canary``
    canary: Any = None
    #: ``orthrus-profile/1`` payload when the run owned its profiler
    #: (``PipelineConfig.profile`` of True/ProfileConfig); None otherwise
    profile: Any = None
    #: ``orthrus-audit/1`` payload (drift-probe findings + exposure
    #: ledger) when the run was configured with ``PipelineConfig.audit``
    audit: Any = None

    @property
    def detections(self) -> int:
        if self.runtime is not None:
            return self.runtime.detections
        return self.rbv_detections


def _with_profiler(config: PipelineConfig, label: str, body: Callable[[], RunResult]):
    """Run a driver body under the configured self-profiler.

    An *owned* profiler (``config.profile`` of True/ProfileConfig) is
    created, activated, stopped, and exported to ``result.profile`` here;
    a *shared* one (a Profiler instance, e.g. spanning a whole campaign)
    is only activated — its creator installs/stops/exports it.  With
    profiling off the body still runs under the *ambient* profiler's
    ``label`` scope, so a profiled benchmark sees its driver runs.
    """
    prof = make_profiler(config.profile)
    if not prof.enabled:
        with active().scope(label):
            return body()
    owned = prof is not config.profile
    with activation(prof):
        if owned and prof.sampler is not None:
            prof.sampler.install()
        try:
            with prof.scope(label):
                result = body()
        finally:
            if owned:
                prof.stop()
    if owned:
        result.profile = prof.to_payload()
    return result


def _finish_profile(prof, env: Environment, machines) -> None:
    """Fold the run's throughput counters into the active profiler."""
    prof.add_events(env.events_processed)
    prof.add_instructions(
        sum(core.instructions for machine in machines for core in machine.cores)
    )


def _orthrus_overhead_cycles(log: ClosureLog, costs: CostModel) -> float:
    """Per-closure bookkeeping the modified application pays (§4.2)."""
    versions = len(log.output_versions)
    tracked_accesses = len(log.inputs) + versions
    cycles = costs.log_base_cycles
    cycles += costs.log_per_version_cycles * versions
    cycles += costs.pointer_indirection_cycles * tracked_accesses
    # CRC generation per created version, plus one boundary probe for the
    # payload that entered the closure from the control path (§3.4).
    cycles += costs.checksum_cycles(64) * (versions + 1)
    return cycles


def _exposure_staleness(sampler) -> float:
    """The exposure window one skipped validation opens: the key stays
    unprotected until its next validation opportunity, which the sampler
    bounds by its staleness threshold (DESIGN §14)."""
    return float(
        getattr(getattr(sampler, "config", None), "staleness_threshold", 2e-3)
    )


def _audit_setup(config: PipelineConfig, sampler, metrics, obs):
    """Build the (drift monitor, exposure ledger) pair when auditing is on.

    Shared with the chaos driver.  The declared coverage floor defaults
    to the sampler's configured minimum rate — the contract the drift
    probe holds observed organic coverage against.
    """
    if config.audit is None:
        return None, None
    audit_cfg = AuditConfig() if config.audit is True else config.audit
    exposure = ExposureLedger(registry=obs.registry if obs.enabled else None)
    drift = DriftMonitor(
        audit_cfg,
        declared_pool=config.validation_cores,
        coverage_floor=float(
            getattr(getattr(sampler, "config", None), "min_rate", 0.0)
        ),
        metrics=metrics,
        obs=obs,
        exposure=exposure,
    )
    return drift, exposure


def validator_process(
    env: Environment,
    core,
    runtime: OrthrusRuntime,
    sampler,
    log_store: Store,
    pending_bytes: list[int],
    done_events: dict[int, Any],
    metrics: RunMetrics,
    config: PipelineConfig,
    memory_in_use: Callable[[], float],
    on_step: Callable[[], None] = lambda: None,
    deadline: list[float] | None = None,
    drift=None,
    exposure=None,
):
    """One Orthrus validation core: dequeue → sample → re-execute (§3.3).

    Shared between the server and Phoenix drivers.  Ends when it dequeues
    the shutdown sentinel.  Logs dequeued past ``deadline`` (the end of
    the timely-detection window) are dropped unvalidated.
    """
    obs = runtime.obs
    prof = active()
    decide = getattr(sampler, "decide", None)
    dispatch_s = config.costs.seconds(config.costs.validation_dispatch_cycles)
    stale_s = _exposure_staleness(sampler)
    while True:
        log = yield log_store.get()
        if log is _SENTINEL:
            return
        pending_bytes[0] -= log.approx_bytes()
        now = env.now
        if deadline is not None and now > deadline[0]:
            if obs.enabled:
                obs.registry.counter(
                    "orthrus_deadline_drops_total",
                    help="logs dropped past the timely-detection window",
                ).inc()
                obs.spans.record(
                    "queue.wait", log.seq, log.enqueue_time, now,
                    closure=log.closure_name,
                )
                obs.spans.record(
                    "drop", log.seq, now, now,
                    closure=log.closure_name, reason="deadline",
                )
            runtime.validator.skip(log)
            metrics.skipped += 1
            if exposure is not None:
                exposure.record(
                    log.closure_name,
                    "deadline",
                    (now - log.enqueue_time) + stale_s,
                )
            event = done_events.pop(log.seq, None)
            if event is not None:
                event.succeed()
            continue
        if is_canary_log(log):
            # Canary probes bypass the sampler — a skipped canary proves
            # nothing — and stay out of the run's coverage metrics.  Their
            # app core is synthetic (-1), so no NUMA placement applies.
            outcome = runtime.validator.validate(log, core)
            if drift is not None:
                drift.verdict(core.core_id)
            busy = config.costs.validation_dispatch_cycles + outcome.val_cycles
            busy += config.costs.compare_cycles_per_byte * log.approx_bytes()
            yield env.timeout(config.costs.seconds(busy))
            log.validated_time = env.now
            if obs.enabled:
                obs.spans.record(
                    "queue.wait", log.seq, log.enqueue_time, now,
                    closure=log.closure_name,
                )
                obs.spans.record(
                    "dispatch", log.seq, now, now + dispatch_s,
                    closure=log.closure_name, core=core.core_id,
                )
                obs.spans.record(
                    "validate", log.seq, now + dispatch_s, env.now,
                    closure=log.closure_name, core=core.core_id,
                )
                obs.spans.record(
                    "verdict", log.seq, env.now, env.now,
                    closure=log.closure_name, passed=outcome.passed,
                )
            event = done_events.pop(log.seq, None)
            if event is not None:
                event.succeed()
            on_step()
            continue
        t0 = prof.now() if prof.enabled else 0
        if config.memory_budget_bytes is not None:
            sampler.observe_memory(memory_in_use(), config.memory_budget_bytes)
        else:
            sampler.observe_delay(now - log.enqueue_time)
        decision = (
            decide(log, now)
            if decide is not None
            else sampler_decision(sampler, log, now)
        )
        if prof.enabled:
            prof.lap("sampler.decide", t0)
        if obs.enabled:
            obs.registry.histogram(
                "orthrus_queue_delay_seconds",
                help="log age (enqueue to dequeue) at each validator dispatch",
            ).record(now - log.enqueue_time)
            obs.registry.counter(
                "orthrus_sampler_decisions_total",
                {
                    "decision": "validate" if decision.validate else "skip",
                    "reason": decision.reason,
                },
                help="sampler verdicts by outcome and reason",
            ).inc()
            obs.tracer.emit(
                "sampler.decision",
                ts=now,
                closure=log.closure_name,
                caller=log.caller,
                seq=log.seq,
                validate=decision.validate,
                reason=decision.reason,
                rate=getattr(sampler, "rate", 1.0),
            )
            obs.spans.record(
                "queue.wait", log.seq, log.enqueue_time, now,
                closure=log.closure_name,
            )
        if decision.validate:
            # Comparison cost covers the actual output payloads (bitwise
            # memcmp over the created versions) — significant for Phoenix's
            # container-sized outputs, negligible for KV items.
            output_bytes = log.approx_bytes()
            for vid in log.output_versions:
                try:
                    output_bytes += runtime.heap.version(vid).size
                except Exception:
                    pass
            outcome = runtime.validator.validate(log, core)
            if drift is not None:
                drift.verdict(core.core_id)
            if runtime.responder is not None:
                runtime.responder.on_outcome(outcome)
            busy = config.costs.validation_dispatch_cycles + outcome.val_cycles
            busy += config.costs.compare_cycles_per_byte * output_bytes
            app_core = runtime.machine.core(log.core_id)
            if app_core.numa_node != core.numa_node:
                # Cross-socket validation: the log and its versions are
                # cold in this core's L3 (§3.5 prefers same-node placement).
                busy += config.costs.cross_numa_penalty_cycles
            yield env.timeout(config.costs.seconds(busy))
            log.validated_time = env.now
            sampler.on_validated(log, env.now)
            latency = env.now - log.enqueue_time
            metrics.validation_latency.add(latency)
            runtime.latency.record(log.closure_name, latency)
            metrics.validated += 1
            if obs.enabled:
                # The causal chain tiles: dispatch covers the fixed
                # dispatch cost, validate the re-execution + comparison
                # (+ any cross-NUMA penalty) up to the verdict instant.
                obs.spans.record(
                    "dispatch", log.seq, now, now + dispatch_s,
                    closure=log.closure_name, core=core.core_id,
                )
                obs.spans.record(
                    "validate", log.seq, now + dispatch_s, env.now,
                    closure=log.closure_name, core=core.core_id,
                )
                obs.spans.record(
                    "verdict", log.seq, env.now, env.now,
                    closure=log.closure_name, passed=outcome.passed,
                )
        else:
            runtime.validator.skip(log)
            if exposure is not None:
                exposure.record(log.closure_name, "sampled-out", stale_s)
            if obs.enabled:
                obs.spans.record(
                    "skip", log.seq, now, now,
                    closure=log.closure_name, reason=decision.reason,
                )
            yield env.timeout(config.costs.seconds(config.costs.skip_cycles))
            metrics.skipped += 1
        event = done_events.pop(log.seq, None)
        if event is not None:
            event.succeed()
        on_step()


# ----------------------------------------------------------------------
# Vanilla
# ----------------------------------------------------------------------
def run_vanilla_server(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    """The unmodified application: no logging, no checksums, no validator."""
    return _with_profiler(
        config, "driver.vanilla", lambda: _run_vanilla_impl(scenario, n_ops, config)
    )


def _run_vanilla_impl(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    prof = active()
    env = Environment()
    if prof.enabled:
        env.profiler = prof
    machine = config.build_machine()
    app_cores = list(range(config.app_threads))
    runtime = OrthrusRuntime(
        machine=machine,
        app_cores=app_cores,
        validation_cores=[config.app_threads],
        clock=SimClock(env),
        mode="external",
        checksums=False,
        hold_versions=False,
    )
    server = scenario.build(runtime)
    try:
        scenario.setup(server)
    except Exception as exc:
        metrics = RunMetrics()
        return RunResult(
            metrics=metrics,
            runtime=runtime,
            crashed=True,
            crash_reason=f"setup: {type(exc).__name__}: {exc}",
        )
    for core_id, fault in config.deferred_faults:
        machine.arm(core_id, fault)
    ops = scenario.make_ops(n_ops, config.seed)
    metrics = RunMetrics()
    result = RunResult(metrics=metrics, runtime=runtime)
    responses_by_index: dict[int, Any] = {}

    def app_thread(thread_id: int):
        core = machine.core(thread_id)
        for index in range(thread_id, len(ops), config.app_threads):
            began = env.now
            before = core.total_cycles
            with runtime.bind_core(thread_id):
                try:
                    responses_by_index[index] = server.handle(ops[index])
                except Exception as exc:
                    result.crashed = True
                    result.crash_reason = f"{type(exc).__name__}: {exc}"
                    return
            cycles = core.total_cycles - before + config.costs.control_path_cycles
            yield env.timeout(config.costs.seconds(cycles))
            metrics.request_latency.add(env.now - began)
            metrics.operations += 1
            extra = (
                server.resident_bytes_extra()
                if hasattr(server, "resident_bytes_extra")
                else 0
            )
            metrics.peak_live_bytes = max(
                metrics.peak_live_bytes, runtime.heap.live_bytes + extra
            )
            metrics.peak_versioned_bytes = max(
                metrics.peak_versioned_bytes, runtime.heap.versioned_bytes + extra
            )

    threads = [env.process(app_thread(i)) for i in range(config.app_threads)]
    env.run(until=env.all_of(threads))
    metrics.duration = env.now
    result.responses = [responses_by_index.get(i) for i in range(len(ops))]
    result.digest = server.state_digest() if not result.crashed else None
    if prof.enabled:
        _finish_profile(prof, env, [machine])
    return result


# ----------------------------------------------------------------------
# Orthrus
# ----------------------------------------------------------------------
def run_orthrus_server(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    """The Orthrus deployment: logging + asynchronous sampled validation."""
    if config.fault_tolerance is not None or config.validator_faults is not None:
        # The fault-tolerant validation plane (bounded queues + watchdog +
        # degradation ladder) lives in its own driver.
        from repro.harness.chaos import run_chaos_server

        return run_chaos_server(scenario, n_ops, config)
    if config.validation_cores < 1:
        raise ConfigurationError("Orthrus needs at least one validation core")
    return _with_profiler(
        config, "driver.orthrus", lambda: _run_orthrus_impl(scenario, n_ops, config)
    )


def _run_orthrus_impl(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    prof = active()
    env = Environment()
    if prof.enabled:
        env.profiler = prof
    machine = config.build_machine()
    app_cores = list(range(config.app_threads))
    val_cores = [config.app_threads + i for i in range(config.validation_cores)]
    runtime = OrthrusRuntime(
        machine=machine,
        app_cores=app_cores,
        validation_cores=val_cores,
        clock=SimClock(env),
        mode="external",
        checksums=True,
        reclaim_batch=config.reclaim_batch,
        obs=config.obs,
    )
    sampler = config.make_sampler()
    obs = runtime.obs
    responder = None
    if config.response is not None:
        responder = ResponseCoordinator(runtime, config.response)
    server = scenario.build(runtime)
    runtime._hold_versions = False  # setup closures are not validated
    try:
        scenario.setup(server)
    except Exception as exc:
        return RunResult(
            metrics=RunMetrics(),
            runtime=runtime,
            crashed=True,
            crash_reason=f"setup: {type(exc).__name__}: {exc}",
        )
    runtime._hold_versions = True
    for core_id, fault in config.deferred_faults:
        machine.arm(core_id, fault)
    ops = scenario.make_ops(n_ops, config.seed)
    metrics = RunMetrics()
    result = RunResult(metrics=metrics, runtime=runtime)
    responses_by_index: dict[int, Any] = {}

    log_store = Store(env)
    pending_bytes = [0]
    request_logs: list[ClosureLog] = []
    runtime._on_log = request_logs.append
    done_events: dict[int, Any] = {}
    if obs.enabled:
        # The shared log store is the pipeline's (work-conserving) analogue
        # of the per-core queues; expose its depth the same way.
        obs.registry.gauge(
            "orthrus_log_store_depth",
            help="pending closure logs in the shared validation store",
        ).set_function(lambda: float(len(log_store)))
    drift, exposure = _audit_setup(config, sampler, metrics, obs)
    recorder = None
    slo_monitor = None
    if config.timeseries is not None and obs.enabled:
        recorder = TimeSeriesRecorder(obs.registry, config.timeseries)
        install_default_probes(recorder)
        if obs.spans.enabled:
            install_span_probes(recorder)
        if config.canary is not None:
            install_canary_probes(recorder)
        if drift is not None:
            install_audit_probes(recorder)
        slo_monitor = SloMonitor(
            recorder,
            objectives=(
                config.slos if config.slos is not None else default_objectives()
            ),
            tracer=obs.tracer,
            report=runtime.report,
        )

    def track_memory() -> None:
        extra = (
            server.resident_bytes_extra()
            if hasattr(server, "resident_bytes_extra")
            else 0
        )
        metrics.peak_live_bytes = max(
            metrics.peak_live_bytes, runtime.heap.live_bytes + extra
        )
        metrics.peak_versioned_bytes = max(
            metrics.peak_versioned_bytes,
            runtime.heap.versioned_bytes + pending_bytes[0] + extra,
        )

    def memory_in_use() -> float:
        return runtime.heap.versioned_bytes + pending_bytes[0]

    def app_thread(thread_id: int):
        core = machine.core(thread_id)
        for index in range(thread_id, len(ops), config.app_threads):
            began = env.now
            before = core.total_cycles
            with runtime.bind_core(thread_id):
                try:
                    responses_by_index[index] = server.handle(ops[index])
                except Exception as exc:
                    result.crashed = True
                    result.crash_reason = f"{type(exc).__name__}: {exc}"
                    return
            logs = list(request_logs)
            request_logs.clear()
            cycles = core.total_cycles - before + config.costs.control_path_cycles
            cycles += sum(_orthrus_overhead_cycles(log, config.costs) for log in logs)
            yield env.timeout(config.costs.seconds(cycles))
            hold: list[Any] = []
            for log in logs:
                log.enqueue_time = env.now
                pending_bytes[0] += log.approx_bytes()
                event = env.event()
                done_events[log.seq] = event
                if config.safe_mode and log.closure_name in scenario.externalizing:
                    hold.append(event)
                log_store.put(log)
                if obs.enabled:
                    # Driver-side span: closure execution plus the control
                    # path up to the simulated enqueue, so queue.wait tiles
                    # against it exactly.
                    obs.spans.record(
                        "closure.run",
                        log.seq,
                        log.start_time,
                        env.now,
                        closure=log.closure_name,
                        core=thread_id,
                    )
                    obs.registry.counter(
                        "orthrus_queue_pushes_total", {"queue": "store"},
                        help="closure logs enqueued for validation",
                    ).inc()
                    obs.tracer.emit(
                        "queue.push",
                        ts=env.now,
                        queue="store",
                        seq=log.seq,
                        closure=log.closure_name,
                        depth=len(log_store),
                    )
            if hold:
                # Strict safe mode: withhold externalizing results until
                # their closures validate (§3.5).
                yield env.all_of(hold)
            metrics.request_latency.add(env.now - began)
            metrics.operations += 1
            if obs.enabled:
                obs.registry.counter(
                    "orthrus_requests_total", help="completed application requests"
                ).inc()
                obs.registry.histogram(
                    "orthrus_request_latency_seconds",
                    help="request begin to response (incl. safe-mode holds)",
                ).record(env.now - began)
            track_memory()

    threads = [env.process(app_thread(i)) for i in range(config.app_threads)]
    deadline = [float("inf")]
    validators: list[Any] = []

    def spawn_validator(core_id: int) -> None:
        validators.append(
            env.process(
                validator_process(
                    env=env,
                    core=machine.core(core_id),
                    runtime=runtime,
                    sampler=sampler,
                    log_store=log_store,
                    pending_bytes=pending_bytes,
                    done_events=done_events,
                    metrics=metrics,
                    config=config,
                    memory_in_use=memory_in_use,
                    on_step=track_memory,
                    deadline=deadline,
                    drift=drift,
                    exposure=exposure,
                )
            )
        )

    apps_done = [False]
    if config.dynamic_scaling:
        # §3.5 dynamic scaling: one validation thread to start; the
        # scheduler launches another whenever some closure's recent
        # validation latency runs 50% above the global average, up to the
        # configured core budget.
        spawn_validator(val_cores[0])
        reserve = list(val_cores[1:])

        def scaling_monitor():
            while reserve and not apps_done[0]:
                yield env.timeout(5e-6)
                if runtime.latency.closures_needing_help():
                    spawn_validator(reserve.pop(0))

        env.process(scaling_monitor())
    else:
        for cid in val_cores:
            spawn_validator(cid)

    if recorder is not None:
        # A dedicated virtual-time sampling process: telemetry must tick
        # even while every app thread is blocked (safe-mode holds, RBV-ish
        # stalls) — that is exactly when queue depth and lag are
        # interesting.  The loop is simply abandoned when the coordinator
        # fires; its one pending timeout dies with the environment.
        def telemetry_process():
            while True:
                recorder.sample(env.now)
                yield env.timeout(recorder.cadence)

        env.process(telemetry_process())

    canary_monitor = None
    if config.canary is not None:
        canary_sched = CanaryScheduler(config.canary, seed=config.seed)
        canary_monitor = LivenessMonitor(config.canary, runtime.report, obs=obs)
        if drift is not None:
            drift.attach_canary(canary_monitor)

        def canary_issuer():
            # Mint known-corrupt probes through the same store the organic
            # traffic uses; liveness of the whole validation plane — not
            # just of one component — is what the canary measures.
            while True:
                yield env.timeout(config.canary.period)
                if apps_done[0]:
                    return
                runtime._seq += 1
                log = canary_sched.next_log(runtime._seq, env.now)
                canary_monitor.issue(log, env.now)
                log.enqueue_time = env.now
                pending_bytes[0] += log.approx_bytes()
                done_events[log.seq] = env.event()
                if obs.enabled:
                    obs.spans.record(
                        "closure.run",
                        log.seq,
                        log.start_time,
                        env.now,
                        closure=log.closure_name,
                    )
                log_store.put(log)

        def canary_poller():
            step = config.canary.deadline / 4
            while True:
                yield env.timeout(step)
                canary_monitor.poll(env.now)
                if apps_done[0] and canary_monitor.outstanding == 0:
                    return

        env.process(canary_issuer())
        env.process(canary_poller())

    if drift is not None:
        # Drift probes ride their own virtual-time cadence, like
        # telemetry: declared-vs-observed contradictions must surface even
        # while the app threads are blocked.  Abandoned at teardown.
        def audit_probe_process():
            while True:
                yield env.timeout(drift.config.cadence)
                drift.probe(env.now)
                if apps_done[0]:
                    return

        env.process(audit_probe_process())

    def coordinator():
        yield env.all_of(threads)
        apps_done[0] = True
        metrics.duration = env.now
        deadline[0] = env.now * (1 + config.drain_grace_fraction)
        for _ in validators:
            log_store.put(_SENTINEL)
        yield env.all_of(validators)

    env.run(until=env.process(coordinator()))
    metrics.detections = runtime.detections
    result.responses = [responses_by_index.get(i) for i in range(len(ops))]
    if canary_monitor is not None:
        # Settle overdue canaries before the final telemetry flush so the
        # last timeline sample sees every miss.
        canary_monitor.finalize(env.now)
        result.canary = canary_monitor.summary()
    if drift is not None:
        # One terminal probe (so the last timeline sample sees every
        # violation counter), then freeze the audit payload.
        result.audit = drift.finalize(env.now)
    if recorder is not None:
        # Final flush: one forced sample so the tail of the run (the drain
        # phase) is in the series, then freeze the SLO verdicts.
        recorder.sample(env.now, force=True)
        result.timeline = recorder
        result.slo = slo_monitor.finalize(env.now)
    if responder is not None and not result.crashed:
        result.incident = responder.finalize()
    result.digest = server.state_digest() if not result.crashed else None
    if prof.enabled:
        _finish_profile(prof, env, [machine])
    return result


# ----------------------------------------------------------------------
# RBV
# ----------------------------------------------------------------------
def run_rbv_server(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    """Replication-based validation: full re-execution on a replica server.

    The replica gets the same number of cores as the application (§4.2)
    but data dependencies force it to replay requests sequentially; the
    primary pays serialization + batched network forwarding and stalls at
    the replication-lag bound.
    """
    return _with_profiler(
        config, "driver.rbv", lambda: _run_rbv_impl(scenario, n_ops, config)
    )


def _run_rbv_impl(scenario, n_ops: int, config: PipelineConfig) -> RunResult:
    prof = active()
    env = Environment()
    if prof.enabled:
        env.profiler = prof
    costs = config.costs
    batch_size = config.rbv_batch_size or costs.rbv_batch_size

    def build_instance(machine: Machine) -> tuple[OrthrusRuntime, Any]:
        runtime = OrthrusRuntime(
            machine=machine,
            app_cores=list(range(config.app_threads)),
            validation_cores=[config.app_threads],
            clock=SimClock(env),
            mode="external",
            checksums=False,
            hold_versions=False,
        )
        server = scenario.build(runtime)
        scenario.setup(server)
        return runtime, server

    primary_machine = config.build_machine()
    replica_machine = Machine(
        cores_per_node=config.app_threads + 1, numa_nodes=1, seed=config.seed + 7919
    )
    try:
        primary_runtime, primary = build_instance(primary_machine)
        _, replica = build_instance(replica_machine)
    except Exception as exc:
        return RunResult(
            metrics=RunMetrics(),
            crashed=True,
            crash_reason=f"setup: {type(exc).__name__}: {exc}",
        )
    for core_id, fault in config.deferred_faults:
        primary_machine.arm(core_id, fault)

    ops = scenario.make_ops(n_ops, config.seed)
    metrics = RunMetrics()
    result = RunResult(metrics=metrics, runtime=None)
    responses_by_index: dict[int, Any] = {}
    repl_store = Store(env)
    inflight = [0]
    stall_events: list[Any] = []
    detections = [0]

    def app_thread(thread_id: int):
        core = primary_machine.core(thread_id)
        for index in range(thread_id, len(ops), config.app_threads):
            began = env.now
            op = ops[index]
            before = core.total_cycles
            error: Exception | None = None
            response: Any = None
            with primary_runtime.bind_core(thread_id):
                try:
                    response = primary.handle(op)
                except Exception as exc:
                    error = exc
            responses_by_index[index] = response
            payload = approx_size(response) + approx_size(op.value) + 64
            # Forward at execution time so the replica replays requests in
            # the primary's processing order (§4.1) — forwarding after the
            # service delay would let two primary threads reorder.
            repl_store.put((op, response, error, env.now, payload))
            cycles = core.total_cycles - before + costs.control_path_cycles
            cycles += costs.rbv_primary_overhead_cycles
            cycles += costs.serialize_cycles_per_byte * payload
            yield env.timeout(costs.seconds(cycles))
            inflight[0] += 1
            if inflight[0] > costs.rbv_max_lag:
                # Replication backpressure: the bounded queue is full; the
                # primary blocks until the replica drains half the window
                # (hysteresis — stalled requests wait out whole batch
                # rounds), the source of RBV's enormous tail latencies.
                gate = env.event()
                stall_events.append(gate)
                yield gate
            metrics.request_latency.add(env.now - began)
            metrics.operations += 1
            metrics.peak_live_bytes = max(
                metrics.peak_live_bytes, primary_runtime.heap.live_bytes
            )
            # RBV's memory cost: the full replica state plus the in-flight
            # replication buffer.
            metrics.peak_versioned_bytes = max(
                metrics.peak_versioned_bytes,
                primary_runtime.heap.live_bytes + replica.runtime.heap.live_bytes,
            )
            if error is not None:
                result.crashed = True
                result.crash_reason = f"{type(error).__name__}: {error}"
                return

    def replica_process():
        # Response comparison is per-request; full state digests are only
        # comparable at quiescence (the coordinator's final check) because
        # the primary keeps executing while the replica replays.
        replica_core = replica_machine.core(0)
        while True:
            first = yield repl_store.get()
            if first is _SENTINEL:
                return
            batch = [first]
            stop = False
            while len(batch) < batch_size and len(repl_store):
                item = yield repl_store.get()
                if item is _SENTINEL:
                    stop = True
                    break
                batch.append(item)
            total_bytes = sum(item[4] for item in batch)
            yield env.timeout(costs.network_transfer_s(total_bytes))
            for op, primary_response, primary_error, completed_at, _ in batch:
                before = replica_core.total_cycles
                replica_error: Exception | None = None
                replica_response: Any = None
                with replica.runtime.bind_core(0):
                    try:
                        replica_response = replica.handle(op)
                    except Exception as exc:
                        replica_error = exc
                cycles = replica_core.total_cycles - before + costs.control_path_cycles
                yield env.timeout(costs.seconds(cycles))
                diverged = (
                    type(primary_error) is not type(replica_error)
                    or primary_response != replica_response
                )
                if diverged:
                    detections[0] += 1
                metrics.validation_latency.add(env.now - completed_at)
                metrics.validated += 1
                inflight[0] -= 1
                if inflight[0] <= costs.rbv_max_lag // 2:
                    while stall_events:
                        stall_events.pop(0).succeed()
            if stop:
                return

    threads = [env.process(app_thread(i)) for i in range(config.app_threads)]
    replica_proc = env.process(replica_process())

    def coordinator():
        yield env.all_of(threads)
        metrics.duration = env.now
        repl_store.put(_SENTINEL)
        yield replica_proc
        if not result.crashed and primary.state_digest() != replica.state_digest():
            detections[0] += 1

    env.run(until=env.process(coordinator()))
    metrics.detections = detections[0]
    result.rbv_detections = detections[0]
    result.responses = [responses_by_index.get(i) for i in range(len(ops))]
    result.digest = primary.state_digest() if not result.crashed else None
    if prof.enabled:
        _finish_profile(prof, env, [primary_machine, replica_machine])
    return result
