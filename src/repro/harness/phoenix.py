"""Virtual-time drivers for the Phoenix batch workload (§4.2 "Phoenix").

Phoenix is measured by *job time* rather than throughput.  The drivers
mirror the server drivers' structure: map tasks fan out over the
application worker cores, a barrier precedes the reduce phase, and the
deployment variant decides what runs beside them:

* vanilla — nothing;
* Orthrus — the closure logs (one per task, with large containers) feed
  the shared validator cores, exercising the big-payload comparison path;
* RBV — each task's output container is serialized and forwarded to a
  replica that re-executes the whole job sequentially, which is where the
  paper's 51% throughput drop and ~513 ms validation latencies come from.
"""

from __future__ import annotations

from typing import Any

from repro.apps.phoenix.framework import map_task, reduce_task
from repro.closures.log import ClosureLog
from repro.machine.cpu import Machine
from repro.memory.version import approx_size
from repro.runtime.orthrus import OrthrusRuntime
from repro.sim.events import Environment, SimClock, Store
from repro.sim.metrics import RunMetrics
from repro.harness.pipeline import (
    PipelineConfig,
    RunResult,
    _orthrus_overhead_cycles,
    _SENTINEL,
    validator_process,
)


def _build_runtime(env, machine, config, orthrus: bool) -> OrthrusRuntime:
    n_val = max(1, config.validation_cores) if orthrus else 1
    return OrthrusRuntime(
        machine=machine,
        app_cores=list(range(config.app_threads)),
        validation_cores=[config.app_threads + i for i in range(n_val)],
        clock=SimClock(env),
        mode="external",
        checksums=orthrus,
        hold_versions=orthrus,
        reclaim_batch=4,
        obs=config.obs if orthrus else None,
    )


def _run_tasks(env, runtime, machine, config, tasks, on_task_done,
               extra_cycles=None, charge_overhead=True, crash=None):
    """Fan a list of thunks out over the app worker cores; returns the
    barrier event.  Each thunk returns ``(result, logs)``; ``extra_cycles``
    lets a deployment charge additional per-task work (RBV serialization).
    A task that raises records the failure into ``crash`` (fail-stop) and
    retires its worker."""
    store = Store(env)
    for index, task in enumerate(tasks):
        store.put((index, task))
    for _ in range(config.app_threads):
        store.put(_SENTINEL)

    def worker(thread_id: int):
        core = machine.core(thread_id)
        while True:
            item = yield store.get()
            if item is _SENTINEL:
                return
            if crash is not None and crash:
                continue  # job is crashing; drain remaining tasks unrun
            index, thunk = item
            before = core.total_cycles
            try:
                with runtime.bind_core(thread_id), runtime:
                    result, logs = thunk()
            except Exception as exc:
                if crash is not None:
                    crash.append(f"{type(exc).__name__}: {exc}")
                continue
            cycles = core.total_cycles - before
            if charge_overhead:
                cycles += sum(
                    _orthrus_overhead_cycles(log, config.costs) for log in logs
                )
            if extra_cycles is not None:
                cycles += extra_cycles(result)
            yield env.timeout(config.costs.seconds(cycles))
            on_task_done(index, result, logs, env.now)

    return env.all_of(
        [env.process(worker(i)) for i in range(config.app_threads)]
    )


def run_phoenix(
    scenario,
    n_words: int,
    config: PipelineConfig,
    variant: str = "orthrus",
) -> RunResult:
    """Run the Phoenix word-count job under one deployment variant."""
    if variant not in ("vanilla", "orthrus", "rbv"):
        raise ValueError(f"unknown variant {variant!r}")
    env = Environment()
    machine = config.build_machine()
    orthrus = variant == "orthrus"
    runtime = _build_runtime(env, machine, config, orthrus=orthrus)
    job = scenario.build(runtime)
    phx = job.job
    for core_id, fault in config.deferred_faults:
        machine.arm(core_id, fault)
    chunks = scenario.make_chunks(n_words, config.seed)
    metrics = RunMetrics()
    result = RunResult(metrics=metrics, runtime=runtime if orthrus else None)

    captured_logs: list[ClosureLog] = []
    runtime._on_log = captured_logs.append

    log_store = Store(env)
    pending_bytes = [0]
    done_events: dict[int, Any] = {}
    sampler = config.make_sampler()
    validators = []
    deadline = [float("inf")]
    if orthrus:
        validators = [
            env.process(
                validator_process(
                    env=env,
                    core=machine.core(config.app_threads + i),
                    runtime=runtime,
                    sampler=sampler,
                    log_store=log_store,
                    pending_bytes=pending_bytes,
                    done_events=done_events,
                    metrics=metrics,
                    config=config,
                    memory_in_use=lambda: runtime.heap.versioned_bytes
                    + pending_bytes[0],
                    deadline=deadline,
                )
            )
            for i in range(config.validation_cores)
        ]

    # RBV replica: an independent second job instance replaying tasks.
    replica_runtime = None
    replica_job = None
    repl_store = Store(env)
    rbv_detections = [0]
    if variant == "rbv":
        replica_machine = Machine(
            cores_per_node=config.app_threads + 1, numa_nodes=1, seed=config.seed + 31
        )
        replica_runtime = _build_runtime(env, replica_machine, config, orthrus=False)
        replica_job = scenario.build(replica_runtime)

    def on_task_done(index, result_ptr, logs, now):
        for log in logs:
            log.enqueue_time = now
            if orthrus:
                pending_bytes[0] += log.approx_bytes()
                log_store.put(log)
        if variant == "rbv" and result_ptr is not None:
            payload = runtime.heap.latest(result_ptr.obj_id).value
            repl_store.put((index, payload, approx_size(payload), now))
        metrics.peak_live_bytes = max(metrics.peak_live_bytes, runtime.heap.live_bytes)
        metrics.peak_versioned_bytes = max(
            metrics.peak_versioned_bytes,
            runtime.heap.versioned_bytes + pending_bytes[0],
        )

    def make_map_thunk(chunk_ptr):
        def thunk():
            before = len(captured_logs)
            out = map_task(phx.map_fn, chunk_ptr, phx.n_partitions)
            logs = captured_logs[before:]
            del captured_logs[before:]
            return out, logs

        return thunk

    def make_reduce_thunk(containers, partition):
        def thunk():
            before = len(captured_logs)
            out = reduce_task(phx.reduce_fn, containers, partition)
            logs = captured_logs[before:]
            del captured_logs[before:]
            return out, logs

        return thunk

    map_results: dict[int, Any] = {}
    reduce_results: dict[int, Any] = {}

    def rbv_extra(result_ptr):
        # RBV primary: replication bookkeeping plus serializing the task's
        # (large) output container for the replica.
        cycles = config.costs.rbv_primary_overhead_cycles
        if result_ptr is not None:
            payload = runtime.heap.latest(result_ptr.obj_id).value
            cycles += config.costs.serialize_cycles_per_byte * approx_size(payload)
        return cycles

    extra = rbv_extra if variant == "rbv" else None

    crash: list[str] = []

    def driver():
        core = machine.core(0)
        # Split phase: control path, charged to core 0.
        before = core.total_cycles
        try:
            with runtime.bind_core(0), runtime:
                chunk_ptrs = phx.split(chunks)
        except Exception as exc:
            result.crashed = True
            result.crash_reason = f"{type(exc).__name__}: {exc}"
            metrics.duration = env.now
            return
        # (Under RBV the replica reads the same input dataset from shared
        # storage — only task outputs are forwarded for comparison.)
        split_cycles = core.total_cycles - before
        yield env.timeout(config.costs.seconds(split_cycles))

        def record_map(index, out, logs, now):
            map_results[index] = out
            on_task_done(index, out, logs, now)

        map_tasks = [
            make_map_thunk(chunk_ptr) for chunk_ptr in chunk_ptrs
        ]
        yield _run_tasks(env, runtime, machine, config, map_tasks, record_map,
                         extra_cycles=extra, charge_overhead=orthrus, crash=crash)
        if crash:
            result.crashed = True
            result.crash_reason = crash[0]
            metrics.duration = env.now
            return

        containers = tuple(map_results[i] for i in range(len(map_tasks)))

        def record_reduce(index, out, logs, now):
            reduce_results[index] = out
            on_task_done(len(map_tasks) + index, out, logs, now)

        reduce_tasks = [
            make_reduce_thunk(containers, partition)
            for partition in range(phx.n_partitions)
        ]
        yield _run_tasks(env, runtime, machine, config, reduce_tasks, record_reduce,
                         extra_cycles=extra, charge_overhead=orthrus, crash=crash)
        if crash:
            result.crashed = True
            result.crash_reason = crash[0]
            metrics.duration = env.now
            return

        if config.safe_mode and orthrus:
            # Phoenix reveals results only at the end: safe mode means the
            # merge waits for every outstanding validation (§3.5).
            holds = [event for event in done_events.values()]
            if holds:
                yield env.all_of(holds)
        phx.reduce_outputs = [
            reduce_results[i] for i in range(phx.n_partitions)
        ]
        job.result = phx.merge()
        metrics.operations = len(map_tasks) + len(reduce_tasks)
        metrics.duration = env.now

    def make_replica_workers():
        """Parallel re-execution on the replica server.

        Phoenix map tasks are independent, so — unlike the KV stores,
        where data dependencies force sequential replay — the replica
        parallelizes them across its cores.  Reduce replays still wait for
        every map replay (the same barrier the job itself has).
        """
        with replica_runtime.bind_core(0), replica_runtime:
            replica_ptrs = replica_job.job.split(chunks)
        maps_total = len(replica_ptrs)
        replica_maps: dict[int, Any] = {}
        maps_gate = env.event()

        def worker(worker_id: int):
            core = replica_runtime.machine.core(worker_id)
            while True:
                item = yield repl_store.get()
                if item is _SENTINEL:
                    return
                index, primary_payload, payload_bytes, completed_at = item
                yield env.timeout(config.costs.network_transfer_s(payload_bytes))
                if index >= maps_total and not maps_gate.triggered:
                    yield maps_gate
                before = core.total_cycles
                with replica_runtime.bind_core(worker_id), replica_runtime:
                    if index < maps_total:
                        out = map_task(
                            replica_job.job.map_fn,
                            replica_ptrs[index],
                            phx.n_partitions,
                        )
                    else:
                        containers = tuple(
                            replica_maps[i] for i in range(maps_total)
                        )
                        out = reduce_task(
                            replica_job.job.reduce_fn,
                            containers,
                            index - maps_total,
                        )
                cycles = core.total_cycles - before
                # Deep structural comparison of the big containers — the
                # expensive equivalence checks §4.2 attributes to RBV.
                cycles += config.costs.compare_cycles_per_byte * payload_bytes * 4
                yield env.timeout(config.costs.seconds(cycles))
                if index < maps_total:
                    replica_maps[index] = out
                    if len(replica_maps) == maps_total and not maps_gate.triggered:
                        maps_gate.succeed()
                replica_payload = replica_runtime.heap.latest(out.obj_id).value
                if replica_payload != primary_payload:
                    rbv_detections[0] += 1
                metrics.validation_latency.add(env.now - completed_at)
                metrics.validated += 1

        return [env.process(worker(i)) for i in range(config.app_threads)]

    driver_proc = env.process(driver())
    replica_procs = []
    if variant == "rbv":
        replica_procs = make_replica_workers()

    def finish_replication():
        yield driver_proc
        for _ in replica_procs:
            repl_store.put(_SENTINEL)

    processes = [driver_proc]
    if variant == "rbv":
        processes.extend(replica_procs)
        env.process(finish_replication())

    def coordinator():
        yield env.all_of(processes)
        deadline[0] = env.now * (1 + config.drain_grace_fraction)
        for _ in validators:
            log_store.put(_SENTINEL)
        if validators:
            yield env.all_of(validators)

    env.run(until=env.process(coordinator()))
    if orthrus:
        metrics.detections = runtime.detections
    result.rbv_detections = rbv_detections[0]
    result.responses = [job.result]
    result.digest = job.state_digest() if not result.crashed else None
    return result
