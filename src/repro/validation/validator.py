"""The validator: out-of-order re-execution of closure logs (§3.3).

A closure log is self-contained — inputs pinned to exact versions, recorded
syscall results, a reference to the closure code — so the validator can
re-execute it at any later time, on any core other than the one that ran
the original, with no synchronization against the application.  Stores land
in a private heap; the observable effect (output versions, deletes, return
value) is compared against the log, and any divergence is a detected SDC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.clock import Clock
from repro.closures.context import ExecutionContext
from repro.closures.log import ClosureLog
from repro.detection import DetectionEvent
from repro.errors import ConfigurationError
from repro.machine.core import Core
from repro.memory.heap import VersionedHeap
from repro.memory.reclaim import ReclamationManager
from repro.obs.observability import NULL_OBS
from repro.obs.profiling import active as profiling_active
from repro.validation.comparator import (
    ComparisonResult,
    canonicalize_ptrs,
    compare_execution,
)


@dataclass(slots=True)
class ValidationOutcome:
    """Result of validating one closure log."""

    log: ClosureLog
    passed: bool
    detail: str
    #: cycles the re-execution consumed (charged to the validation core)
    val_cycles: int
    #: validation latency: log completion to validation completion
    latency: float

    @property
    def detected_sdc(self) -> bool:
        return not self.passed


@dataclass(slots=True)
class Reexecution:
    """One re-execution of a closure log, compared against its APP record.

    Shared by the validator, the arbitration referee, quarantine probes
    and the repairer — everything that replays a log on some core and asks
    "does this execution agree with what the application recorded?".
    """

    result: ComparisonResult
    #: cycles the re-execution consumed on its core
    val_cycles: int
    #: the execution context (its private heap holds the re-executed
    #: writes/deletes — the repairer installs corrected versions from it)
    context: ExecutionContext
    #: set when the re-execution raised (the APP run did not)
    error: str | None = None

    @property
    def matches(self) -> bool:
        return self.result.matches


def reexecute(
    heap: VersionedHeap,
    log: ClosureLog,
    core: Core,
    private_seed: dict[int, object] | None = None,
) -> Reexecution:
    """Re-execute ``log`` on ``core`` in VAL mode and compare (§3.3).

    ``private_seed`` pre-loads the context's private heap with object
    values that should shadow the pinned input versions — the repairer
    uses it to replay a log against already-corrected upstream state
    without recording the seeds as outputs.
    """
    if core.core_id == log.core_id:
        raise ConfigurationError(
            f"re-execution of {log.closure_name} scheduled on its own APP "
            f"core {core.core_id}; a faulty unit would corrupt both runs"
        )
    ctx = ExecutionContext(
        ExecutionContext.VAL,
        core=core,
        heap=heap,
        log=log,
        verify_checksums=False,
    )
    if private_seed:
        for obj_id, value in private_seed.items():
            ctx.private.seed(obj_id, value)
    failure: str | None = None
    val_retval = None
    try:
        with ctx:
            raw = log.func(*log.args, **log.kwargs)
            val_retval = ctx.canonicalize(raw)
    except Exception as exc:  # divergence: the APP run did not raise
        failure = f"re-execution raised {type(exc).__name__}: {exc}"
    val_cycles = ctx.trace.cycles if ctx.trace is not None else 0

    if failure is not None:
        return Reexecution(
            result=ComparisonResult.mismatch(failure),
            val_cycles=val_cycles,
            context=ctx,
            error=failure,
        )

    app_positions = {oid: k for k, oid in enumerate(log.allocated)}

    def canon_app(obj_id: int):
        position = app_positions.get(obj_id)
        return ("ptr:new", position) if position is not None else ("ptr", obj_id)

    # Outputs are (target, value) pairs: a store of the right value to the
    # *wrong object* (e.g. a mis-hashed bucket, Listing 2) must diverge
    # even though the stored bytes match.
    app_outputs = []
    for vid in log.output_versions:
        version = heap.version(vid)
        app_outputs.append(
            (
                canon_app(version.obj_id),
                canonicalize_ptrs(version.value, canon_app),
            )
        )
    val_outputs = [
        (ctx.canon_obj(obj_id), canonicalize_ptrs(value, ctx.canon_obj))
        for obj_id, value in ctx.private.writes
    ]
    val_deletes = [ctx.canon_obj(oid) for oid in ctx.private.deleted]
    result = compare_execution(
        app_outputs=app_outputs,
        val_outputs=val_outputs,
        app_retval=log.retval,
        val_retval=val_retval,
        app_deletes=log.deletes,
        val_deletes=val_deletes,
        compare=log.compare,
    )
    return Reexecution(result=result, val_cycles=val_cycles, context=ctx)


class Validator:
    """Re-executes closure logs and reports divergences."""

    def __init__(
        self,
        heap: VersionedHeap,
        clock: Clock,
        detector: Callable[[DetectionEvent], None] | None = None,
        reclaimer: ReclamationManager | None = None,
        obs=None,
    ):
        self._heap = heap
        self._clock = clock
        self._detector = detector
        self._reclaimer = reclaimer
        self._obs = obs if obs is not None else NULL_OBS
        self.validated_count = 0
        self.mismatch_count = 0
        #: latency of the most recent validation — the cheap point-in-time
        #: lag signal the time-series recorder samples between histogram
        #: windows (a starved validator shows up here immediately).
        self.last_latency = 0.0
        if self._obs.enabled:
            self._obs.registry.gauge(
                "orthrus_validation_lag_seconds",
                help="latency of the most recent validation (completion to verdict)",
            ).set_function(lambda: self.last_latency)

    def validate(self, log: ClosureLog, core: Core) -> ValidationOutcome:
        """Re-execute ``log`` on ``core`` and compare results."""
        prof = profiling_active()
        if prof.enabled:
            with prof.scope("validate.compare"):
                rerun = reexecute(self._heap, log, core)
        else:
            rerun = reexecute(self._heap, log, core)
        result = rerun.result
        val_cycles = rerun.val_cycles

        now = self._clock.now()
        log.validated_time = now
        self.validated_count += 1
        if not result.matches:
            self.mismatch_count += 1
            if self._detector is not None:
                self._detector(
                    DetectionEvent(
                        kind="mismatch",
                        closure=log.closure_name,
                        seq=log.seq,
                        time=now,
                        detail=result.detail,
                        app_core=log.core_id,
                        val_core=core.core_id,
                    )
                )
        if self._reclaimer is not None:
            self._reclaimer.closure_finished(log.seq)
        latency = now - log.end_time
        self.last_latency = latency
        obs = self._obs
        if obs.enabled:
            labels = {"closure": log.closure_name, "caller": log.caller}
            registry = obs.registry
            registry.counter(
                "orthrus_validations_total", labels,
                help="closure logs re-executed by the validator",
            ).inc()
            registry.counter(
                "orthrus_validation_cycles_total", labels,
                help="cycles spent re-executing closures",
            ).inc(val_cycles)
            if not result.matches:
                registry.counter(
                    "orthrus_validation_mismatches_total", labels,
                    help="validations that diverged from the APP run",
                ).inc()
            registry.histogram(
                "orthrus_validation_latency_seconds", labels,
                help="closure completion to validation completion",
            ).record(latency)
            obs.tracer.emit(
                "validator.validate",
                ts=now,
                closure=log.closure_name,
                caller=log.caller,
                seq=log.seq,
                core=core.core_id,
                passed=result.matches,
                latency=latency,
                cycles=val_cycles,
            )
        return ValidationOutcome(
            log=log,
            passed=result.matches,
            detail=result.detail,
            val_cycles=val_cycles,
            latency=latency,
        )

    def drop(self, log: ClosureLog, reason: str) -> None:
        """A bounded queue or watchdog shed ``log`` unvalidated.

        Unlike :meth:`skip` (a sampler *decision*), a drop is overload
        shedding — accounted by reason so the conservation invariant stays
        checkable.  Closes the log's version window either way.
        """
        obs = self._obs
        if obs.enabled:
            obs.registry.counter(
                "orthrus_validation_drops_total",
                {"closure": log.closure_name, "reason": reason},
                help="logs dropped unvalidated by the fault-tolerance layer",
            ).inc()
            obs.tracer.emit(
                "validator.drop",
                ts=self._clock.now(),
                closure=log.closure_name,
                caller=log.caller,
                seq=log.seq,
                reason=reason,
            )
        if self._reclaimer is not None:
            self._reclaimer.closure_finished(log.seq)

    def skip(self, log: ClosureLog) -> None:
        """Drop a log unvalidated (sampler decision); closes its window."""
        obs = self._obs
        if obs.enabled:
            obs.registry.counter(
                "orthrus_validation_skips_total",
                {"closure": log.closure_name, "caller": log.caller},
                help="closure logs dropped unvalidated",
            ).inc()
            obs.tracer.emit(
                "validator.skip",
                ts=self._clock.now(),
                closure=log.closure_name,
                caller=log.caller,
                seq=log.seq,
            )
        if self._reclaimer is not None:
            self._reclaimer.closure_finished(log.seq)
