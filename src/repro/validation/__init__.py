"""Out-of-order validation: queues, re-execution, result comparison."""

from repro.validation.comparator import ComparisonResult, compare_execution, values_equal
from repro.validation.queues import (
    OVERFLOW_BLOCK,
    OVERFLOW_DROP_OLDEST,
    OVERFLOW_POLICIES,
    OVERFLOW_REJECT,
    LogQueue,
    PushOutcome,
    QueueSet,
)
from repro.validation.validator import ValidationOutcome, Validator
from repro.validation.watchdog import (
    Dispatch,
    ValidationLedger,
    ValidationWatchdog,
    WatchdogConfig,
)

__all__ = [
    "ComparisonResult",
    "Dispatch",
    "LogQueue",
    "OVERFLOW_BLOCK",
    "OVERFLOW_DROP_OLDEST",
    "OVERFLOW_POLICIES",
    "OVERFLOW_REJECT",
    "PushOutcome",
    "QueueSet",
    "ValidationLedger",
    "ValidationOutcome",
    "ValidationWatchdog",
    "Validator",
    "WatchdogConfig",
    "compare_execution",
    "values_equal",
]
