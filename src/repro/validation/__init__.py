"""Out-of-order validation: queues, re-execution, result comparison."""

from repro.validation.comparator import ComparisonResult, compare_execution, values_equal
from repro.validation.queues import LogQueue, QueueSet
from repro.validation.validator import ValidationOutcome, Validator

__all__ = [
    "ComparisonResult",
    "LogQueue",
    "QueueSet",
    "ValidationOutcome",
    "Validator",
    "compare_execution",
    "values_equal",
]
