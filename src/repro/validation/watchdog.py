"""Validation-plane watchdog: deadlines, re-dispatch, offender tracking.

Orthrus's detection guarantee quietly assumes the validation plane itself
never fails.  It does: a validation core can crash mid-re-execution, hang
on a stuck interconnect, run an order of magnitude slow, or finish the
work and lose the verdict.  Any of those *strands* the dispatched log —
nobody validates it, nobody closes its version window, and detection for
that closure silently never happens.

The watchdog closes the loop.  Every dispatch gets a virtual-time
deadline; a dispatch that neither completes nor cancels by its deadline is
*expired* — the log is taken back and re-dispatched to a healthy core with
capped exponential backoff, up to a retry budget.  Cores that repeatedly
eat deadlines are reported to an offender hook (wired to the
:class:`~repro.response.quarantine.QuarantineManager`, the same machinery
that handles mercurial data-path cores).

The :class:`ValidationLedger` is the conservation check that makes
"nothing is silently stranded" a testable invariant: every enqueued log
must reach exactly one terminal state — validated, skipped, dropped with a
reason, or degraded to a checksum fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.obs.observability import NULL_OBS

#: ledger terminal states
STATE_VALIDATED = "validated"
STATE_SKIPPED = "skipped"
STATE_DROPPED = "dropped"
STATE_FALLBACK = "fallback"

TERMINAL_STATES = (STATE_VALIDATED, STATE_SKIPPED, STATE_DROPPED, STATE_FALLBACK)


@dataclass(slots=True)
class WatchdogConfig:
    """Deadline and retry policy for dispatched validations."""

    #: virtual seconds a dispatched log may stay in flight
    deadline: float = 500e-6
    #: re-dispatch attempts per log after the first (0 = no retries)
    max_retries: int = 3
    #: backoff before the first re-dispatch
    backoff_base: float = 20e-6
    #: exponential growth factor per retry
    backoff_factor: float = 2.0
    #: backoff ceiling
    backoff_cap: float = 200e-6
    #: deadline timeouts on one core before it is reported an offender
    offender_threshold: int = 2

    def violations(self) -> list[str]:
        found = []
        if self.deadline <= 0:
            found.append("watchdog deadline must be positive")
        if self.max_retries < 0:
            found.append("watchdog retry budget must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            found.append("watchdog backoff must satisfy 0 <= base <= cap")
        if self.offender_threshold < 1:
            found.append("offender threshold must be >= 1")
        return found

    def validate(self) -> None:
        for message in self.violations():
            raise ConfigurationError(message)


@dataclass(slots=True)
class Dispatch:
    """One in-flight (log, core) validation attempt."""

    log: ClosureLog
    core_id: int
    dispatched_at: float
    deadline_at: float
    #: 1 for the first dispatch, +1 per re-dispatch
    attempt: int


class ValidationWatchdog:
    """Tracks in-flight validations and expires the ones that stall."""

    def __init__(
        self,
        config: WatchdogConfig | None = None,
        obs=None,
        on_offender: Callable[[int, float], None] | None = None,
    ):
        self.config = config if config is not None else WatchdogConfig()
        self.config.validate()
        self._obs = obs if obs is not None else NULL_OBS
        self._on_offender = on_offender
        self._inflight: dict[int, Dispatch] = {}
        self._attempts: dict[int, int] = {}
        self.timeouts_by_core: dict[int, int] = {}
        self.timeouts_total = 0
        self.dispatches_total = 0
        self.redispatches_total = 0
        #: completions that arrived after their dispatch had already been
        #: expired and handed to another core — the result is discarded
        self.duplicates_total = 0
        #: logs whose retry budget ran out (handed to the fallback path)
        self.exhausted_total = 0
        self._offenders_reported: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    def inflight_dispatches(self) -> list[Dispatch]:
        return list(self._inflight.values())

    def dispatched(self, log: ClosureLog, core_id: int, now: float) -> Dispatch:
        """Register a dispatch; the log must not already be in flight."""
        if log.seq in self._inflight:
            raise ConfigurationError(
                f"seq={log.seq} dispatched while already in flight"
            )
        attempt = self._attempts.get(log.seq, 0) + 1
        self._attempts[log.seq] = attempt
        dispatch = Dispatch(
            log=log,
            core_id=core_id,
            dispatched_at=now,
            deadline_at=now + self.config.deadline,
            attempt=attempt,
        )
        self._inflight[log.seq] = dispatch
        self.dispatches_total += 1
        if attempt > 1:
            self.redispatches_total += 1
            if self._obs.enabled:
                self._obs.registry.counter(
                    "orthrus_watchdog_redispatches_total",
                    help="validations re-dispatched after a deadline timeout",
                ).inc()
        return dispatch

    def completed(self, seq: int, now: float) -> bool:
        """A validator finished ``seq``.  Returns False when the dispatch
        had already expired (the verdict belongs to a superseded attempt
        and must be discarded — another core owns the log now)."""
        if self._inflight.pop(seq, None) is None:
            self.duplicates_total += 1
            if self._obs.enabled:
                self._obs.registry.counter(
                    "orthrus_watchdog_duplicates_total",
                    help="late verdicts discarded after re-dispatch",
                ).inc()
            return False
        self._attempts.pop(seq, None)
        return True

    def expired(self, now: float) -> list[Dispatch]:
        """Pop every dispatch past its deadline; account per-core timeouts
        and report repeat offenders."""
        late = [d for d in self._inflight.values() if now >= d.deadline_at]
        for dispatch in late:
            del self._inflight[dispatch.log.seq]
            self.timeouts_total += 1
            core_id = dispatch.core_id
            count = self.timeouts_by_core.get(core_id, 0) + 1
            self.timeouts_by_core[core_id] = count
            if self._obs.enabled:
                self._obs.registry.counter(
                    "orthrus_watchdog_timeouts_total",
                    {"core": str(core_id)},
                    help="dispatched validations that missed their deadline",
                ).inc()
                self._obs.tracer.emit(
                    "watchdog.timeout",
                    ts=now,
                    seq=dispatch.log.seq,
                    closure=dispatch.log.closure_name,
                    core=core_id,
                    attempt=dispatch.attempt,
                )
            if (
                count >= self.config.offender_threshold
                and core_id not in self._offenders_reported
            ):
                self._offenders_reported.add(core_id)
                if self._obs.enabled:
                    self._obs.tracer.emit(
                        "watchdog.offender",
                        ts=now,
                        core=core_id,
                        timeouts=count,
                    )
                if self._on_offender is not None:
                    self._on_offender(core_id, now)
        return late

    def plan_redispatch(self, dispatch: Dispatch, now: float) -> float | None:
        """Backoff delay before re-dispatching an expired log, or None when
        the retry budget is exhausted (caller falls back / drops)."""
        if dispatch.attempt > self.config.max_retries:
            self.exhausted_total += 1
            self._attempts.pop(dispatch.log.seq, None)
            return None
        backoff = self.config.backoff_base * (
            self.config.backoff_factor ** (dispatch.attempt - 1)
        )
        return min(backoff, self.config.backoff_cap)

    def abandon(self, now: float) -> list[Dispatch]:
        """Take back every in-flight dispatch (end-of-run sweep)."""
        stranded = list(self._inflight.values())
        self._inflight.clear()
        self._attempts.clear()
        return stranded


class ValidationLedger:
    """Exactly-one-terminal-state accounting for every enqueued log.

    The conservation invariant::

        logs_in == validated + skipped + dropped + fallback

    A log that reaches no terminal state is *silently stranded* — exactly
    the failure mode the watchdog exists to prevent — and a log that
    reaches two would mean a duplicated verdict (a re-dispatched log whose
    original validator also completed).
    """

    def __init__(self):
        self._terminal: dict[int, str] = {}
        self._seen: set[int] = set()
        self.counts: dict[str, int] = {state: 0 for state in TERMINAL_STATES}
        self.drop_reasons: dict[str, int] = {}

    @property
    def enqueued(self) -> int:
        return len(self._seen)

    @property
    def accounted(self) -> int:
        return len(self._terminal)

    @property
    def outstanding(self) -> int:
        return len(self._seen) - len(self._terminal)

    @property
    def conserved(self) -> bool:
        return self.outstanding == 0

    def enqueue(self, seq: int) -> None:
        """A log entered the validation plane (idempotent: re-dispatches of
        the same seq do not double-count)."""
        self._seen.add(seq)

    def is_terminal(self, seq: int) -> bool:
        return seq in self._terminal

    def state(self, seq: int) -> str | None:
        return self._terminal.get(seq)

    def _settle(self, seq: int, state: str) -> None:
        if seq not in self._seen:
            self._seen.add(seq)
        if seq in self._terminal:
            raise ConfigurationError(
                f"seq={seq} already settled as {self._terminal[seq]!r}; "
                f"refusing second terminal state {state!r}"
            )
        self._terminal[seq] = state
        self.counts[state] += 1

    def validated(self, seq: int) -> None:
        self._settle(seq, STATE_VALIDATED)

    def skipped(self, seq: int) -> None:
        self._settle(seq, STATE_SKIPPED)

    def dropped(self, seq: int, reason: str) -> None:
        self._settle(seq, STATE_DROPPED)
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    def fallback(self, seq: int) -> None:
        self._settle(seq, STATE_FALLBACK)

    def summary(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "validated": self.counts[STATE_VALIDATED],
            "skipped": self.counts[STATE_SKIPPED],
            "dropped": self.counts[STATE_DROPPED],
            "fallback": self.counts[STATE_FALLBACK],
            "drop_reasons": dict(sorted(self.drop_reasons.items())),
            "outstanding": self.outstanding,
        }
