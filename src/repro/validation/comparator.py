"""Result comparison between the original and the re-executed closure (§3.3).

The default comparison is the paper's bitwise memory compare: both values
are canonically serialized (type-tagged, bit-exact for floats) and the byte
strings compared.  Closures may override it with a custom ``compare``
callable — the analogue of overloading ``==`` on the output pointer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.memory.checksum import serialize


def canonicalize_ptrs(value: Any, canon: Callable[[int], Any]) -> Any:
    """Recursively replace embedded Orthrus pointers with canonical ids.

    APP and VAL re-executions allocate the "same" logical objects at
    different raw ids (shared vs shadow), so pointer-valued fields inside
    output payloads must be mapped through each side's allocation-order
    canonicalization before a bitwise comparison is meaningful (§3.3).
    """
    if getattr(value, "__orthrus_ptr__", False):
        return canon(value.obj_id)
    if isinstance(value, tuple):
        return tuple(canonicalize_ptrs(item, canon) for item in value)
    if isinstance(value, list):
        return [canonicalize_ptrs(item, canon) for item in value]
    if isinstance(value, dict):
        return {key: canonicalize_ptrs(item, canon) for key, item in value.items()}
    return value


def values_equal(a: Any, b: Any) -> bool:
    """Bitwise comparison of two payloads.

    Serialization is bit-exact (IEEE-754 doubles compared by their bits, so
    ``nan == nan`` here and ``0.0 != -0.0``), matching a memcmp over the
    two memory regions.  Falls back to ``==`` for payloads the canonical
    serializer does not cover.
    """
    try:
        return serialize(a) == serialize(b)
    except TypeError:
        return bool(a == b)


@dataclass(frozen=True, slots=True)
class ComparisonResult:
    """Outcome of comparing one APP execution against its VAL re-execution."""

    matches: bool
    detail: str = ""

    @staticmethod
    def ok() -> "ComparisonResult":
        return ComparisonResult(True)

    @staticmethod
    def mismatch(detail: str) -> "ComparisonResult":
        return ComparisonResult(False, detail)


def compare_execution(
    app_outputs: list[Any],
    val_outputs: list[Any],
    app_retval: Any,
    val_retval: Any,
    app_deletes: list[Any],
    val_deletes: list[Any],
    compare: Callable[[Any, Any], bool] | None = None,
) -> ComparisonResult:
    """Compare the full observable effect of a closure execution.

    Outputs are the version payloads created by stores/allocations, in
    creation order (§3.1: the output is the set of new data versions plus
    the return value); a count difference means the two executions took
    different paths.  ``compare`` overrides per-value output comparison.
    """
    equal = compare if compare is not None else values_equal
    if len(app_outputs) != len(val_outputs):
        return ComparisonResult.mismatch(
            f"output count diverged: app={len(app_outputs)} val={len(val_outputs)}"
        )
    for index, (app_value, val_value) in enumerate(zip(app_outputs, val_outputs)):
        if not equal(app_value, val_value):
            return ComparisonResult.mismatch(f"output #{index} diverged")
    if app_deletes != val_deletes:
        return ComparisonResult.mismatch("delete sets diverged")
    if not values_equal(app_retval, val_retval):
        return ComparisonResult.mismatch("return value diverged")
    return ComparisonResult.ok()
