"""Per-core validation log queues with work stealing (§3.3, §3.5).

Each validation core owns a FIFO of closure logs.  The scheduler pushes a
log onto the queue of a core different from the one that ran the closure.
Validation threads drain their own queues first and *steal* from the
longest other queue when idle — the paper's mitigation for the tail-latency
problem of out-of-order validation (a stranded log both delays detection
and wastes the validation of its successors).

Queues are optionally *bounded*: an unbounded validation queue is a memory
leak wearing a trench coat — when validation demand exceeds capacity, the
backlog grows without limit and the lag signal the sampler feeds on becomes
meaningless.  A bounded queue instead makes overload explicit through one
of three overflow policies:

* ``reject`` — the incoming log is refused (counted, closed, dropped);
* ``drop-oldest`` — the queue evicts its head to admit the newcomer
  (bounds staleness: under overload the freshest work is the most likely
  to still be *timely* to validate);
* ``block-producer`` — admission is refused with a *would-block* outcome
  and the producer is expected to retry (backpressure; the DES drivers
  model the producer stall, the library runtime validates inline).

Every drop is accounted per queue and per reason so the conservation
invariant — every log enqueued is eventually validated, skipped, dropped
with a counter, or checksum-fallback'd — is checkable from the outside.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.obs.observability import NULL_OBS

#: incoming log refused when the queue is full
OVERFLOW_REJECT = "reject"
#: head (oldest) log evicted to admit the newcomer
OVERFLOW_DROP_OLDEST = "drop-oldest"
#: admission refused with ``would_block``; producer retries (backpressure)
OVERFLOW_BLOCK = "block-producer"

OVERFLOW_POLICIES = (OVERFLOW_REJECT, OVERFLOW_DROP_OLDEST, OVERFLOW_BLOCK)

#: drop reasons (the ``reason`` label of ``orthrus_queue_drops_total``)
DROP_CAPACITY = "capacity"
DROP_EVICTED = "evicted-oldest"
DROP_SHUTDOWN = "shutdown"


@dataclass(slots=True)
class PushOutcome:
    """What happened to one :meth:`LogQueue.push` attempt.

    ``accepted`` and ``dropped`` are independent: a ``drop-oldest``
    eviction *accepts* the incoming log yet still reports the evicted one
    in ``dropped``, so callers have exactly one place to close the dropped
    log's window.
    """

    accepted: bool
    queue: "LogQueue | None" = None
    #: the log that fell out of the queue (the incoming one on reject /
    #: shutdown, the evicted head on drop-oldest); None when nothing dropped
    dropped: ClosureLog | None = None
    reason: str = ""

    @property
    def would_block(self) -> bool:
        """Backpressure signal: nothing was dropped, retry later."""
        return not self.accepted and self.dropped is None and self.reason == ""


_ACCEPTED = PushOutcome(accepted=True)
_WOULD_BLOCK = PushOutcome(accepted=False)


class LogQueue:
    """FIFO of pending closure logs for one validation core."""

    def __init__(
        self,
        queue_id: int,
        capacity: int | None = None,
        policy: str = OVERFLOW_REJECT,
    ):
        if capacity is not None and capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1 (or None)")
        if policy not in OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"unknown overflow policy {policy!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        self.queue_id = queue_id
        self.capacity = capacity
        self.policy = policy
        self.closed = False
        #: drops by reason, for the conservation accounting
        self.drops: dict[str, int] = {}
        self._logs: deque[ClosureLog] = deque()

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._logs) >= self.capacity

    @property
    def dropped_total(self) -> int:
        return sum(self.drops.values())

    def close(self) -> None:
        """Stop admitting logs; pending ones remain poppable."""
        self.closed = True

    def _drop(self, log: ClosureLog, reason: str) -> None:
        self.drops[reason] = self.drops.get(reason, 0) + 1

    def push(self, log: ClosureLog, now: float) -> PushOutcome:
        if self.closed:
            self._drop(log, DROP_SHUTDOWN)
            return PushOutcome(
                accepted=False, queue=self, dropped=log, reason=DROP_SHUTDOWN
            )
        if self.full:
            if self.policy == OVERFLOW_BLOCK:
                return _WOULD_BLOCK
            if self.policy == OVERFLOW_REJECT:
                self._drop(log, DROP_CAPACITY)
                return PushOutcome(
                    accepted=False, queue=self, dropped=log, reason=DROP_CAPACITY
                )
            evicted = self._logs.popleft()
            self._drop(evicted, DROP_EVICTED)
            log.enqueue_time = now
            self._logs.append(log)
            return PushOutcome(
                accepted=True, queue=self, dropped=evicted, reason=DROP_EVICTED
            )
        log.enqueue_time = now
        self._logs.append(log)
        return PushOutcome(accepted=True, queue=self)

    def pop(self) -> ClosureLog | None:
        if not self._logs:
            return None
        return self._logs.popleft()

    def steal(self) -> ClosureLog | None:
        """Steal the *oldest* log (the head).

        Classic work stealing takes the tail for cache locality, but this
        queue's thief is a validation core rescuing a backlogged peer: the
        head log is the one stranding detection latency, and it is also the
        one ``oldest_enqueue_time`` (the sampler's AIMD load signal)
        reports.  Tail-stealing left that head in place, so under
        steal-heavy drains the measured lag never improved even as the
        queue emptied — the sampler saw a permanently-stale signal and
        collapsed its rate for no reason.
        """
        if not self._logs:
            return None
        return self._logs.popleft()

    def __len__(self) -> int:
        return len(self._logs)

    @property
    def oldest_enqueue_time(self) -> float | None:
        return self._logs[0].enqueue_time if self._logs else None


class QueueSet:
    """All validation queues plus placement, bounding, and stealing policy."""

    def __init__(
        self,
        n_queues: int,
        capacity: int | None = None,
        policy: str = OVERFLOW_REJECT,
        obs=None,
    ):
        if n_queues < 1:
            raise ConfigurationError("need at least one validation queue")
        self.queues = [LogQueue(i, capacity=capacity, policy=policy) for i in range(n_queues)]
        self.capacity = capacity
        self.policy = policy
        self.accepted_total = 0
        self._next = 0
        self._obs = obs if obs is not None else NULL_OBS
        if self._obs.enabled:
            # Callback gauges: depth is sampled at export time, so the
            # push/pop hot path pays nothing for them.
            for queue in self.queues:
                self._obs.registry.gauge(
                    "orthrus_queue_depth",
                    {"queue": str(queue.queue_id)},
                    help="pending closure logs per validation queue",
                ).set_function(lambda q=queue: float(len(q)))

    # ------------------------------------------------------------------
    def _pick(self) -> LogQueue:
        """Round-robin placement, skipping full queues while any open queue
        has room — the policy only fires under *global* overload."""
        n = len(self.queues)
        start = self._next
        self._next = (self._next + 1) % n
        primary = self.queues[start]
        if not primary.full or primary.closed:
            return primary
        for offset in range(1, n):
            candidate = self.queues[(start + offset) % n]
            if not candidate.full and not candidate.closed:
                return candidate
        return primary

    def push(self, log: ClosureLog, now: float, queue_id: int | None = None) -> PushOutcome:
        """Place a log round-robin across queues (each queue maps to a
        validation core different from any application core)."""
        queue = self.queues[queue_id] if queue_id is not None else self._pick()
        outcome = queue.push(log, now)
        obs = self._obs
        if outcome.accepted:
            self.accepted_total += 1
            if obs.enabled:
                obs.registry.counter(
                    "orthrus_queue_pushes_total",
                    {"queue": str(queue.queue_id)},
                    help="closure logs enqueued per validation queue",
                ).inc()
                obs.tracer.emit(
                    "queue.push",
                    ts=now,
                    queue=queue.queue_id,
                    seq=log.seq,
                    closure=log.closure_name,
                    depth=len(queue),
                )
        if outcome.dropped is not None and obs.enabled:
            obs.registry.counter(
                "orthrus_queue_drops_total",
                {"queue": str(queue.queue_id), "reason": outcome.reason},
                help="closure logs dropped by bounded validation queues",
            ).inc()
            obs.tracer.emit(
                "queue.drop",
                ts=now,
                queue=queue.queue_id,
                seq=outcome.dropped.seq,
                closure=outcome.dropped.closure_name,
                reason=outcome.reason,
            )
        return outcome

    def pop(self, queue_id: int, allow_steal: bool = True) -> ClosureLog | None:
        """Pop from the owner's queue, stealing from the longest other
        queue when the owner's is empty."""
        log = self.queues[queue_id].pop()
        if log is not None or not allow_steal:
            return log
        victim = max(
            (q for q in self.queues if q.queue_id != queue_id),
            key=len,
            default=None,
        )
        if victim is None or len(victim) == 0:
            return None
        stolen = victim.steal()
        if stolen is not None and self._obs.enabled:
            self._obs.registry.counter(
                "orthrus_queue_steals_total",
                {"thief": str(queue_id), "victim": str(victim.queue_id)},
                help="logs stolen between validation queues",
            ).inc()
        return stolen

    def shutdown(self) -> None:
        """Close every queue; later pushes are accounted as shutdown drops."""
        for queue in self.queues:
            queue.close()

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self.queues)

    @property
    def capacity_total(self) -> int | None:
        if self.capacity is None:
            return None
        return self.capacity * len(self.queues)

    @property
    def utilization(self) -> float:
        """Fill fraction across all queues; 0.0 when unbounded."""
        total = self.capacity_total
        if not total:
            return 0.0
        return self.pending / total

    @property
    def drops(self) -> dict[str, int]:
        """Aggregate drop counts by reason across all queues."""
        merged: dict[str, int] = {}
        for queue in self.queues:
            for reason, count in queue.drops.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    @property
    def dropped_total(self) -> int:
        return sum(q.dropped_total for q in self.queues)

    def queue_delay(self, now: float) -> float:
        """Age of the oldest pending log — the sampler's load signal (§3.5)."""
        oldest = [
            q.oldest_enqueue_time
            for q in self.queues
            if q.oldest_enqueue_time is not None
        ]
        if not oldest:
            return 0.0
        return now - min(oldest)

    def drain(self):
        """Pop every pending log (oldest-first across queues)."""
        logs = []
        for queue in self.queues:
            while True:
                log = queue.pop()
                if log is None:
                    break
                logs.append(log)
        logs.sort(key=lambda log: log.enqueue_time)
        return logs

    def drain_queue(self, queue_id: int) -> list[ClosureLog]:
        """Pop everything pending on one queue (quarantined-core handoff)."""
        logs = []
        queue = self.queues[queue_id]
        while True:
            log = queue.pop()
            if log is None:
                return logs
            logs.append(log)
