"""Per-core validation log queues with work stealing (§3.3, §3.5).

Each validation core owns a FIFO of closure logs.  The scheduler pushes a
log onto the queue of a core different from the one that ran the closure.
Validation threads drain their own queues first and *steal* from the
longest other queue when idle — the paper's mitigation for the tail-latency
problem of out-of-order validation (a stranded log both delays detection
and wastes the validation of its successors).
"""

from __future__ import annotations

from collections import deque

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.obs.observability import NULL_OBS


class LogQueue:
    """FIFO of pending closure logs for one validation core."""

    def __init__(self, queue_id: int):
        self.queue_id = queue_id
        self._logs: deque[ClosureLog] = deque()

    def push(self, log: ClosureLog, now: float) -> None:
        log.enqueue_time = now
        self._logs.append(log)

    def pop(self) -> ClosureLog | None:
        if not self._logs:
            return None
        return self._logs.popleft()

    def steal(self) -> ClosureLog | None:
        """Steal from the tail (the newest log), classic work-stealing order."""
        if not self._logs:
            return None
        return self._logs.pop()

    def __len__(self) -> int:
        return len(self._logs)

    @property
    def oldest_enqueue_time(self) -> float | None:
        return self._logs[0].enqueue_time if self._logs else None


class QueueSet:
    """All validation queues plus placement and stealing policy."""

    def __init__(self, n_queues: int, obs=None):
        if n_queues < 1:
            raise ConfigurationError("need at least one validation queue")
        self.queues = [LogQueue(i) for i in range(n_queues)]
        self._next = 0
        self._obs = obs if obs is not None else NULL_OBS
        if self._obs.enabled:
            # Callback gauges: depth is sampled at export time, so the
            # push/pop hot path pays nothing for them.
            for queue in self.queues:
                self._obs.registry.gauge(
                    "orthrus_queue_depth",
                    {"queue": str(queue.queue_id)},
                    help="pending closure logs per validation queue",
                ).set_function(lambda q=queue: float(len(q)))

    def push(self, log: ClosureLog, now: float) -> LogQueue:
        """Place a log round-robin across queues (each queue maps to a
        validation core different from any application core)."""
        queue = self.queues[self._next]
        self._next = (self._next + 1) % len(self.queues)
        queue.push(log, now)
        obs = self._obs
        if obs.enabled:
            obs.registry.counter(
                "orthrus_queue_pushes_total",
                {"queue": str(queue.queue_id)},
                help="closure logs enqueued per validation queue",
            ).inc()
            obs.tracer.emit(
                "queue.push",
                ts=now,
                queue=queue.queue_id,
                seq=log.seq,
                closure=log.closure_name,
                depth=len(queue),
            )
        return queue

    def pop(self, queue_id: int, allow_steal: bool = True) -> ClosureLog | None:
        """Pop from the owner's queue, stealing from the longest other
        queue when the owner's is empty."""
        log = self.queues[queue_id].pop()
        if log is not None or not allow_steal:
            return log
        victim = max(
            (q for q in self.queues if q.queue_id != queue_id),
            key=len,
            default=None,
        )
        if victim is None or len(victim) == 0:
            return None
        return victim.steal()

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self.queues)

    def queue_delay(self, now: float) -> float:
        """Age of the oldest pending log — the sampler's load signal (§3.5)."""
        oldest = [
            q.oldest_enqueue_time
            for q in self.queues
            if q.oldest_enqueue_time is not None
        ]
        if not oldest:
            return 0.0
        return now - min(oldest)

    def drain(self):
        """Pop every pending log (oldest-first across queues)."""
        logs = []
        for queue in self.queues:
            while True:
                log = queue.pop()
                if log is None:
                    break
                logs.append(log)
        logs.sort(key=lambda log: log.enqueue_time)
        return logs
