"""Coverage-exposure accounting: which keys were unprotected, and why.

Every decision that leaves a closure log unvalidated — the sampler
skipping it, a bounded queue dropping it, the degradation ladder
shedding it, the watchdog re-dispatching it after a stall — opens an
*exposure window*: a span of virtual time during which a corruption of
that key would have gone undetected.  Fleet SDC experience (Dixit et
al.) says coverage must be a *measured* artifact, not an assumption;
the :class:`ExposureLedger` is that measurement.

The ledger folds each decision into per-subject/per-reason totals
(count of logs, summed exposure seconds) and mirrors every record into
the ``orthrus_exposure_seconds`` histogram family when a registry is
attached, so ``obs-summary`` and the fleet rollup can answer "which
keys were unprotected, for how long, and why".  ``merge`` is an
associative, commutative fold — fleet workers combine ledgers in any
grouping and land on identical totals.

Window semantics (see DESIGN §14): a skip exposes the key until the
next validation opportunity, bounded by the sampler's staleness
threshold; a drop additionally charges the queue time already spent;
checksum-only degradation covers bit-flips but not mercurial compute
errors, so it still counts as (partial) exposure.
"""

from __future__ import annotations

__all__ = [
    "EXPOSURE_METRIC",
    "ExposureLedger",
    "render_exposure",
]

EXPOSURE_METRIC = "orthrus_exposure_seconds"


class ExposureLedger:
    """Per-subject/per-reason exposure-window accounting.

    ``subject_label`` names the aggregation axis: ``closure`` for one
    pipeline (per-closure exposure), ``shard`` for the fleet model.
    ``extra_labels`` (e.g. ``{"host": "h000"}``) ride along on the
    mirrored histogram series so fleet merges stay per-host
    attributable.
    """

    __slots__ = ("_registry", "_subject_label", "_extra", "totals")

    def __init__(self, registry=None, subject_label="closure", extra_labels=None):
        self._registry = registry
        self._subject_label = subject_label
        self._extra = dict(extra_labels or {})
        #: ``(subject, reason) -> [logs, seconds]``
        self.totals: dict[tuple, list] = {}

    def record(self, subject, reason, seconds, count=1) -> None:
        """Fold ``count`` logs of ``subject`` exposed for ``seconds`` each."""
        if count <= 0 or seconds < 0:
            return
        cell = self.totals.setdefault((subject, reason), [0, 0.0])
        cell[0] += count
        cell[1] += seconds * count
        if self._registry is not None:
            labels = {self._subject_label: subject, "reason": reason}
            labels.update(self._extra)
            self._registry.histogram(
                EXPOSURE_METRIC,
                labels,
                help="unvalidated exposure windows by subject and reason",
            ).record_many(seconds, count)

    # -- rollups --------------------------------------------------------
    @property
    def logs(self) -> int:
        return sum(cell[0] for cell in self.totals.values())

    @property
    def seconds(self) -> float:
        return sum(cell[1] for cell in self.totals.values())

    def by_reason(self) -> dict:
        out: dict[str, list] = {}
        for (_, reason), (logs, seconds) in self.totals.items():
            cell = out.setdefault(reason, [0, 0.0])
            cell[0] += logs
            cell[1] += seconds
        return {
            reason: {"logs": logs, "seconds": seconds}
            for reason, (logs, seconds) in sorted(out.items())
        }

    def by_subject(self) -> dict:
        out: dict[str, list] = {}
        for (subject, _), (logs, seconds) in self.totals.items():
            cell = out.setdefault(subject, [0, 0.0])
            cell[0] += logs
            cell[1] += seconds
        return {
            subject: {"logs": logs, "seconds": seconds}
            for subject, (logs, seconds) in sorted(out.items())
        }

    def worst(self, n=3) -> list:
        """The ``n`` most-exposed subjects, by summed seconds."""
        ranked = sorted(
            self.by_subject().items(),
            key=lambda item: (-item[1]["seconds"], item[0]),
        )
        return [
            {"subject": subject, **cell} for subject, cell in ranked[:n]
        ]

    def summary(self) -> dict:
        return {
            "logs": self.logs,
            "seconds": self.seconds,
            "by_reason": self.by_reason(),
            "worst": self.worst(),
        }

    # -- serialization + merge ------------------------------------------
    def to_dict(self) -> dict:
        return {
            "subject_label": self._subject_label,
            "entries": [
                {
                    "subject": subject,
                    "reason": reason,
                    "logs": logs,
                    "seconds": seconds,
                }
                for (subject, reason), (logs, seconds) in sorted(
                    self.totals.items()
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExposureLedger":
        ledger = cls(subject_label=payload.get("subject_label", "closure"))
        for entry in payload.get("entries", []):
            cell = ledger.totals.setdefault(
                (entry["subject"], entry["reason"]), [0, 0.0]
            )
            cell[0] += int(entry["logs"])
            cell[1] += float(entry["seconds"])
        return ledger

    @classmethod
    def from_registry(cls, registry, subject_label="closure") -> "ExposureLedger":
        """Reconstruct totals from the mirrored histogram family — used
        by the fleet report after :func:`merge_registries` has already
        folded every shard's series associatively."""
        ledger = cls(subject_label=subject_label)
        for labels, child in registry.series(EXPOSURE_METRIC):
            key = (labels.get(subject_label, ""), labels.get("reason", ""))
            cell = ledger.totals.setdefault(key, [0, 0.0])
            cell[0] += child.count
            cell[1] += child.sum
        return ledger

    def merge(self, other: "ExposureLedger") -> "ExposureLedger":
        """Associative in-place fold; returns self for chaining."""
        for key, (logs, seconds) in other.totals.items():
            cell = self.totals.setdefault(key, [0, 0.0])
            cell[0] += logs
            cell[1] += seconds
        return self


def render_exposure(payload: dict) -> str:
    """Console rendering of an exposure payload (``to_dict`` shape)."""
    ledger = ExposureLedger.from_dict(payload)
    label = payload.get("subject_label", "closure")
    lines = [
        f"  exposure windows: {ledger.logs} log(s), "
        f"{ledger.seconds * 1e3:.3f} ms unprotected"
    ]
    for reason, cell in ledger.by_reason().items():
        lines.append(
            f"    {reason:<16} {cell['logs']:>8} log(s)  "
            f"{cell['seconds'] * 1e3:>10.3f} ms"
        )
    for entry in ledger.worst():
        lines.append(
            f"    worst {label} {entry['subject']}: {entry['logs']} log(s), "
            f"{entry['seconds'] * 1e3:.3f} ms"
        )
    return "\n".join(lines)
