"""Time-series telemetry over the metrics registry (longitudinal obs).

The snapshot exporters answer "what did the whole run add up to?"; this
module answers "how did it *evolve*?" — the paper's timeliness story
(Fig 8's validation-latency distribution, §6's graceful degradation under
core scarcity) is a trajectory, not a point.

A :class:`TimeSeriesRecorder` samples a ``MetricsRegistry`` on a
configurable sim-clock cadence.  Each sampled value lands in a
:class:`TimeSeries` — a *fixed-capacity* ring of aggregation buckets.
When the ring fills, adjacent buckets merge pairwise and the per-bucket
span doubles, so memory stays bounded while the series always covers the
whole run (resolution degrades gracefully, oldest data is never lost).
Every bucket keeps count/sum/min/max/last exactly plus a thinned sample
reservoir for p50/p95 estimates.

Probes turn cumulative registry families into per-interval series values:

* :class:`GaugeProbe` — read a gauge (or a family total) as-is;
* :class:`CounterRateProbe` — Δcounter / Δt per interval;
* :class:`DeltaRatioProbe` — Δmatching / Δtotal per interval (e.g. the
  sampler skip *rate*, not the cumulative skip count);
* :class:`HistogramWindowProbe` — a percentile of only the observations
  recorded since the previous tick (bucket-count diff + interpolation),
  which is what an SLO burn-rate wants — the cumulative p95 forgets
  nothing and therefore never recovers.

The artifact format is ``orthrus-timeseries/1`` (see DESIGN.md §9); it
round-trips through :meth:`TimeSeriesRecorder.to_dict` /
:func:`load_timeline` and is what the CLI ``--timeline-out`` flag writes
and the ``timeline`` subcommand renders.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "SeriesBucket",
    "TimeSeries",
    "TimeSeriesConfig",
    "TimeSeriesRecorder",
    "GaugeProbe",
    "CounterRateProbe",
    "DeltaRatioProbe",
    "HistogramWindowProbe",
    "install_default_probes",
    "install_span_probes",
    "install_canary_probes",
    "write_timeline_json",
    "load_timeline",
    "render_sparkline",
    "DEFAULT_SERIES",
]

#: the series install_default_probes() wires up, in display order
DEFAULT_SERIES = (
    "validation_lag_p95",
    "validation_lag_mean",
    "queue_depth",
    "sampler_skip_rate",
    "checksum_verify_rate",
    "quarantined_cores",
    "reclaim_backlog",
    "degradation_level",
)

_STATS = ("count", "mean", "min", "max", "p50", "p95", "last")


class SeriesBucket:
    """One aggregation bucket: exact count/sum/min/max/last plus a thinned
    reservoir of raw samples for percentile estimates."""

    __slots__ = ("t_start", "t_end", "count", "sum", "min", "max", "last", "samples")

    def __init__(self, t_start: float, t_end: float):
        self.t_start = t_start
        self.t_end = t_end
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self.samples: list[float] = []

    def add(self, t: float, value: float, reservoir: int) -> None:
        self.t_end = max(self.t_end, t)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        if len(self.samples) < reservoir:
            self.samples.append(value)

    def merge(self, other: "SeriesBucket", reservoir: int) -> None:
        """Fold a *later* bucket into this one (compaction)."""
        self.t_end = other.t_end
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.last = other.last
        pooled = self.samples + other.samples
        if len(pooled) > reservoir:
            # Thin evenly instead of truncating so both halves of the
            # merged span stay represented in the percentile reservoir.
            step = len(pooled) / reservoir
            pooled = [pooled[int(i * step)] for i in range(reservoir)]
        self.samples = pooled

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = (len(ordered) - 1) * (p / 100.0)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return float(ordered[low])
        frac = rank - low
        return float(ordered[low] * (1 - frac) + ordered[high] * frac)

    def stat(self, name: str) -> float:
        if name == "count":
            return float(self.count)
        if name == "mean":
            return self.mean
        if name == "min":
            return self.min if self.count else 0.0
        if name == "max":
            return self.max if self.count else 0.0
        if name == "p50":
            return self.percentile(50)
        if name == "p95":
            return self.percentile(95)
        if name == "last":
            return self.last
        raise ValueError(f"unknown bucket stat {name!r}")

    def as_dict(self) -> dict:
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "last": self.last,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SeriesBucket":
        bucket = cls(data["t_start"], data["t_end"])
        bucket.count = data["count"]
        bucket.sum = data["sum"]
        if bucket.count:
            bucket.min = data["min"]
            bucket.max = data["max"]
        bucket.last = data["last"]
        bucket.samples = list(data["samples"])
        return bucket


class TimeSeries:
    """Fixed-capacity, self-compacting series of aggregation buckets.

    ``capacity`` bounds the number of buckets; ``per_bucket`` starts at 1
    raw sample per bucket and doubles on every compaction, so ``append``
    is amortized O(1) and memory never grows past
    ``capacity * (reservoir + O(1))`` floats regardless of run length.
    """

    def __init__(self, name: str, capacity: int = 512, reservoir: int = 16,
                 unit: str = ""):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self.name = name
        self.unit = unit
        self.capacity = capacity
        self.reservoir = reservoir
        self.buckets: list[SeriesBucket] = []
        self._per_bucket = 1
        self.total_samples = 0
        self.compactions = 0

    def append(self, t: float, value: float) -> None:
        self.total_samples += 1
        tail = self.buckets[-1] if self.buckets else None
        if tail is None or tail.count >= self._per_bucket:
            if len(self.buckets) >= self.capacity:
                self._compact()
                # after compaction the tail is half-full; keep filling it
                self.buckets[-1].add(t, value, self.reservoir)
                return
            tail = SeriesBucket(t, t)
            self.buckets.append(tail)
        tail.add(t, value, self.reservoir)

    def merge(self, other: "TimeSeries") -> None:
        """Fold another series into this one (cross-shard fleet rollup).

        Buckets from both series interleave by start time (ties keep
        self-before-other order, so merging shards in a fixed order is
        deterministic); the result then re-compacts down to ``capacity``.
        Count/sum/min/max are preserved exactly — only percentile
        reservoirs thin — so ``summary()`` on the merged series equals
        ``summary()`` on a single series fed both sample streams for the
        exact stats.
        """
        if other.empty:
            return
        merged = sorted(
            self.buckets + [SeriesBucket.from_dict(b.as_dict()) for b in other.buckets],
            key=lambda b: (b.t_start, b.t_end),
        )
        self.buckets = merged
        self.total_samples += other.total_samples
        self._per_bucket = max(self._per_bucket, other._per_bucket)
        while len(self.buckets) > self.capacity:
            self._compact()

    def _compact(self) -> None:
        """Merge adjacent bucket pairs; doubles the per-bucket span."""
        merged: list[SeriesBucket] = []
        for i in range(0, len(self.buckets), 2):
            first = self.buckets[i]
            if i + 1 < len(self.buckets):
                first.merge(self.buckets[i + 1], self.reservoir)
            merged.append(first)
        self.buckets = merged
        self._per_bucket *= 2
        self.compactions += 1

    # -- query surface --------------------------------------------------
    def __len__(self) -> int:
        return len(self.buckets)

    @property
    def empty(self) -> bool:
        return not self.buckets

    def values(self, stat: str = "mean") -> list[tuple[float, float]]:
        """(bucket end time, stat) pairs across the whole series."""
        return [(b.t_end, b.stat(stat)) for b in self.buckets]

    def latest(self, stat: str = "last") -> float:
        if not self.buckets:
            return 0.0
        return self.buckets[-1].stat(stat)

    def window(self, start: float, end: float) -> SeriesBucket:
        """Aggregate every bucket overlapping [start, end] into one.

        Used by the SLO monitor: the returned bucket answers mean/p95/max
        queries over the trailing window.
        """
        pooled = SeriesBucket(start, end)
        for bucket in self.buckets:
            if bucket.t_end < start or bucket.t_start > end:
                continue
            if pooled.count == 0:
                pooled.t_start = bucket.t_start
            pooled.merge(bucket, self.reservoir)
        return pooled

    def summary(self) -> dict[str, float]:
        """Whole-series percentiles/extremes (the bench artifact rows)."""
        whole = self.window(-math.inf, math.inf)
        return {stat: whole.stat(stat) for stat in _STATS}

    # -- artifact -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unit": self.unit,
            "capacity": self.capacity,
            "reservoir": self.reservoir,
            "per_bucket": self._per_bucket,
            "total_samples": self.total_samples,
            "compactions": self.compactions,
            "buckets": [b.as_dict() for b in self.buckets],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeries":
        series = cls(
            data["name"],
            capacity=data["capacity"],
            reservoir=data["reservoir"],
            unit=data.get("unit", ""),
        )
        series._per_bucket = data["per_bucket"]
        series.total_samples = data["total_samples"]
        series.compactions = data.get("compactions", 0)
        series.buckets = [SeriesBucket.from_dict(b) for b in data["buckets"]]
        return series


# ----------------------------------------------------------------------
# probes: cumulative registry families → per-interval scalars
# ----------------------------------------------------------------------
def _sum_matching(registry, name: str, match: dict[str, str] | None) -> float:
    """Sum one family's children whose labels are a superset of ``match``
    (the registry keys children by *full* label sets, so a partial label
    filter needs this helper)."""
    family = registry.get(name)
    if family is None:
        return 0.0
    total = 0.0
    for labels, child in registry.series(name):
        if match and any(labels.get(k) != v for k, v in match.items()):
            continue
        if family.kind == "gauge":
            total += child.read()
        elif family.kind == "histogram":
            total += child.count
        else:
            total += child.value
    return total


class GaugeProbe:
    """Read one or more gauge families (summed) as the sample value."""

    def __init__(self, *names: str, labels: dict[str, str] | None = None):
        self.names = names
        self.labels = labels

    def sample(self, registry, now: float, dt: float) -> float | None:
        return sum(_sum_matching(registry, name, self.labels) for name in self.names)


class CounterRateProbe:
    """Δcounter / Δt over the sampling interval (events per sim-second)."""

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = labels
        self._prev: float | None = None

    def sample(self, registry, now: float, dt: float) -> float | None:
        current = _sum_matching(registry, self.name, self.labels)
        previous, self._prev = self._prev, current
        if previous is None or dt <= 0:
            return None
        return (current - previous) / dt


class DeltaRatioProbe:
    """Δmatching / Δtotal over the interval — e.g. the sampler *skip rate*
    (skips this tick over decisions this tick), in [0, 1]."""

    def __init__(self, name: str, match: dict[str, str]):
        self.name = name
        self.match = match
        self._prev_match: float | None = None
        self._prev_total = 0.0

    def sample(self, registry, now: float, dt: float) -> float | None:
        matching = _sum_matching(registry, self.name, self.match)
        total = _sum_matching(registry, self.name, None)
        prev_match, self._prev_match = self._prev_match, matching
        prev_total, self._prev_total = self._prev_total, total
        if prev_match is None:
            return None
        delta_total = total - prev_total
        if delta_total <= 0:
            return None  # no decisions this interval: nothing to rate
        return (matching - prev_match) / delta_total


class HistogramWindowProbe:
    """A percentile/mean of only the observations since the previous tick.

    Diffs the cumulative bucket counts (summed across the family's label
    sets, optionally restricted to children whose labels are a superset of
    ``match``) and interpolates inside the owning bucket — the streaming
    histogram's estimator applied to the interval's delta.
    """

    def __init__(
        self,
        name: str,
        stat: str = "p95",
        match: dict[str, str] | None = None,
    ):
        if stat not in ("mean", "p50", "p95", "p99", "max"):
            raise ValueError(f"unsupported histogram window stat {stat!r}")
        self.name = name
        self.stat = stat
        self.match = match
        self._prev_counts: list[int] | None = None
        self._prev_sum = 0.0

    def _family_counts(self, registry) -> tuple[list[int], float, list[float]] | None:
        family = registry.get(self.name)
        if family is None:
            return None
        counts: list[int] | None = None
        total_sum = 0.0
        bounds: list[float] = []
        for labels, child in registry.series(self.name):
            if self.match and any(
                labels.get(k) != v for k, v in self.match.items()
            ):
                continue
            bounds = child.bounds
            if counts is None:
                counts = [0] * len(child.counts)
            for i, n in enumerate(child.counts):
                counts[i] += n
            total_sum += child.sum
        if counts is None:
            return None
        return counts, total_sum, bounds

    def sample(self, registry, now: float, dt: float) -> float | None:
        snap = self._family_counts(registry)
        if snap is None:
            return None
        counts, total_sum, bounds = snap
        prev_counts = self._prev_counts
        prev_sum = self._prev_sum
        self._prev_counts = list(counts)
        self._prev_sum = total_sum
        if prev_counts is None or len(prev_counts) != len(counts):
            delta = counts
            delta_sum = total_sum
        else:
            delta = [c - p for c, p in zip(counts, prev_counts)]
            delta_sum = total_sum - prev_sum
        n = sum(delta)
        if n <= 0:
            return None  # nothing recorded this interval
        if self.stat == "mean":
            return delta_sum / n
        if self.stat == "max":
            for i in range(len(delta) - 1, -1, -1):
                if delta[i]:
                    return bounds[i] if i < len(bounds) else bounds[-1] * 2
            return 0.0
        p = {"p50": 50.0, "p95": 95.0, "p99": 99.0}[self.stat]
        rank = (p / 100.0) * n
        cumulative = 0
        for i, count in enumerate(delta):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lo = bounds[i - 1] if i > 0 else 0.0
                hi = bounds[i] if i < len(bounds) else bounds[-1] * 2
                frac = (rank - cumulative) / count
                return lo + (hi - lo) * frac
            cumulative += count
        return bounds[-1] * 2


# ----------------------------------------------------------------------
# the recorder
# ----------------------------------------------------------------------
@dataclass
class TimeSeriesConfig:
    """Knobs for a recorder: how often to sample, how much to keep."""

    #: sim-clock seconds between samples (virtual time under the DES
    #: drivers).  Server runs last milliseconds of virtual time, so the
    #: default keeps a few hundred raw samples before compaction starts.
    cadence: float = 5e-6
    #: ring capacity per series (buckets)
    capacity: int = 512
    #: raw samples retained per bucket for percentile estimates
    reservoir: int = 16

    def __post_init__(self):
        if self.cadence <= 0:
            raise ValueError("cadence must be > 0")


class TimeSeriesRecorder:
    """Samples a registry into named ring-buffer series on a cadence."""

    def __init__(self, registry, config: TimeSeriesConfig | None = None):
        self.registry = registry
        self.config = config if config is not None else TimeSeriesConfig()
        self._series: dict[str, TimeSeries] = {}
        self._probes: dict[str, Any] = {}
        self._last_sample: float | None = None
        self.samples_taken = 0
        #: called after every accepted sample with (recorder, now) — the
        #: SLO monitor registers itself here so pipeline drivers only have
        #: to drive one object.
        self.listeners: list[Callable[["TimeSeriesRecorder", float], None]] = []

    def add_series(self, name: str, probe, unit: str = "") -> TimeSeries:
        if name in self._series:
            raise ValueError(f"series {name!r} already registered")
        series = TimeSeries(
            name,
            capacity=self.config.capacity,
            reservoir=self.config.reservoir,
            unit=unit,
        )
        self._series[name] = series
        self._probes[name] = probe
        return series

    def series(self, name: str) -> TimeSeries | None:
        return self._series.get(name)

    def names(self) -> list[str]:
        return list(self._series)

    @property
    def cadence(self) -> float:
        return self.config.cadence

    def sample(self, now: float, force: bool = False) -> bool:
        """Take one sample if the cadence has elapsed (or ``force``).

        Returns whether a sample was actually taken, so callers can gate
        downstream work (SLO evaluation) on it.
        """
        last = self._last_sample
        if not force and last is not None and now - last < self.config.cadence:
            return False
        dt = self.config.cadence if last is None else max(now - last, 0.0)
        self._last_sample = now
        self.samples_taken += 1
        for name, probe in self._probes.items():
            value = probe.sample(self.registry, now, dt)
            if value is None:
                continue
            self._series[name].append(now, float(value))
        for listener in self.listeners:
            listener(self, now)
        return True

    # -- artifact -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": "orthrus-timeseries/1",
            "cadence": self.config.cadence,
            "samples_taken": self.samples_taken,
            "series": [s.to_dict() for s in self._series.values()],
        }

    def summary(self) -> dict[str, dict[str, float]]:
        """Whole-run percentiles per non-empty series (bench artifacts)."""
        return {
            name: series.summary()
            for name, series in self._series.items()
            if not series.empty
        }


def install_default_probes(recorder: TimeSeriesRecorder) -> None:
    """Wire up the standard pipeline series (DESIGN.md §9).

    Works against either queue shape: the DES drivers' shared log store
    (``orthrus_log_store_depth``) and the queued-mode per-core queues
    (``orthrus_queue_depth``) feed the same ``queue_depth`` series —
    whichever family exists contributes, the other reads 0.
    """
    recorder.add_series(
        "validation_lag_p95",
        HistogramWindowProbe("orthrus_validation_latency_seconds", "p95"),
        unit="s",
    )
    recorder.add_series(
        "validation_lag_mean",
        HistogramWindowProbe("orthrus_validation_latency_seconds", "mean"),
        unit="s",
    )
    recorder.add_series(
        "queue_depth",
        GaugeProbe("orthrus_log_store_depth", "orthrus_queue_depth"),
        unit="logs",
    )
    recorder.add_series(
        "sampler_skip_rate",
        DeltaRatioProbe("orthrus_sampler_decisions_total", {"decision": "skip"}),
        unit="fraction",
    )
    recorder.add_series(
        "checksum_verify_rate",
        CounterRateProbe("orthrus_checksum_verifications_total"),
        unit="1/s",
    )
    recorder.add_series(
        "quarantined_cores",
        GaugeProbe("orthrus_quarantined_cores"),
        unit="cores",
    )
    recorder.add_series(
        "reclaim_backlog",
        GaugeProbe("orthrus_heap_reclaimable_versions"),
        unit="versions",
    )
    recorder.add_series(
        "degradation_level",
        GaugeProbe("orthrus_degradation_level"),
        unit="level",
    )


def install_span_probes(recorder: TimeSeriesRecorder) -> None:
    """Per-stage latency series from the causal span layer (DESIGN.md §11).

    Reads the ``orthrus_span_stage_seconds`` histogram family the
    :class:`~repro.obs.spans.SpanTracer` feeds, filtered per stage — the
    timeline view of where detection latency goes over the run.
    """
    for stage in ("queue.wait", "dispatch", "validate"):
        recorder.add_series(
            f"span_{stage.replace('.', '_')}_p95",
            HistogramWindowProbe(
                "orthrus_span_stage_seconds", "p95", match={"stage": stage}
            ),
            unit="s",
        )


def install_canary_probes(recorder: TimeSeriesRecorder) -> None:
    """Canary liveness series: cumulative missed canaries (any non-zero
    point is an SLO incident — wire ``canary_missed last <= 0`` into the
    burn windows) and the issue rate for context."""
    recorder.add_series(
        "canary_missed",
        GaugeProbe("orthrus_canary_missed_total"),
        unit="canaries",
    )
    recorder.add_series(
        "canary_issue_rate",
        CounterRateProbe("orthrus_canary_issued_total"),
        unit="1/s",
    )


def install_audit_probes(recorder: TimeSeriesRecorder) -> None:
    """Validation-plane audit series: cumulative drift-probe violations
    and the running count of logs with open exposure windows (DESIGN
    §14) — the timeline view of "how unprotected is the plane, now"."""
    recorder.add_series(
        "audit_violations",
        GaugeProbe("orthrus_audit_violations_total"),
        unit="violations",
    )
    recorder.add_series(
        "exposure_logs",
        GaugeProbe("orthrus_exposure_seconds"),
        unit="logs",
    )


# ----------------------------------------------------------------------
# artifact I/O + terminal rendering
# ----------------------------------------------------------------------
def write_timeline_json(recorder: TimeSeriesRecorder, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(recorder.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_timeline(path: str) -> dict[str, TimeSeries]:
    """Load an ``orthrus-timeseries/1`` artifact into named series."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != "orthrus-timeseries/1":
        raise ValueError("not an orthrus-timeseries/1 artifact")
    return {
        entry["name"]: TimeSeries.from_dict(entry) for entry in payload["series"]
    }


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def render_sparkline(values: list[float], width: int = 60) -> str:
    """A fixed-width terminal sparkline (empty input renders as spaces)."""
    if not values:
        return " " * width
    if len(values) > width:
        # Downsample by taking the max of each chunk — spikes must stay
        # visible, they are what the timeline exists to show.
        step = len(values) / width
        values = [
            max(values[int(i * step):max(int((i + 1) * step), int(i * step) + 1)])
            for i in range(width)
        ]
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        # Constant series: still honor the fixed width — glyphs for the
        # samples that exist, space-padded to the promised column count.
        return (_SPARK_BLOCKS[0] * len(values)).ljust(width)
    out = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[index])
    return "".join(out).ljust(width)
