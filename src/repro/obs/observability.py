"""The per-run observability handle threaded through the pipeline.

One :class:`Observability` object bundles a :class:`MetricsRegistry`, a
:class:`Tracer` and a :class:`~repro.obs.spans.SpanTracer`; the runtime,
validator, queues, samplers and reclamation manager all hold a reference
and guard every instrumentation site with a single ``if obs.enabled:``
check.  :data:`NULL_OBS` is the shared disabled instance — the default
everywhere — so an uninstrumented run pays one attribute read per site
and allocates nothing.

Usage::

    from repro.obs import Observability

    obs = Observability()                # metrics + trace + spans
    runtime = OrthrusRuntime(obs=obs, ...)
    ... run the workload ...
    print(console_summary(obs.registry.snapshot()))
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPANS, SpanTracer
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Metrics registry + tracer + span tracer for one run."""

    def __init__(
        self,
        trace: bool = True,
        max_trace_events: int = 1_000_000,
        spans: bool = True,
        max_spans: int = 1_000_000,
    ):
        self.enabled = True
        self.registry = MetricsRegistry()
        self.tracer = Tracer(max_trace_events) if trace else NULL_TRACER
        self.spans = (
            SpanTracer(max_spans, registry=self.registry) if spans else NULL_SPANS
        )

    def snapshot(self) -> dict:
        return self.registry.snapshot()


class _NullObservability:
    """Disabled observability: real (inert) registry, no-op tracer.

    The registry exists so unguarded writes do not crash, but every
    instrumentation site checks :attr:`enabled` first, so in practice
    nothing is ever recorded here.
    """

    enabled = False

    def __init__(self):
        self.registry = MetricsRegistry()
        self.tracer = NULL_TRACER
        self.spans = NULL_SPANS

    def snapshot(self) -> dict:
        return self.registry.snapshot()


NULL_OBS = _NullObservability()
