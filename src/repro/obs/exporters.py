"""Pluggable exporters: JSON-lines traces, Prometheus text, console tables.

Every exporter consumes either a live object (registry/tracer) or the
JSON-able snapshot dict, so saved runs can be re-rendered offline — the
``repro obs-summary`` CLI subcommand is just :func:`load_metrics_json` +
:func:`console_summary`.

Formats:

* **JSON metrics snapshot** (``write_metrics_json``) — the registry's
  ``snapshot()`` dict, one file per run; round-trips through
  ``MetricsRegistry.from_snapshot``.
* **JSON-lines trace** (``write_trace_jsonl``) — one event per line,
  ``{"ts": ..., "kind": ..., <fields>}``, in emission order; non-finite
  floats (e.g. an infinite reclamation watermark) become ``null``.
* **Prometheus text** (``to_prometheus``) — the standard exposition
  format: ``# HELP``/``# TYPE`` headers, cumulative ``_bucket`` series
  with ``le`` labels, ``_sum``/``_count`` per histogram.
* **Console summary** (``console_summary``) — a human-readable table of
  every family, with count/mean/p95 for histograms.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "write_trace_jsonl",
    "write_metrics_json",
    "load_metrics_json",
    "to_prometheus",
    "console_summary",
]


def _finite(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


# ----------------------------------------------------------------------
# JSON-lines trace sink
# ----------------------------------------------------------------------
def write_trace_jsonl(tracer, path: str) -> int:
    """Write every trace event as one JSON object per line; returns the
    number of events written (a trailing marker line records drops)."""
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in tracer:
            record = {k: _finite(v) for k, v in event.as_dict().items()}
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
        if getattr(tracer, "dropped", 0):
            fh.write(
                json.dumps({"kind": "trace.dropped", "count": tracer.dropped}) + "\n"
            )
    return written


def read_trace_jsonl(path: str) -> list[dict]:
    """Load a JSON-lines trace back into a list of event dicts."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# JSON metrics snapshot
# ----------------------------------------------------------------------
def write_metrics_json(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_metrics_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _escape_help(value) -> str:
    # HELP text escapes only backslash and newline (no quotes to close).
    return str(value).replace("\\", r"\\").replace("\n", r"\n")


def _prom_number(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def to_prometheus(source: MetricsRegistry | dict) -> str:
    """Render a registry (or a saved snapshot dict) as Prometheus text."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: list[str] = []
    for family in snapshot["metrics"]:
        name, kind = family["name"], family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        # One TYPE line per family, always — even when the family has no
        # series yet (a registered histogram nothing has observed must
        # still announce its type, or scrapers reject the exposition).
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_prom_labels(labels)} {_prom_number(series['value'])}")
                continue
            bounds = family["buckets"]
            cumulative = 0
            for bound, count in zip(bounds, series["counts"]):
                cumulative += count
                le = 'le="%s"' % _prom_number(bound)
                lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cumulative}")
            cumulative += series["counts"][len(bounds)]
            inf_le = 'le="+Inf"'
            lines.append(f"{name}_bucket{_prom_labels(labels, inf_le)} {cumulative}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_number(series['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} {series['count']}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Console summary
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def console_summary(source: MetricsRegistry | dict) -> str:
    """A fixed-width table of every metric series, histograms summarized."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    rows: list[tuple[str, str, str]] = []
    for family in sorted(snapshot["metrics"], key=lambda f: f["name"]):
        name, kind = family["name"], family["kind"]
        for series in sorted(
            family["series"], key=lambda s: tuple(sorted(s["labels"].items()))
        ):
            labels = ", ".join(f"{k}={v}" for k, v in sorted(series["labels"].items()))
            if kind in ("counter", "gauge"):
                value = _format_value(series["value"])
            else:
                registry = MetricsRegistry.from_snapshot(
                    {"format": "orthrus-metrics/1", "metrics": [dict(family, series=[series])]}
                )
                hist = registry.series(name)[0][1]
                value = (
                    f"count={hist.count} mean={hist.mean:.3g} "
                    f"p95={hist.p95:.3g} max={hist.max:.3g}"
                )
            rows.append((name, labels, value))
    if not rows:
        return "(empty metrics snapshot)\n"
    name_w = max(len(r[0]) for r in rows + [("metric", "", "")])
    label_w = max(len(r[1]) for r in rows + [("", "labels", "")])
    out = [
        f"{'metric'.ljust(name_w)}  {'labels'.ljust(label_w)}  value",
        "-" * (name_w + label_w + 9),
    ]
    for name, labels, value in rows:
        out.append(f"{name.ljust(name_w)}  {labels.ljust(label_w)}  {value}")
    return "\n".join(out) + "\n"
