"""Detection-latency attribution: folding span chains into waterfalls.

The paper's fig. 8 reports detection latency as one end-to-end number per
configuration.  This module decomposes it: given the causal span chains
from :mod:`repro.obs.spans`, it answers *where the time went* — queue
wait vs dispatch vs re-execution vs watchdog re-dispatch vs arbitration —
as per-stage distributions (p50/p95/p99), grouped overall, per closure
kind, and per degradation level.

The load-bearing invariant is **reconciliation**: for every log whose
chain ends in a ``verdict`` marker, the recorded stage durations tile the
interval from closure start to verdict exactly, so the per-stage sums add
back up to the end-to-end figure (± float rounding).  An attribution that
does not reconcile means a driver recorded overlapping or gapped spans —
:meth:`LatencyAttribution.reconciliation` makes that a testable property
instead of a silent accounting bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.spans import STAGE_ORDER, Span

__all__ = [
    "StageStats",
    "LatencyAttribution",
    "attribute",
    "stage_stats_from_registry",
    "render_waterfall",
    "format_seconds",
]

#: chain-terminal markers: stages after these never add latency
_TERMINAL = "verdict"
#: residual tolerance for float summation across a chain
_EPSILON = 1e-9


@dataclass(slots=True)
class StageStats:
    """Distribution summary of one stage's durations (virtual seconds)."""

    count: int
    total: float
    p50: float
    p95: float
    p99: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def _percentile(ordered: list[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = p * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _stats(durations: list[float]) -> StageStats:
    ordered = sorted(durations)
    return StageStats(
        count=len(ordered),
        total=sum(ordered),
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        p99=_percentile(ordered, 0.99),
        max=ordered[-1] if ordered else 0.0,
    )


class LatencyAttribution:
    """Per-stage latency decomposition of a finished run's span chains."""

    def __init__(self, chains: dict[int, list[Span]]):
        self._chains = chains
        #: stage → durations, across every chain
        self._by_stage: dict[str, list[float]] = {}
        #: closure kind → stage → durations
        self._by_closure: dict[str, dict[str, list[float]]] = {}
        #: degradation level → stage → durations
        self._by_level: dict[str, dict[str, list[float]]] = {}
        #: end-to-end (start → verdict) per verdict-terminated chain
        self._end_to_end: list[float] = []
        #: per-chain residual |sum(stages) - end_to_end| for verdict chains
        self._residuals: list[float] = []

        for spans in chains.values():
            closure = next((s.closure for s in spans if s.closure), "")
            level = "normal"
            for span in spans:
                level = span.args.get("level", level)
            verdict = next((s for s in spans if s.stage == _TERMINAL), None)
            chain_sum = 0.0
            for span in spans:
                self._by_stage.setdefault(span.stage, []).append(span.duration)
                self._by_closure.setdefault(closure, {}).setdefault(
                    span.stage, []
                ).append(span.duration)
                self._by_level.setdefault(level, {}).setdefault(
                    span.stage, []
                ).append(span.duration)
                chain_sum += span.duration
            if verdict is not None:
                start = min(s.start for s in spans)
                end_to_end = verdict.end - start
                self._end_to_end.append(end_to_end)
                self._residuals.append(abs(chain_sum - end_to_end))

    # ------------------------------------------------------------------
    @property
    def chain_count(self) -> int:
        return len(self._chains)

    def chain(self, seq: int) -> list[Span]:
        return list(self._chains.get(seq, ()))

    def stages(self) -> dict[str, StageStats]:
        """Per-stage stats, in canonical stage order."""
        return {
            stage: _stats(self._by_stage[stage])
            for stage in _ordered(self._by_stage)
        }

    def by_closure(self) -> dict[str, dict[str, StageStats]]:
        return {
            closure: {
                stage: _stats(buckets[stage]) for stage in _ordered(buckets)
            }
            for closure, buckets in sorted(self._by_closure.items())
        }

    def by_level(self) -> dict[str, dict[str, StageStats]]:
        return {
            level: {
                stage: _stats(buckets[stage]) for stage in _ordered(buckets)
            }
            for level, buckets in sorted(self._by_level.items())
        }

    def end_to_end(self) -> StageStats:
        """Closure start → verdict, over verdict-terminated chains."""
        return _stats(self._end_to_end)

    def reconciliation(self) -> dict:
        """Do the stage sums add back up to the end-to-end figures?"""
        max_residual = max(self._residuals, default=0.0)
        return {
            "chains": len(self._residuals),
            "max_residual": max_residual,
            "reconciled": max_residual <= _EPSILON,
        }

    def summary(self) -> dict:
        return {
            "chains": self.chain_count,
            "end_to_end": self.end_to_end().as_dict(),
            "stages": {k: v.as_dict() for k, v in self.stages().items()},
            "reconciliation": self.reconciliation(),
        }


def _ordered(buckets: dict[str, list[float]]) -> list[str]:
    ordered = [s for s in STAGE_ORDER if s in buckets]
    ordered += [s for s in buckets if s not in ordered]
    return ordered


def attribute(spans: Iterable[Span]) -> LatencyAttribution:
    """Fold finished spans (a live :class:`SpanTracer` or a list loaded
    from a Chrome trace) into a :class:`LatencyAttribution`."""
    chains: dict[int, list[Span]] = {}
    for span in spans:
        chains.setdefault(span.seq, []).append(span)
    return LatencyAttribution(chains)


def stage_stats_from_registry(source) -> dict[str, StageStats]:
    """Per-stage stats from the ``orthrus_span_stage_seconds`` histogram
    family of a live registry or reloaded snapshot — the waterfall a saved
    metrics file can still render after the span buffer is gone."""
    stats: dict[str, StageStats] = {}
    for labels, hist in source.series("orthrus_span_stage_seconds"):
        stats[labels.get("stage", "?")] = StageStats(
            count=hist.count,
            total=hist.sum,
            p50=hist.p50,
            p95=hist.p95,
            p99=hist.p99,
            max=hist.max,
        )
    return {stage: stats[stage] for stage in _ordered(stats)}  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Text waterfall rendering
# ----------------------------------------------------------------------
def format_seconds(value: float) -> str:
    """Human-scaled seconds: 12.3µs / 4.56ms / 1.23s."""
    mag = abs(value)
    if mag >= 1.0:
        return f"{value:.3g}s"
    if mag >= 1e-3:
        return f"{value * 1e3:.3g}ms"
    if mag >= 1e-6:
        return f"{value * 1e6:.3g}µs"
    if mag == 0.0:
        return "0s"
    return f"{value * 1e9:.3g}ns"


def render_waterfall(
    stages: dict[str, StageStats], bar_width: int = 24
) -> str:
    """Fixed-width per-stage waterfall table with share-of-total bars."""
    if not stages:
        return "(no spans recorded)\n"
    total = sum(s.total for s in stages.values()) or 1.0
    rows = []
    for stage, stats in stages.items():
        share = stats.total / total
        bar = "█" * max(int(round(share * bar_width)), 1 if stats.total else 0)
        rows.append(
            (
                stage,
                str(stats.count),
                format_seconds(stats.total),
                format_seconds(stats.p50),
                format_seconds(stats.p95),
                format_seconds(stats.p99),
                f"{share * 100:5.1f}%",
                bar,
            )
        )
    headers = ("stage", "count", "total", "p50", "p95", "p99", "share", "")
    widths = [
        max(len(row[i]) for row in rows + [headers]) for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "-" * (sum(widths) + 2 * (len(headers) - 2)),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines) + "\n"
