"""Causal lifecycle spans: where the microseconds between corruption and
verdict actually go.

The flat tracer (:mod:`repro.obs.trace`) answers "what happened"; spans
answer "what happened *to this log*, in order, and how long each hop
took".  Every span is keyed by the closure log's ``seq`` and linked to the
previous span of the same log, so a finished run decomposes into causal
chains::

    closure.run → queue.wait → dispatch → validate → verdict
                              [→ arbitrate → quarantine → repair]

with the fault-tolerance detours (``stalled``, ``redispatch``,
``fallback``, ``skip``, ``drop``) spliced in where the chaos layer takes
over.  Stage intervals are recorded in virtual time and *tile*: for a log
whose chain ends in a ``verdict`` marker, the stage durations sum to
exactly ``verdict_time - start_time`` — the invariant the latency
attribution engine (:mod:`repro.obs.latency`) checks and exploits.

Like the tracer, the span layer lives behind the ``obs.enabled`` /
``NULL_OBS`` guard: :data:`NULL_SPANS` records nothing, and drivers pay a
single attribute check on the disabled path.  :func:`write_spans_chrome`
exports the chain as a Chrome trace-event file (one timeline row per
stage) that loads directly into Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "STAGE_ORDER",
    "Span",
    "SpanTracer",
    "NullSpanTracer",
    "NULL_SPANS",
    "write_spans_chrome",
    "load_spans_chrome",
]

#: canonical stage ordering — the causal lifecycle first, then the
#: fault-tolerance detours, then the incident-response tail.  Used for
#: waterfall rendering order and Chrome trace row assignment.
STAGE_ORDER = (
    "closure.run",
    "queue.wait",
    "dispatch",
    "validate",
    "verdict",
    "stalled",
    "redispatch",
    "fallback",
    "skip",
    "drop",
    "arbitrate",
    "quarantine",
    "repair",
)


@dataclass(slots=True)
class Span:
    """One stage interval in a closure log's lifecycle.

    ``parent_id`` is the ``span_id`` of the previous span recorded for the
    same ``seq`` (-1 for chain roots), which is what makes the chain
    *causal* rather than merely co-keyed: each span points at the stage
    that handed the log to it.
    """

    span_id: int
    stage: str
    seq: int
    start: float
    end: float
    closure: str = ""
    parent_id: int = -1
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "stage": self.stage,
            "seq": self.seq,
            "start": self.start,
            "end": self.end,
            "closure": self.closure,
            "parent_id": self.parent_id,
            **self.args,
        }


class SpanTracer:
    """Recording span tracer: seq-keyed causal chains with a hard cap.

    When constructed with a registry, every recorded span also feeds the
    ``orthrus_span_stage_seconds{stage=...}`` histogram, so per-stage
    latency distributions survive in metrics snapshots even when the span
    buffer itself is not exported.
    """

    enabled = True

    def __init__(self, max_spans: int = 1_000_000, registry=None):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.spans: list[Span] = []
        self.dropped = 0
        self._max_spans = max_spans
        self._registry = registry
        self._next_id = 0
        #: seq → span_id of the most recent span (the causal parent link)
        self._last_for_seq: dict[int, int] = {}

    def record(
        self,
        stage: str,
        seq: int,
        start: float,
        end: float,
        closure: str = "",
        **args: Any,
    ) -> Span | None:
        """Append one stage interval to ``seq``'s chain.

        The parent link is implicit: the previously recorded span of the
        same seq.  Markers are spans with ``start == end``.  Returns None
        (and counts a drop) once the cap is hit — the chain-link state
        still advances so a post-cap chain stays causally consistent.
        """
        self._next_id += 1
        span_id = self._next_id
        parent_id = self._last_for_seq.get(seq, -1)
        self._last_for_seq[seq] = span_id
        if self._registry is not None:
            self._registry.histogram(
                "orthrus_span_stage_seconds",
                {"stage": stage},
                help="virtual time spent in each closure-lifecycle stage",
            ).record(end - start)
        if len(self.spans) >= self._max_spans:
            self.dropped += 1
            return None
        span = Span(
            span_id=span_id,
            stage=stage,
            seq=seq,
            start=start,
            end=end,
            closure=closure,
            parent_id=parent_id,
            args=args,
        )
        self.spans.append(span)
        return span

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def for_seq(self, seq: int) -> list[Span]:
        """One log's full chain, in recording (= causal) order."""
        return [s for s in self.spans if s.seq == seq]

    def of_stage(self, stage: str) -> list[Span]:
        return [s for s in self.spans if s.stage == stage]

    def stages(self) -> list[str]:
        """Stages present, canonical ones first, extras in first-seen order."""
        seen = {s.stage for s in self.spans}
        ordered = [stage for stage in STAGE_ORDER if stage in seen]
        for span in self.spans:
            if span.stage not in ordered:
                ordered.append(span.stage)
        return ordered

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0
        self._next_id = 0
        self._last_for_seq.clear()


class NullSpanTracer:
    """The zero-overhead disabled span tracer (shared singleton)."""

    enabled = False
    spans: tuple = ()
    dropped = 0

    def record(self, stage, seq, start, end, closure="", **args):
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    def for_seq(self, seq: int) -> list[Span]:
        return []

    def of_stage(self, stage: str) -> list[Span]:
        return []

    def stages(self) -> list[str]:
        return []

    def clear(self) -> None:
        pass


NULL_SPANS = NullSpanTracer()


# ----------------------------------------------------------------------
# Chrome trace-event exporter (Perfetto / chrome://tracing loadable)
# ----------------------------------------------------------------------
_CHROME_US = 1e6  # chrome trace timestamps are microseconds


def _stage_tids(stages: list[str]) -> dict[str, int]:
    ordered = [s for s in STAGE_ORDER if s in stages]
    ordered += [s for s in stages if s not in ordered]
    return {stage: tid for tid, stage in enumerate(ordered)}


def write_spans_chrome(spans, path: str) -> int:
    """Write spans as a Chrome trace-event JSON file; returns span count.

    One timeline row (tid) per stage under a single ``orthrus`` process,
    so the loaded trace reads as a waterfall: every complete (``ph=X``)
    event carries ``seq``/``closure``/``span_id``/``parent`` args, which
    also makes the file round-trippable via :func:`load_spans_chrome`.
    Markers get a minimal visible duration of 1 ns so Perfetto renders
    them; the true zero duration survives in the args.
    """
    span_list = list(spans)
    tids = _stage_tids([s.stage for s in span_list])
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "orthrus"},
        }
    ]
    for stage, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": stage},
            }
        )
    for span in span_list:
        events.append(
            {
                "name": span.stage,
                "cat": "orthrus",
                "ph": "X",
                "pid": 0,
                "tid": tids[span.stage],
                "ts": span.start * _CHROME_US,
                "dur": max(span.duration * _CHROME_US, 1e-3),
                "args": {
                    "seq": span.seq,
                    "closure": span.closure,
                    "span_id": span.span_id,
                    "parent": span.parent_id,
                    "duration_s": span.duration,
                    **span.args,
                },
            }
        )
    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    dropped = getattr(spans, "dropped", 0)
    if dropped:
        payload["otherData"] = {"spans_dropped": dropped}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")
    return len(span_list)


def load_spans_chrome(path: str) -> list[Span]:
    """Load a Chrome trace written by :func:`write_spans_chrome` back into
    :class:`Span` objects (metadata events are skipped)."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("not a chrome trace-event file (no traceEvents)")
    spans: list[Span] = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        seq = args.pop("seq", -1)
        closure = args.pop("closure", "")
        span_id = args.pop("span_id", len(spans) + 1)
        parent = args.pop("parent", -1)
        duration = args.pop("duration_s", event.get("dur", 0.0) / _CHROME_US)
        start = event.get("ts", 0.0) / _CHROME_US
        spans.append(
            Span(
                span_id=span_id,
                stage=event["name"],
                seq=seq,
                start=start,
                end=start + duration,
                closure=closure,
                parent_id=parent,
                args=args,
            )
        )
    return spans
