"""Validation-plane auditing: a static rule engine + runtime drift probes.

The nba-stats-scraper incident (ROADMAP item 5) was pure configuration
drift — the system "correctly waited for processors that would never
arrive" for three days.  Orthrus's validation plane can rot the same
way: a validator pool that is entirely quarantined, a watchdog deadline
that outlives the SLO it is supposed to protect, a sampler targeting
closures no app registers.  None of these is a *code* failure, so no
test catches them; each silently converts "protected" into "exposed".

This module is the auditor that closes the gap, in two halves:

* **Static audit** — a rule engine (one small :class:`AuditRule` per
  invariant, with an id, severity, affected subject, and remediation
  hint) cross-checking :class:`~repro.harness.pipeline.PipelineConfig`
  and :class:`~repro.fleet.topology.FleetConfig`/``FleetTopology`` for
  contradictions before a run starts.  The fleet topology's startup
  checks delegate here (the rule ids double as the
  :class:`~repro.fleet.topology.FleetConfigError` violation codes), and
  the ``doctor`` CLI subcommand runs the same rules over any config.
  Results are an :class:`AuditReport`, exported as the
  ``orthrus-audit/1`` artifact.

* **Runtime drift probes** — a :class:`DriftMonitor` polled inside the
  DES that compares *declared* config against *observed* behavior:
  organic coverage vs the declared floor, the declared validator pool
  vs the cores that actually produced verdicts, conservation-ledger
  residuals, and canary liveness.  Violations become ``audit.violation``
  trace events (the incident timeline), ``orthrus_audit_violations_total``
  counters, and terminal findings merged into the run's audit payload.

Findings merge associatively (dedupe by rule/subject/message, severity
sort), so fleet workers can fold shard-level findings without caring
about worker count or arrival order — the same discipline the metrics
and profile merges use.  Everything here is observational: no rule
consumes RNG or perturbs virtual time, so run digests are byte-identical
with auditing on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.observability import NULL_OBS

__all__ = [
    "AUDIT_FORMAT",
    "AuditConfig",
    "AuditReport",
    "AuditRule",
    "DRIFT_RULES",
    "DriftMonitor",
    "FLEET_CHAOS_RULES",
    "FLEET_SCALAR_RULES",
    "FLEET_STRUCTURAL_RULES",
    "Finding",
    "Severity",
    "audit_fleet",
    "audit_fleet_config",
    "audit_fleet_topology",
    "audit_pipeline",
    "component_violations",
    "findings_to_violations",
    "merge_findings",
    "pipeline_rules",
    "render_audit",
]

AUDIT_FORMAT = "orthrus-audit/1"


class Severity:
    """Finding severities, ordered most-severe-first for sorting."""

    ERROR = "error"
    WARN = "warn"
    INFO = "info"

    _ORDER = {ERROR: 0, WARN: 1, INFO: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER.get(severity, len(cls._ORDER))


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation: what broke, where, and how to fix it."""

    rule: str
    severity: str
    subject: str
    message: str
    remediation: str = ""
    #: sorted (key, value) pairs of the evidence the rule observed
    observed: tuple = ()

    def sort_key(self) -> tuple:
        return (Severity.rank(self.severity), self.rule, self.subject, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "remediation": self.remediation,
            "observed": dict(self.observed),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule=payload["rule"],
            severity=payload.get("severity", Severity.ERROR),
            subject=payload.get("subject", ""),
            message=payload.get("message", ""),
            remediation=payload.get("remediation", ""),
            observed=tuple(sorted(payload.get("observed", {}).items())),
        )


def merge_findings(*groups) -> list[Finding]:
    """Associative fold: dedupe by (rule, subject, message), severity sort.

    Order-independent in the output, so the fleet merge is worker-count
    invariant by construction.
    """
    seen: dict[tuple, Finding] = {}
    for group in groups:
        for finding in group:
            seen[(finding.rule, finding.subject, finding.message)] = finding
    return sorted(seen.values(), key=Finding.sort_key)


def findings_to_violations(findings) -> list[dict]:
    """ERROR findings as the ``{"code", "subject", "message"}`` records
    :class:`~repro.fleet.topology.FleetConfigError` carries."""
    return [
        {"code": f.rule, "subject": f.subject, "message": f.message}
        for f in findings
        if f.severity == Severity.ERROR
    ]


def component_violations(component) -> list[str]:
    """A component config's own violations, as messages.

    Prefers the structured ``violations()`` protocol (DegradationConfig,
    WatchdogConfig, CanaryConfig, QuarantineConfig, AuditConfig); falls
    back to calling ``validate()`` and catching the first complaint.
    """
    probe = getattr(component, "violations", None)
    if callable(probe):
        return [str(message) for message in probe()]
    validate = getattr(component, "validate", None)
    if callable(validate):
        try:
            validate()
        except ConfigurationError as exc:
            return [str(exc)]
    return []


class AuditRule:
    """One invariant over a config/topology object.

    Subclasses set the class attributes and implement :meth:`check`,
    returning zero or more :class:`Finding`\\ s.  Rules never raise on a
    bad config — collecting every defect in one pass is the point.
    """

    rule_id = "abstract"
    severity = Severity.ERROR
    description = ""
    remediation = ""

    def check(self, target) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, subject: str, message: str, severity: str | None = None, **observed
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity if severity is None else severity,
            subject=subject,
            message=message,
            remediation=self.remediation,
            observed=tuple(sorted(observed.items())),
        )


@dataclass
class AuditReport:
    """Everything one static audit concluded; ``to_json`` is the artifact."""

    findings: list = field(default_factory=list)
    rules_run: int = 0
    targets: list = field(default_factory=list)

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity == Severity.WARN]

    @property
    def ok(self) -> bool:
        return not self.errors

    def run(self, rules, target) -> None:
        """Apply each rule to ``target``, collecting its findings."""
        for rule in rules:
            self.findings.extend(rule.check(target))
            self.rules_run += 1

    def merge(self, other: "AuditReport") -> None:
        self.findings = merge_findings(self.findings, other.findings)
        self.rules_run += other.rules_run
        for target in other.targets:
            if target not in self.targets:
                self.targets.append(target)

    def to_json(self) -> dict:
        findings = merge_findings(self.findings)
        return {
            "format": AUDIT_FORMAT,
            "targets": list(self.targets),
            "rules_run": self.rules_run,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "ok": self.ok,
            },
            "findings": [f.to_dict() for f in findings],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AuditReport":
        if payload.get("format") != AUDIT_FORMAT:
            raise ValueError(f"not an {AUDIT_FORMAT} artifact")
        return cls(
            findings=[Finding.from_dict(f) for f in payload.get("findings", [])],
            rules_run=int(payload.get("rules_run", 0)),
            targets=list(payload.get("targets", [])),
        )

    def render(self) -> str:
        return render_audit(self.to_json())


def render_audit(payload: dict) -> str:
    """Console rendering of an ``orthrus-audit/1`` payload (static audits
    and runtime drift payloads share the shape)."""
    summary = payload.get("summary", {})
    targets = ", ".join(payload.get("targets", [])) or "config"
    head = (
        f"validation-plane audit ({targets}): "
        f"{summary.get('errors', 0)} error(s), "
        f"{summary.get('warnings', 0)} warning(s) "
        f"over {payload.get('rules_run', 0)} rule(s)"
    )
    if "probes" in payload:
        head += f", {payload['probes']} drift probe(s)"
    lines = [head]
    for finding in payload.get("findings", []):
        lines.append(
            f"  [{finding['severity'].upper():<5}] {finding['rule']}"
            f"  {finding['subject']}: {finding['message']}"
        )
        if finding.get("remediation"):
            lines.append(f"          fix: {finding['remediation']}")
    exposure = payload.get("exposure")
    if exposure is not None:
        from repro.obs.exposure import render_exposure

        lines.extend(render_exposure(exposure).splitlines())
    if not payload.get("findings"):
        lines.append("  no contradictions found")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pipeline rules
# ----------------------------------------------------------------------


def _detection_latency_ceiling(slos) -> float | None:
    """The detection-latency SLO ceiling among declared objectives."""
    if not slos:
        return None
    for objective in slos:
        if (
            getattr(objective, "series", "") == "validation_lag_p95"
            and getattr(objective, "op", "") == "<="
        ):
            return float(objective.threshold)
    return None


class ValidatorPoolPresent(AuditRule):
    rule_id = "validator-pool-empty"
    description = "the pipeline declares at least one validation core"
    remediation = "set validation_cores >= 1"

    def check(self, config) -> list[Finding]:
        cores = getattr(config, "validation_cores", 1)
        if cores >= 1:
            return []
        return [
            self.finding(
                "pipeline",
                f"validation_cores must be >= 1, got {cores} — "
                "the plane could never validate anything",
                validation_cores=cores,
            )
        ]


class SamplerTargetsRegistered(AuditRule):
    rule_id = "sampler-target-unknown"
    description = "every declared sampler target is a registered closure"
    remediation = "register the closure with @closure(...) or drop the target"

    def __init__(self, known_closures=None):
        self._known = known_closures

    def check(self, config) -> list[Finding]:
        targets = tuple(getattr(config, "sampler_targets", ()) or ())
        if not targets:
            return []
        known = self._known
        if known is None:
            from repro.closures import CLOSURE_REGISTRY
            from repro.obs.canary import CANARY_CLOSURE

            known = set(CLOSURE_REGISTRY) | {CANARY_CLOSURE}
        findings = []
        for target in targets:
            if target in known:
                continue
            findings.append(
                self.finding(
                    target,
                    f"sampler targets closure {target!r} but no app "
                    "registers it — the target would wait forever",
                    registered_closures=len(known),
                )
            )
        return findings


class CanaryDeadlineOrdered(AuditRule):
    rule_id = "canary-deadline-inverted"
    description = "each canary gets a detection window shorter than the cadence"
    remediation = (
        "raise the canary deadline above its period "
        "(or leave it unset for the 3x-period default)"
    )

    def check(self, config) -> list[Finding]:
        canary = getattr(config, "canary", None)
        if canary is None:
            return []
        period = float(getattr(canary, "period", 0.0))
        deadline = float(getattr(canary, "deadline", 0.0))
        if deadline <= 0.0 or period < deadline:
            return []
        return [
            self.finding(
                "canary",
                f"canary period {period:g}s >= deadline {deadline:g}s — "
                "probes would be declared missed on the detector's own "
                "schedule, not the plane's health",
                period=period,
                deadline=deadline,
            )
        ]


class WatchdogWithinSlo(AuditRule):
    rule_id = "watchdog-exceeds-slo"
    description = "the watchdog fires before the detection-latency SLO burns"
    remediation = (
        "lower the watchdog deadline below the detection-latency SLO ceiling"
    )

    def check(self, config) -> list[Finding]:
        ft = getattr(config, "fault_tolerance", None)
        watchdog = getattr(ft, "watchdog", None) if ft is not None else None
        if watchdog is None:
            return []
        ceiling = _detection_latency_ceiling(getattr(config, "slos", None))
        deadline = float(getattr(watchdog, "deadline", 0.0))
        if ceiling is None or deadline <= ceiling:
            return []
        return [
            self.finding(
                "watchdog",
                f"watchdog deadline {deadline:g}s exceeds the "
                f"detection-latency SLO ceiling {ceiling:g}s — timeouts "
                "would be declared after the SLO is already burned",
                deadline=deadline,
                slo_ceiling=ceiling,
            )
        ]


class OverflowPolicyKnown(AuditRule):
    rule_id = "overflow-policy-unknown"
    description = "the bounded-queue overflow policy names a real policy"
    remediation = "pick one of the repro.validation.queues overflow policies"

    def check(self, config) -> list[Finding]:
        ft = getattr(config, "fault_tolerance", None)
        if ft is None:
            return []
        from repro.validation.queues import OVERFLOW_POLICIES

        policy = getattr(ft, "overflow_policy", None)
        if policy in OVERFLOW_POLICIES:
            return []
        return [
            self.finding(
                "queues",
                f"unknown overflow policy {policy!r}; expected one of "
                f"{sorted(OVERFLOW_POLICIES)}",
                policy=str(policy),
            )
        ]


class OverflowPolicyGuarded(AuditRule):
    rule_id = "overflow-policy-unguarded"
    severity = Severity.WARN
    description = (
        "block-producer overflow is paired with a degradation ladder so a "
        "hung pool cannot stall producers (and the conservation ledger) "
        "forever"
    )
    remediation = "enable the degradation ladder alongside block-producer"

    def check(self, config) -> list[Finding]:
        ft = getattr(config, "fault_tolerance", None)
        if ft is None or getattr(ft, "overflow_policy", "") != "block-producer":
            return []
        if getattr(ft, "degradation", None) is not None:
            return []
        return [
            self.finding(
                "queues",
                "block-producer overflow with no degradation ladder: a hung "
                "validator pool blocks every producer, records no drops, and "
                "the conservation ledger can never settle",
                policy="block-producer",
            )
        ]


class QueueCapacityPositive(AuditRule):
    rule_id = "queue-capacity-invalid"
    description = "a bounded validation queue holds at least one log"
    remediation = "set queue_capacity >= 1 (or None for unbounded)"

    def check(self, config) -> list[Finding]:
        ft = getattr(config, "fault_tolerance", None)
        if ft is None:
            return []
        capacity = getattr(ft, "queue_capacity", None)
        if capacity is None or capacity >= 1:
            return []
        return [
            self.finding(
                "queues",
                f"queue capacity must be >= 1 when bounded, got {capacity}",
                capacity=capacity,
            )
        ]


class ComponentConfigsValid(AuditRule):
    rule_id = "component-config-invalid"
    description = "every attached component config passes its own checks"
    remediation = "fix the named component config before starting the run"

    def check(self, config) -> list[Finding]:
        ft = getattr(config, "fault_tolerance", None)
        response = getattr(config, "response", None)
        components = (
            ("watchdog", getattr(ft, "watchdog", None) if ft else None),
            ("degradation", getattr(ft, "degradation", None) if ft else None),
            ("canary", getattr(config, "canary", None)),
            ("quarantine", getattr(response, "quarantine", None)),
            ("audit", getattr(config, "audit", None)),
        )
        findings = []
        for name, component in components:
            if component is None:
                continue
            for message in component_violations(component):
                findings.append(self.finding(name, message))
        return findings


class QuarantineKeepsPool(AuditRule):
    rule_id = "quarantine-empties-pool"
    severity = Severity.WARN
    description = "quarantine cannot empty a single-core validator pool"
    remediation = (
        "provision at least two validation cores when quarantine is enabled"
    )

    def check(self, config) -> list[Finding]:
        if getattr(config, "response", None) is None:
            return []
        cores = getattr(config, "validation_cores", 0)
        if cores != 1:
            return []
        return [
            self.finding(
                "response",
                "quarantining the only validation core would empty the "
                "pool; the scheduler will hold offenders in service instead",
                validation_cores=cores,
            )
        ]


def pipeline_rules(known_closures=None) -> tuple:
    """The static rule set for one :class:`PipelineConfig`."""
    return (
        ValidatorPoolPresent(),
        SamplerTargetsRegistered(known_closures),
        CanaryDeadlineOrdered(),
        WatchdogWithinSlo(),
        OverflowPolicyKnown(),
        OverflowPolicyGuarded(),
        QueueCapacityPositive(),
        ComponentConfigsValid(),
        QuarantineKeepsPool(),
    )


def audit_pipeline(config, known_closures=None) -> AuditReport:
    """Statically audit one pipeline config (the ``doctor`` entry point)."""
    report = AuditReport(targets=["pipeline"])
    report.run(pipeline_rules(known_closures), config)
    return report


# ----------------------------------------------------------------------
# fleet rules (rule ids double as FleetConfigError violation codes)
# ----------------------------------------------------------------------


class HostsPositive(AuditRule):
    rule_id = "no-hosts"
    remediation = "set hosts >= 1"

    def check(self, config) -> list[Finding]:
        if config.hosts >= 1:
            return []
        return [
            self.finding("fleet", f"hosts must be >= 1, got {config.hosts}")
        ]


class ShardsPositive(AuditRule):
    rule_id = "no-shards"
    remediation = "set shards >= 1"

    def check(self, config) -> list[Finding]:
        if config.shards >= 1:
            return []
        return [
            self.finding("fleet", f"shards must be >= 1, got {config.shards}")
        ]


class CoresPositive(AuditRule):
    rule_id = "no-cores"
    remediation = "set cores_per_host >= 1"

    def check(self, config) -> list[Finding]:
        if config.cores_per_host >= 1:
            return []
        return [self.finding("fleet", "cores_per_host must be >= 1")]


class ValidatorsPositive(AuditRule):
    rule_id = "no-validators"
    remediation = "set validators_per_shard >= 1"

    def check(self, config) -> list[Finding]:
        if config.validators_per_shard >= 1:
            return []
        return [self.finding("fleet", "validators_per_shard must be >= 1")]


class AppCoresPositive(AuditRule):
    rule_id = "no-app-cores"
    remediation = "set app_cores_per_shard >= 1"

    def check(self, config) -> list[Finding]:
        if config.app_cores_per_shard >= 1:
            return []
        return [self.finding("fleet", "app_cores_per_shard must be >= 1")]


class EpochsSufficient(AuditRule):
    rule_id = "too-few-epochs"
    remediation = "run at least two epochs"

    def check(self, config) -> list[Finding]:
        if config.epochs >= 2:
            return []
        return [self.finding("fleet", "epochs must be >= 2")]


class EpochSpanPositive(AuditRule):
    rule_id = "bad-epoch"
    remediation = "set epoch_s > 0"

    def check(self, config) -> list[Finding]:
        if config.epoch_s > 0:
            return []
        return [self.finding("fleet", "epoch_s must be > 0")]


class MinCoverageInRange(AuditRule):
    rule_id = "bad-min-coverage"
    remediation = "keep min_coverage inside [0, 1]"

    def check(self, config) -> list[Finding]:
        if 0.0 <= config.min_coverage <= 1.0:
            return []
        return [self.finding("fleet", "min_coverage must be in [0, 1]")]


class FleetWatchdogWithinSlo(AuditRule):
    rule_id = "watchdog-exceeds-slo"
    remediation = "lower watchdog_deadline below slo_window"

    def check(self, config) -> list[Finding]:
        if config.watchdog_deadline <= config.slo_window:
            return []
        return [
            self.finding(
                "fleet",
                f"watchdog deadline {config.watchdog_deadline:g}s exceeds "
                f"the SLO window {config.slo_window:g}s — timeouts would "
                "be declared after the SLO is already burned",
                deadline=config.watchdog_deadline,
                slo_window=config.slo_window,
            )
        ]


class QuarantineWithinTopology(AuditRule):
    rule_id = "quarantine-out-of-range"
    remediation = "quarantine only (host, core) pairs inside the topology"

    def check(self, config) -> list[Finding]:
        findings = []
        for host_id, core in config.quarantined:
            if not (0 <= int(host_id) < config.hosts) or not (
                0 <= int(core) < config.cores_per_host
            ):
                findings.append(
                    self.finding(
                        f"h{int(host_id):03d}/c{int(core)}",
                        "pre-quarantined core is outside the topology",
                    )
                )
        return findings


class ShardsFitUsableCores(AuditRule):
    rule_id = "shards-exceed-cores"
    remediation = "add cores, shrink per-shard pools, or shed shards"

    def check(self, topology) -> list[Finding]:
        config = topology.config
        findings = []
        for host in topology.hosts:
            demanded = len(host.shard_ids) * (
                config.app_cores_per_shard + config.validators_per_shard
            )
            usable = host.cores - len(host.quarantined)
            if demanded > usable:
                findings.append(
                    self.finding(
                        host.name,
                        f"{len(host.shard_ids)} shard(s) demand {demanded} "
                        f"cores but only {usable} usable core(s) remain "
                        f"({host.cores} - {len(host.quarantined)} "
                        "quarantined)",
                        demanded=demanded,
                        usable=usable,
                    )
                )
        return findings


class ValidatorPoolUsable(AuditRule):
    rule_id = "validator-pool-quarantined"
    remediation = "release a quarantined core or re-home the shard"

    def check(self, topology) -> list[Finding]:
        findings = []
        for shard in topology.shards:
            host = topology.hosts[shard.host_id]
            if set(shard.validator_cores) <= set(host.quarantined):
                findings.append(
                    self.finding(
                        shard.name,
                        f"every validator core {list(shard.validator_cores)} "
                        f"on {host.name} is quarantined — the shard could "
                        "never validate anything",
                        pool=len(shard.validator_cores),
                    )
                )
        return findings


class ChaosHostsKnown(AuditRule):
    """Every host a fault plan names must exist in the topology — a
    partition between unknown hosts would silently test nothing."""

    rule_id = "chaos-unknown-host"
    remediation = "name only host ids inside [0, hosts) in the fault plan"

    def check(self, config) -> list[Finding]:
        plan = getattr(config, "faults", None)
        if plan is None:
            return []
        findings = []

        def bad(host: int) -> bool:
            return not (0 <= int(host) < config.hosts)

        for crash in plan.crashes:
            if bad(crash.host):
                findings.append(
                    self.finding(
                        f"crash/h{crash.host}",
                        f"crash names host {crash.host} outside the "
                        f"{config.hosts}-host topology",
                    )
                )
        for kind, links in (
            ("partition", plan.partitions), ("degradation", plan.degradations)
        ):
            for link in links:
                if bad(link.host_a) or bad(link.host_b):
                    findings.append(
                        self.finding(
                            f"{kind}/h{link.host_a}-h{link.host_b}",
                            f"{kind} names a host pair outside the "
                            f"{config.hosts}-host topology",
                        )
                    )
                elif link.host_a == link.host_b:
                    findings.append(
                        self.finding(
                            f"{kind}/h{link.host_a}-h{link.host_b}",
                            f"a {kind} needs two distinct hosts — a host "
                            "has no network link to itself",
                        )
                    )
        for straggler in plan.stragglers:
            for host in straggler.hosts:
                if bad(host):
                    findings.append(
                        self.finding(
                            f"straggler/h{host}",
                            f"straggler window names host {host} outside "
                            f"the {config.hosts}-host topology",
                        )
                    )
        return findings


class CrashWindowWithinHorizon(AuditRule):
    """A crash window must fit the simulated horizon: a crash armed at or
    beyond the last epoch never fires, and a partition/outage running past
    the horizon tests less than the plan claims."""

    rule_id = "crash-window-exceeds-horizon"
    remediation = "arm faults before the horizon and size windows to fit"

    def check(self, config) -> list[Finding]:
        plan = getattr(config, "faults", None)
        if plan is None:
            return []
        findings = []
        for crash in plan.crashes:
            if crash.at_epoch >= config.epochs:
                findings.append(
                    self.finding(
                        f"crash/h{crash.host}",
                        f"crash armed at epoch {crash.at_epoch} but the "
                        f"simulation only runs {config.epochs} epoch(s) — "
                        "the crash would never fire",
                        at_epoch=crash.at_epoch,
                        epochs=config.epochs,
                    )
                )
            elif (
                crash.restart_after is not None
                and crash.at_epoch + crash.restart_after
                + config.probation_epochs >= config.epochs
            ):
                findings.append(
                    self.finding(
                        f"crash/h{crash.host}",
                        "crash window plus probation "
                        f"({crash.at_epoch}+{crash.restart_after}"
                        f"+{config.probation_epochs}) runs past the "
                        f"{config.epochs}-epoch horizon — the host never "
                        "re-admits",
                        severity=Severity.WARN,
                        at_epoch=crash.at_epoch,
                        restart_after=crash.restart_after,
                        epochs=config.epochs,
                    )
                )
        for kind, links in (
            ("partition", plan.partitions), ("degradation", plan.degradations)
        ):
            for link in links:
                if link.at_epoch >= config.epochs:
                    findings.append(
                        self.finding(
                            f"{kind}/h{link.host_a}-h{link.host_b}",
                            f"{kind} armed at epoch {link.at_epoch} beyond "
                            f"the {config.epochs}-epoch horizon",
                            at_epoch=link.at_epoch,
                            epochs=config.epochs,
                        )
                    )
        return findings


class FailoverBudgetUsable(AuditRule):
    """Crashes planned with a zero re-dispatch budget contradict the
    failover engine: every re-homed backlog would drop immediately."""

    rule_id = "failover-retry-budget-zero"
    remediation = (
        "set failover_retry_budget >= 1 or remove the planned crashes"
    )

    def check(self, config) -> list[Finding]:
        plan = getattr(config, "faults", None)
        if plan is None or not plan.crashes:
            return []
        if config.failover_retry_budget >= 1:
            return []
        return [
            self.finding(
                "fleet",
                f"{len(plan.crashes)} host crash(es) planned but the "
                "failover retry budget is zero — every re-homed backlog "
                "would be dropped without a single re-dispatch attempt",
                crashes=len(plan.crashes),
                budget=config.failover_retry_budget,
            )
        ]


class ChaosLeavesSurvivors(AuditRule):
    """At least one host must stay up at every epoch: with the whole
    fleet down there is no ring left to re-home shards onto."""

    rule_id = "chaos-total-outage"
    remediation = "stagger crash windows so at least one host survives"

    def check(self, config) -> list[Finding]:
        plan = getattr(config, "faults", None)
        if plan is None or not plan.crashes:
            return []
        crashed = {c.host for c in plan.crashes if 0 <= c.host < config.hosts}
        if len(crashed) < config.hosts:
            return []
        for epoch in range(config.epochs):
            down = plan.down_hosts_at(epoch)
            if len(down) >= config.hosts:
                return [
                    self.finding(
                        "fleet",
                        f"every host is down at epoch {epoch} — no "
                        "surviving shard exists to re-home work onto",
                        epoch=epoch,
                    )
                ]
        return []


FLEET_SCALAR_RULES = (
    HostsPositive(),
    ShardsPositive(),
    CoresPositive(),
    ValidatorsPositive(),
    AppCoresPositive(),
    EpochsSufficient(),
    EpochSpanPositive(),
    MinCoverageInRange(),
    FleetWatchdogWithinSlo(),
    QuarantineWithinTopology(),
)

#: fault-plan contradictions (only run when the config carries a plan)
FLEET_CHAOS_RULES = (
    ChaosHostsKnown(),
    CrashWindowWithinHorizon(),
    FailoverBudgetUsable(),
    ChaosLeavesSurvivors(),
)

FLEET_STRUCTURAL_RULES = (
    ShardsFitUsableCores(),
    ValidatorPoolUsable(),
)

#: scalar rules whose violation makes the host/shard views meaningless —
#: structural rules are skipped only when one of THESE fires, so e.g. a
#: watchdog/SLO contradiction cannot hide a quarantined validator pool
_FLEET_SHAPE_RULES = frozenset(
    rule.rule_id
    for rule in (
        HostsPositive(),
        ShardsPositive(),
        CoresPositive(),
        ValidatorsPositive(),
        AppCoresPositive(),
        QuarantineWithinTopology(),
    )
)


def audit_fleet_config(config) -> list[Finding]:
    """Scalar fleet invariants (no topology needed).  Fault-plan rules
    ride along whenever the config carries a chaos plan, so the topology
    constructor fails closed on chaos contradictions too."""
    findings = []
    for rule in FLEET_SCALAR_RULES:
        findings.extend(rule.check(config))
    if getattr(config, "faults", None) is not None:
        for rule in FLEET_CHAOS_RULES:
            findings.extend(rule.check(config))
    return findings


def audit_fleet_topology(topology) -> list[Finding]:
    """Structural fleet invariants over materialized host/shard views."""
    findings = []
    for rule in FLEET_STRUCTURAL_RULES:
        findings.extend(rule.check(topology))
    return findings


def audit_fleet(config) -> AuditReport:
    """Statically audit one fleet config (the ``doctor`` entry point).

    Structural rules need materialized views; they only run when the
    scalar pass is clean enough to build them safely.
    """
    report = AuditReport(targets=["fleet"])
    report.run(FLEET_SCALAR_RULES, config)
    if getattr(config, "faults", None) is not None:
        report.run(FLEET_CHAOS_RULES, config)
    shape_ok = not any(f.rule in _FLEET_SHAPE_RULES for f in report.errors)
    if shape_ok:
        from repro.fleet.topology import FleetTopology

        report.run(FLEET_STRUCTURAL_RULES, FleetTopology.unchecked(config))
    return report


# ----------------------------------------------------------------------
# runtime drift probes
# ----------------------------------------------------------------------

#: the drift rule ids a DriftMonitor can raise
DRIFT_RULES = (
    "drift-coverage-floor",
    "drift-validator-pool",
    "drift-ledger-residual",
    "drift-canary-liveness",
)


@dataclass(slots=True)
class AuditConfig:
    """Runtime drift-probe knobs; set ``PipelineConfig.audit`` to enable."""

    #: virtual seconds between drift probes (matches the fault-tolerance
    #: plane's default check interval, so short CI runs still warm up)
    cadence: float = 25e-6
    #: probes skipped before coverage/pool drift may flag (startup
    #: transients: the first logs are still in flight)
    warmup_probes: int = 2
    #: declared organic coverage floor; None derives the sampler min_rate
    coverage_floor: float | None = None
    #: declared validator pool size; None derives ``validation_cores``
    declared_pool: int | None = None
    #: consecutive stalled probes (work outstanding, nothing settling)
    #: before the conservation-ledger residual rule fires
    residual_probes: int = 3

    def violations(self) -> list[str]:
        found = []
        if self.cadence <= 0:
            found.append("audit cadence must be positive")
        if self.warmup_probes < 0:
            found.append("audit warmup_probes must be >= 0")
        if self.coverage_floor is not None and not (
            0.0 <= self.coverage_floor <= 1.0
        ):
            found.append("audit coverage_floor must be in [0, 1]")
        if self.declared_pool is not None and self.declared_pool < 1:
            found.append("audit declared_pool must be >= 1")
        if self.residual_probes < 1:
            found.append("audit residual_probes must be >= 1")
        return found

    def validate(self) -> None:
        for message in self.violations():
            raise ConfigurationError(message)


class DriftMonitor:
    """Periodic declared-vs-observed comparison inside the DES.

    Drivers call :meth:`verdict` as validators produce verdicts and
    :meth:`probe` on the audit cadence (plus once from
    :meth:`finalize`).  Violations emit ``audit.violation`` trace events
    on the transition into the violated state (and ``audit.recover`` on
    the way out), bump ``orthrus_audit_violations_total{rule=...}``, and
    persist as findings in the terminal :meth:`payload`.
    """

    def __init__(
        self,
        config: AuditConfig,
        *,
        declared_pool: int,
        coverage_floor: float,
        metrics=None,
        obs=None,
        exposure=None,
    ):
        config.validate()
        self.config = config
        self._obs = obs if obs is not None else NULL_OBS
        self._metrics = metrics
        self._exposure = exposure
        self._declared_pool = (
            config.declared_pool
            if config.declared_pool is not None
            else declared_pool
        )
        self._coverage_floor = (
            config.coverage_floor
            if config.coverage_floor is not None
            else coverage_floor
        )
        self._ledger = None
        self._canary = None
        self._verdict_cores: set[int] = set()
        self.probes = 0
        self.violation_count = 0
        self._findings: dict[tuple, Finding] = {}
        self._active: set[tuple] = set()
        self._stalled_probes = 0
        self._last_accounted = -1
        self._canary_missed_seen = 0

    # -- wiring ---------------------------------------------------------
    def attach_ledger(self, ledger) -> None:
        """Watch a :class:`ValidationLedger` for conservation residuals."""
        self._ledger = ledger

    def attach_canary(self, monitor) -> None:
        """Watch a :class:`LivenessMonitor` for missed probes."""
        self._canary = monitor

    def verdict(self, core_id: int) -> None:
        """A validator core produced a verdict (evidence it is alive)."""
        self._verdict_cores.add(core_id)

    @property
    def findings(self) -> list[Finding]:
        return merge_findings(self._findings.values())

    # -- violation bookkeeping ------------------------------------------
    def _flag(
        self,
        rule: str,
        subject: str,
        message: str,
        now: float,
        severity: str = Severity.ERROR,
        remediation: str = "",
        **observed,
    ) -> None:
        self._findings[(rule, subject)] = Finding(
            rule=rule,
            severity=severity,
            subject=subject,
            message=message,
            remediation=remediation,
            observed=tuple(sorted(observed.items())),
        )
        key = (rule, subject)
        if key in self._active:
            return
        self._active.add(key)
        self.violation_count += 1
        if self._obs.enabled:
            self._obs.registry.counter(
                "orthrus_audit_violations_total",
                {"rule": rule},
                help="runtime drift-probe violations by rule",
            ).inc()
            self._obs.tracer.emit(
                "audit.violation",
                ts=now,
                rule=rule,
                subject=subject,
                message=message,
                **dict(observed),
            )

    def _clear(self, rule: str, subject: str, now: float) -> None:
        key = (rule, subject)
        if key not in self._active:
            return
        self._active.discard(key)
        if self._obs.enabled:
            self._obs.tracer.emit(
                "audit.recover", ts=now, rule=rule, subject=subject
            )

    # -- the probes -----------------------------------------------------
    def probe(self, now: float) -> None:
        """One declared-vs-observed pass (driver calls on the cadence)."""
        self.probes += 1
        warm = self.probes > self.config.warmup_probes
        metrics = self._metrics
        validated = float(getattr(metrics, "validated", 0) or 0)
        skipped = float(getattr(metrics, "skipped", 0) or 0)
        operations = float(getattr(metrics, "operations", 0) or 0)

        # declared coverage floor vs observed organic coverage
        decided = validated + skipped
        if warm and decided >= 16:
            coverage = validated / decided
            if coverage < self._coverage_floor:
                self._flag(
                    "drift-coverage-floor",
                    "sampler",
                    f"observed organic coverage {coverage:.1%} is below the "
                    f"declared floor {self._coverage_floor:.1%}",
                    now,
                    remediation=(
                        "add validator capacity or lower the declared floor"
                    ),
                    coverage=round(coverage, 6),
                    floor=self._coverage_floor,
                )
            else:
                self._clear("drift-coverage-floor", "sampler", now)

        # declared validator pool vs cores that actually produced verdicts
        active = len(self._verdict_cores)
        spoke_up = validated >= 4 * self._declared_pool or (
            validated == 0 and operations >= 16
        )
        if warm and active < self._declared_pool and spoke_up:
            self._flag(
                "drift-validator-pool",
                "validators",
                f"declared pool of {self._declared_pool} validator core(s) "
                f"but only {active} produced verdicts",
                now,
                remediation=(
                    "check for hung/crashed validators or shrink the "
                    "declared pool"
                ),
                declared=self._declared_pool,
                observed_cores=active,
            )
        elif active >= self._declared_pool:
            self._clear("drift-validator-pool", "validators", now)

        # conservation-ledger residual: outstanding work, nothing settling
        if self._ledger is not None:
            outstanding = int(getattr(self._ledger, "outstanding", 0))
            accounted = int(getattr(self._ledger, "accounted", 0))
            progressed = accounted != self._last_accounted
            self._last_accounted = accounted
            if outstanding > 0 and not progressed:
                self._stalled_probes += 1
            else:
                self._stalled_probes = 0
                self._clear("drift-ledger-residual", "ledger", now)
            if self._stalled_probes >= self.config.residual_probes:
                self._flag(
                    "drift-ledger-residual",
                    "ledger",
                    f"{outstanding} closure log(s) outstanding with no "
                    f"settlement for {self._stalled_probes} probe(s)",
                    now,
                    remediation=(
                        "check the watchdog deadline and validator liveness"
                    ),
                    outstanding=outstanding,
                )

        # canary liveness vs plan
        if self._canary is not None:
            missed = int(getattr(self._canary, "missed", 0))
            if missed > self._canary_missed_seen:
                self._canary_missed_seen = missed
                self._flag(
                    "drift-canary-liveness",
                    "canary",
                    f"{missed} canary probe(s) missed their detection "
                    "deadline",
                    now,
                    remediation="the plane is not detecting — see canary "
                    "events for the stall window",
                    missed=missed,
                )

    def finalize(self, now: float) -> dict:
        """Terminal sweep + the run's ``orthrus-audit/1`` payload."""
        self.probe(now)
        if self._ledger is not None:
            outstanding = int(getattr(self._ledger, "outstanding", 0))
            if outstanding > 0:
                self._flag(
                    "drift-ledger-residual",
                    "ledger",
                    f"run ended with {outstanding} closure log(s) never "
                    "reaching a terminal state",
                    now,
                    remediation=(
                        "check the watchdog deadline and validator liveness"
                    ),
                    outstanding=outstanding,
                )
        return self.payload()

    def payload(self) -> dict:
        findings = self.findings
        errors = [f for f in findings if f.severity == Severity.ERROR]
        warnings = [f for f in findings if f.severity == Severity.WARN]
        payload = {
            "format": AUDIT_FORMAT,
            "targets": ["runtime"],
            "rules_run": len(DRIFT_RULES),
            "probes": self.probes,
            "summary": {
                "errors": len(errors),
                "warnings": len(warnings),
                "ok": not errors,
            },
            "findings": [f.to_dict() for f in findings],
        }
        if self._exposure is not None:
            payload["exposure"] = self._exposure.to_dict()
        return payload
