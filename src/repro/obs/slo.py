"""Service-level objectives over the time-series recorder.

Declarative objectives (``p95 detection latency ≤ X sim-ms``, ``sampler
skip rate ≤ Y``) are evaluated against :class:`TimeSeriesRecorder` series
on every sampling tick.  Each objective aggregates its series over a
trailing *window* and — when a shorter *burn window* is configured —
enters the breached state only when both the long and the short window
violate the target (the SRE multi-window burn-rate rule: the long window
filters noise, the short window confirms the breach is still burning).
Transitions emit ``slo.breach`` / ``slo.recover`` trace events; the
terminal :class:`SloReport` summarizes compliance per objective.

The monitor also carries *anomaly hooks*: EWMA + z-score detectors over
the lag/depth series.  A sample whose z-score exceeds the threshold is an
anomaly; lag and depth anomalous **together** is the validator-starvation
regime (validators cannot keep up, so the queue grows *and* every
validated log is old).  Flags feed :meth:`DetectionReport.flag_anomaly`
so a run's detection summary carries its telemetry verdicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.timeseries import TimeSeriesRecorder

__all__ = [
    "SloObjective",
    "SloMonitor",
    "SloReport",
    "ObjectiveResult",
    "EwmaAnomalyDetector",
    "default_objectives",
]

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
}

#: duration-suffix multipliers for SloObjective.parse thresholds
_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0, "": 1.0, "%": 0.01}


@dataclass(frozen=True, slots=True)
class SloObjective:
    """One declarative objective: ``stat(series) over window OP threshold``."""

    name: str
    series: str
    #: bucket stat aggregated over the window: mean/min/max/p50/p95/last
    stat: str
    op: str
    threshold: float
    #: trailing window in sim-seconds; None = everything recorded so far
    window: float | None = None
    #: short confirmation window (burn-rate rule); None = long window only
    burn_window: float | None = None
    #: ignore the objective until the series holds this many raw samples
    min_samples: int = 1

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO op {self.op!r}; use <= or >=")

    def satisfied_by(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    @classmethod
    def parse(cls, spec: str, window: float | None = None) -> "SloObjective":
        """Parse ``"<series> <stat> <op> <value>[unit]"``.

        e.g. ``"validation_lag_p95 p95 <= 200us"`` or
        ``"sampler_skip_rate mean <= 60%"``.  The CLI ``--slo`` flag feeds
        this.
        """
        parts = spec.split()
        if len(parts) != 4:
            raise ValueError(
                f"bad SLO spec {spec!r}; expected '<series> <stat> <op> <value>'"
            )
        series, stat, op, raw = parts
        unit = ""
        for candidate in ("ns", "us", "ms", "s", "%"):
            if raw.endswith(candidate):
                unit = candidate
                raw = raw[: -len(candidate)]
                break
        try:
            threshold = float(raw) * _UNITS[unit]
        except ValueError:
            raise ValueError(f"bad SLO threshold in spec {spec!r}")
        return cls(
            name=f"{series}.{stat}{op}{threshold:g}",
            series=series,
            stat=stat,
            op=op,
            threshold=threshold,
            window=window,
        )


def default_objectives(
    lag_p95_ceiling: float = 1e-3, window: float | None = None
) -> list[SloObjective]:
    """The stock pipeline objectives: timely detection + bounded skipping.

    ``lag_p95_ceiling`` is the detection-latency SLO in sim-seconds (the
    paper's timeliness claim: a corruption is caught while its closure's
    versions are still held, i.e. within ~one drain window).
    """
    return [
        SloObjective(
            name="detection-latency",
            series="validation_lag_p95",
            stat="p95",
            op="<=",
            threshold=lag_p95_ceiling,
            window=window,
        ),
        SloObjective(
            name="coverage-floor",
            series="sampler_skip_rate",
            stat="mean",
            op="<=",
            threshold=0.9,
            window=window,
            min_samples=4,
        ),
    ]


class EwmaAnomalyDetector:
    """EWMA mean/variance with z-score flagging, one detector per series.

    ``update`` returns the z-score of the sample against the *previous*
    estimate (so a spike is judged against history, not against itself),
    then folds the sample in.  The first ``warmup`` samples never flag.
    """

    def __init__(self, alpha: float = 0.2, z_threshold: float = 4.0, warmup: int = 8):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.mean = 0.0
        self.var = 0.0
        self.n = 0

    def update(self, value: float) -> tuple[bool, float]:
        """Feed one sample; returns (anomalous, z_score)."""
        self.n += 1
        if self.n == 1:
            self.mean = value
            return False, 0.0
        deviation = value - self.mean
        std = math.sqrt(self.var)
        z = abs(deviation) / std if std > 0 else 0.0
        anomalous = self.n > self.warmup and std > 0 and z >= self.z_threshold
        # EWMA updates (Roberts / West): variance first, against the old
        # mean, so the estimate the z-score used is the one we evolve.
        self.var = (1 - self.alpha) * (self.var + self.alpha * deviation**2)
        self.mean += self.alpha * deviation
        return anomalous, z


@dataclass
class ObjectiveResult:
    """Terminal per-objective rollup inside the :class:`SloReport`."""

    objective: SloObjective
    evaluations: int = 0
    compliant: int = 0
    breaches: int = 0
    breached_now: bool = False
    breach_time: float = 0.0
    worst_value: float | None = None
    last_value: float | None = None
    _breach_started: float | None = None

    @property
    def evaluated(self) -> bool:
        return self.evaluations > 0

    @property
    def compliance(self) -> float:
        if self.evaluations == 0:
            return 1.0
        return self.compliant / self.evaluations

    def as_dict(self) -> dict:
        objective = self.objective
        return {
            "name": objective.name,
            "series": objective.series,
            "stat": objective.stat,
            "op": objective.op,
            "threshold": objective.threshold,
            "window": objective.window,
            "evaluations": self.evaluations,
            "compliance": self.compliance,
            "breaches": self.breaches,
            "breached_now": self.breached_now,
            "breach_time": self.breach_time,
            "worst_value": self.worst_value,
            "last_value": self.last_value,
        }


@dataclass
class SloReport:
    """Everything the monitor concluded, JSON-able."""

    results: list[ObjectiveResult] = field(default_factory=list)
    anomalies: list[dict] = field(default_factory=list)

    @property
    def evaluated_objectives(self) -> int:
        return sum(1 for result in self.results if result.evaluated)

    @property
    def breached_objectives(self) -> int:
        return sum(1 for result in self.results if result.breaches > 0)

    @property
    def ok(self) -> bool:
        return all(not result.breached_now for result in self.results)

    def as_dict(self) -> dict:
        return {
            "format": "orthrus-slo/1",
            "objectives": [result.as_dict() for result in self.results],
            "anomalies": list(self.anomalies),
        }

    def summary_lines(self) -> list[str]:
        lines = []
        for result in self.results:
            objective = result.objective
            if not result.evaluated:
                lines.append(f"slo {objective.name:<24}: not evaluated (no data)")
                continue
            status = "BREACHED" if result.breached_now else (
                "ok" if result.breaches == 0 else "recovered"
            )
            lines.append(
                f"slo {objective.name:<24}: {status}  "
                f"{objective.stat}({objective.series}) {objective.op} "
                f"{objective.threshold:g} — last {result.last_value:.3g}, "
                f"worst {result.worst_value:.3g}, "
                f"compliance {result.compliance:.1%} "
                f"({result.breaches} breach(es))"
            )
        if self.anomalies:
            regimes: dict[str, int] = {}
            for anomaly in self.anomalies:
                regimes[anomaly["regime"]] = regimes.get(anomaly["regime"], 0) + 1
            rollup = ", ".join(f"{k}={v}" for k, v in sorted(regimes.items()))
            lines.append(f"anomalies                    : {rollup}")
        return lines


class SloMonitor:
    """Evaluates objectives (and anomaly hooks) on every recorder tick."""

    #: series the EWMA/z-score hooks watch, and the starvation pairing
    LAG_SERIES = "validation_lag_p95"
    DEPTH_SERIES = "queue_depth"

    def __init__(
        self,
        recorder: TimeSeriesRecorder,
        objectives: list[SloObjective] | None = None,
        tracer=None,
        report=None,
        anomaly_alpha: float = 0.2,
        anomaly_z: float = 4.0,
    ):
        self.recorder = recorder
        self.objectives = list(objectives) if objectives else []
        self.tracer = tracer
        #: a DetectionReport (or anything with flag_anomaly) to feed
        self.report = report
        self._results = {
            id(objective): ObjectiveResult(objective) for objective in self.objectives
        }
        self._detectors = {
            self.LAG_SERIES: EwmaAnomalyDetector(anomaly_alpha, anomaly_z),
            self.DEPTH_SERIES: EwmaAnomalyDetector(anomaly_alpha, anomaly_z),
        }
        self._fed: dict[str, int] = {name: 0 for name in self._detectors}
        self.anomalies: list[dict] = []
        # register on the recorder so drivers only pump one object
        recorder.listeners.append(self.evaluate)

    # ------------------------------------------------------------------
    def _window_value(self, objective: SloObjective, now: float, span: float | None):
        series = self.recorder.series(objective.series)
        if series is None or series.empty:
            return None
        if series.total_samples < objective.min_samples:
            return None
        start = -math.inf if span is None else now - span
        window = series.window(start, now)
        if window.count == 0:
            return None
        return window.stat(objective.stat)

    def evaluate(self, _recorder, now: float) -> None:
        """One evaluation pass; recorder listeners call this per sample."""
        for objective in self.objectives:
            result = self._results[id(objective)]
            value = self._window_value(objective, now, objective.window)
            if value is None:
                continue
            result.evaluations += 1
            result.last_value = value
            if result.worst_value is None:
                result.worst_value = value
            elif objective.op == "<=":
                result.worst_value = max(result.worst_value, value)
            else:
                result.worst_value = min(result.worst_value, value)
            violated = not objective.satisfied_by(value)
            if violated and objective.burn_window is not None:
                # burn-rate confirmation: the short window must also burn
                short = self._window_value(objective, now, objective.burn_window)
                violated = short is not None and not objective.satisfied_by(short)
            if violated:
                if not result.breached_now:
                    result.breached_now = True
                    result.breaches += 1
                    result._breach_started = now
                    if self.tracer is not None:
                        self.tracer.emit(
                            "slo.breach",
                            ts=now,
                            objective=objective.name,
                            series=objective.series,
                            stat=objective.stat,
                            value=value,
                            threshold=objective.threshold,
                        )
            else:
                result.compliant += 1
                if result.breached_now:
                    result.breached_now = False
                    if result._breach_started is not None:
                        result.breach_time += now - result._breach_started
                        result._breach_started = None
                    if self.tracer is not None:
                        self.tracer.emit(
                            "slo.recover",
                            ts=now,
                            objective=objective.name,
                            series=objective.series,
                            stat=objective.stat,
                            value=value,
                            threshold=objective.threshold,
                        )
        self._evaluate_anomalies(now)

    def _evaluate_anomalies(self, now: float) -> None:
        flagged: dict[str, tuple[float, float]] = {}
        for name, detector in self._detectors.items():
            series = self.recorder.series(name)
            if series is None or series.empty:
                continue
            # feed only genuinely new samples (the recorder may tick with
            # no data for a series, e.g. no validations this interval)
            if series.total_samples <= self._fed[name]:
                continue
            self._fed[name] = series.total_samples
            value = series.latest("last")
            anomalous, z = detector.update(value)
            if anomalous:
                flagged[name] = (value, z)
        if not flagged:
            return
        if self.LAG_SERIES in flagged and self.DEPTH_SERIES in flagged:
            regime = "validator-starvation"
        elif self.LAG_SERIES in flagged:
            regime = "lag-spike"
        else:
            regime = "depth-spike"
        for name, (value, z) in flagged.items():
            record = {
                "time": now,
                "series": name,
                "regime": regime,
                "value": value,
                "zscore": z,
            }
            self.anomalies.append(record)
            if self.report is not None:
                self.report.flag_anomaly(
                    time=now, series=name, regime=regime, value=value, zscore=z
                )
            if self.tracer is not None:
                self.tracer.emit(
                    "anomaly.flag",
                    ts=now,
                    series=name,
                    regime=regime,
                    value=value,
                    zscore=z,
                )

    # ------------------------------------------------------------------
    def finalize(self, now: float) -> SloReport:
        """Close open breach intervals and build the terminal report."""
        for result in self._results.values():
            if result.breached_now and result._breach_started is not None:
                result.breach_time += now - result._breach_started
                result._breach_started = None
        report = SloReport(
            results=[self._results[id(o)] for o in self.objectives],
            anomalies=list(self.anomalies),
        )
        return report
