"""Wall-clock self-profiling for the simulator itself.

Every other observability layer in :mod:`repro.obs` measures the
*simulated* world in virtual time.  This module measures the *simulator*:
where its own wall-clock time goes (machine execute, event-queue push/pop,
validator compare, closure analysis, memory versioning, sampler decisions,
fleet merge), how many engine events and simulated instructions it retires
per wall second, and — via an optional ``sys.setprofile`` hook capped at an
overhead budget — which Python frames burn the rest.  It is the
measurement foundation the ROADMAP item-1 kernel rewrite is gated on.

Design rules, carried from the NULL_OBS discipline of PRs 1/4/6:

* **Wall time never enters a determinism digest.**  The profiler observes;
  it does not participate.  Run digests, fleet digests, and bench config
  digests are computed from virtual-time state only, and the parity tests
  prove profiler on/off yields byte-identical digests.
* **Disabled means free.**  :data:`NULL_PROFILER` is a shared no-op; every
  instrumentation site either checks ``prof.enabled`` first or uses a
  scope object whose disabled form does nothing.
* **Ambient, not plumbed.**  Deep subsystems (the versioned heap, the
  validator, the fleet merge) read the module-level :func:`active`
  profiler installed by :func:`activation` instead of threading a handle
  through every constructor.  The DES drivers are single-threaded, so a
  module global is safe; fleet workers are separate processes and each
  install their own.

Exported artifact: ``orthrus-profile/1`` — a JSON dict with the
hierarchical timer tree (``nodes``), a per-subsystem self-time rollup
(``subsystems``), the events/instructions throughput meter, and (for
fleet runs) a per-worker utilization / straggler section.  The same
payload renders as a console table (:func:`render_profile`), a Prometheus
section (:func:`export_profile`), and a collapsed-stack file any
flamegraph tool accepts (:func:`collapsed_stacks`).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "NULL_PROFILER",
    "PROFILE_FORMAT",
    "ProfileConfig",
    "Profiler",
    "SamplingProfiler",
    "WallTimer",
    "activation",
    "active",
    "collapsed_stacks",
    "export_profile",
    "format_rate",
    "format_wall",
    "load_profile_json",
    "make_profiler",
    "merge_profiles",
    "render_profile",
    "share_attribution",
    "worker_summary",
    "write_collapsed",
    "write_profile_json",
]

PROFILE_FORMAT = "orthrus-profile/1"


# ----------------------------------------------------------------------
# the one formatting helper (the ad-hoc kop/s and wall-seconds renderers
# scattered across cli/fleet/benchtrack unify on these)
# ----------------------------------------------------------------------
def format_rate(value: float, unit: str = "op/s") -> str:
    """Human-scaled rate: ``843 op/s`` / ``97 kop/s`` / ``1.21 Mop/s``."""
    if value >= 1e9:
        return f"{value / 1e9:.2f} G{unit}"
    if value >= 1e6:
        return f"{value / 1e6:.2f} M{unit}"
    if value >= 1e3:
        return f"{value / 1e3:.0f} k{unit}"
    return f"{value:.0f} {unit}"


def format_wall(value: float) -> str:
    """Human-scaled wall seconds: ``1.95s`` / ``48.21ms`` / ``6.1us``."""
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


class WallTimer:
    """A perf_counter_ns stopwatch — the one wall-clock definition."""

    __slots__ = ("_t0",)

    def __init__(self):
        self._t0 = time.perf_counter_ns()

    def elapsed_s(self) -> float:
        return (time.perf_counter_ns() - self._t0) / 1e9


# ----------------------------------------------------------------------
# scoped hierarchical timer
# ----------------------------------------------------------------------
class _Scope:
    """One ``with prof.scope(name):`` activation; re-entrant and
    exception-safe (``__exit__`` always pops what ``__enter__`` pushed)."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Scope":
        self._profiler._stack.append(self._name)
        self._t0 = self._profiler._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        profiler = self._profiler
        elapsed = profiler._clock() - self._t0
        stack = profiler._stack
        path = tuple(stack)
        stack.pop()
        node = profiler._nodes.get(path)
        if node is None:
            profiler._nodes[path] = [1, elapsed]
        else:
            node[0] += 1
            node[1] += elapsed
        return False


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullProfiler:
    """Disabled profiler: every operation is a no-op.

    The shared :data:`NULL_PROFILER` instance is the ambient default, so
    an unprofiled run pays one attribute read per instrumentation site.
    """

    enabled = False
    events = 0
    instructions = 0
    sampler = None

    def scope(self, name: str) -> _NullScope:
        return _NULL_SCOPE

    def now(self) -> int:
        return 0

    def lap(self, name: str, t0_ns: int) -> None:
        pass

    def add_events(self, n: int) -> None:
        pass

    def add_instructions(self, n: int) -> None:
        pass

    def stop(self) -> None:
        pass


NULL_PROFILER = NullProfiler()


class Profiler:
    """Low-overhead hierarchical subsystem timer over ``perf_counter_ns``.

    Two recording forms:

    * ``with prof.scope("validate.compare"):`` — pushes the name on the
      scope stack, so nested scopes build paths like
      ``driver.orthrus;validate.compare`` and self-time is computed per
      node at export;
    * ``t0 = prof.now(); ...; prof.lap("sim.queue.pop", t0)`` — a leaf
      measurement attributed under the *current* stack without the
      allocation of a context manager (for per-event hot paths).

    ``events`` / ``instructions`` feed the throughput meter: engine events
    and simulated machine instructions retired per wall second.
    """

    enabled = True

    def __init__(
        self,
        sample: bool = False,
        sample_budget: float = 0.02,
        _clock=time.perf_counter_ns,
    ):
        self._clock = _clock
        self._stack: list[str] = []
        #: path tuple -> [calls, total_ns]
        self._nodes: dict[tuple[str, ...], list[int]] = {}
        self._started_ns = _clock()
        self._stopped_ns: int | None = None
        self.events = 0
        self.instructions = 0
        self.sampler = (
            SamplingProfiler(budget=sample_budget, _clock=_clock) if sample else None
        )

    # -- recording -----------------------------------------------------
    def scope(self, name: str) -> _Scope:
        return _Scope(self, name)

    def now(self) -> int:
        return self._clock()

    def lap(self, name: str, t0_ns: int) -> None:
        """Attribute ``now - t0_ns`` to leaf ``name`` under the current
        scope stack."""
        elapsed = self._clock() - t0_ns
        path = (*self._stack, name)
        node = self._nodes.get(path)
        if node is None:
            self._nodes[path] = [1, elapsed]
        else:
            node[0] += 1
            node[1] += elapsed

    def add_events(self, n: int) -> None:
        self.events += n

    def add_instructions(self, n: int) -> None:
        self.instructions += n

    def stop(self) -> None:
        """Freeze the wall clock (idempotent) and detach the sampler."""
        if self._stopped_ns is None:
            self._stopped_ns = self._clock()
        if self.sampler is not None:
            self.sampler.uninstall()

    # -- export --------------------------------------------------------
    @property
    def wall_ns(self) -> int:
        end = self._stopped_ns if self._stopped_ns is not None else self._clock()
        return end - self._started_ns

    @property
    def wall_s(self) -> float:
        return self.wall_ns / 1e9

    def to_payload(self) -> dict:
        """The ``orthrus-profile/1`` dict."""
        payload = _payload_from_nodes(
            self._nodes, self.wall_ns, self.events, self.instructions
        )
        if self.sampler is not None:
            payload["sampler"] = self.sampler.summary()
            payload["sampler"]["stacks"] = self.sampler.collapsed()
        return payload

    def to_collapsed(self) -> list[str]:
        return collapsed_stacks(self.to_payload())

    def render_table(self) -> str:
        return render_profile(self.to_payload())


# ----------------------------------------------------------------------
# payload construction / manipulation (plain dicts: picklable, mergeable)
# ----------------------------------------------------------------------
def _self_times(nodes: dict[tuple[str, ...], list[int]]) -> dict[tuple[str, ...], int]:
    """Per-path self time: total minus the totals of direct children."""
    children_total: dict[tuple[str, ...], int] = {}
    for path, (_calls, total) in nodes.items():
        parent = path[:-1]
        if parent:
            children_total[parent] = children_total.get(parent, 0) + total
    return {
        path: max(0, total - children_total.get(path, 0))
        for path, (_calls, total) in nodes.items()
    }


def _payload_from_nodes(
    nodes: dict[tuple[str, ...], list[int]],
    wall_ns: int,
    events: int,
    instructions: int,
) -> dict:
    self_ns = _self_times(nodes)
    node_list = [
        {
            "path": ";".join(path),
            "calls": int(nodes[path][0]),
            "total_ns": int(nodes[path][1]),
            "self_ns": int(self_ns[path]),
        }
        for path in sorted(nodes)
    ]
    subsystems: dict[str, list[int]] = {}
    for path in nodes:
        leaf = path[-1]
        entry = subsystems.setdefault(leaf, [0, 0])
        entry[0] += nodes[path][0]
        entry[1] += self_ns[path]
    denom = max(1, wall_ns)
    wall_s = wall_ns / 1e9
    return {
        "format": PROFILE_FORMAT,
        "wall_s": wall_s,
        "events": int(events),
        "instructions": int(instructions),
        "events_per_s": events / wall_s if wall_s > 0 else 0.0,
        "instructions_per_s": instructions / wall_s if wall_s > 0 else 0.0,
        "nodes": node_list,
        "subsystems": [
            {
                "name": name,
                "calls": int(calls),
                "self_ns": int(ns),
                "share": ns / denom,
            }
            for name, (calls, ns) in sorted(
                subsystems.items(), key=lambda item: -item[1][1]
            )
        ],
    }


def _nodes_from_payload(payload: dict) -> dict[tuple[str, ...], list[int]]:
    return {
        tuple(node["path"].split(";")): [node["calls"], node["total_ns"]]
        for node in payload.get("nodes", ())
    }


def merge_profiles(payloads: list[dict], wall_s: float | None = None) -> dict:
    """Associative fold of ``orthrus-profile/1`` payloads.

    Node calls/times, events and instructions sum; wall defaults to the
    *maximum* input wall (the workers ran concurrently — the straggler
    sets the fleet's elapsed time).  Pass ``wall_s`` to override with a
    parent-measured elapsed time.  Any ``workers`` sections of the inputs
    are dropped; rebuild one with :func:`worker_summary`.
    """
    merged: dict[tuple[str, ...], list[int]] = {}
    events = instructions = 0
    max_wall = 0.0
    for payload in payloads:
        for path, (calls, total) in _nodes_from_payload(payload).items():
            node = merged.get(path)
            if node is None:
                merged[path] = [calls, total]
            else:
                node[0] += calls
                node[1] += total
        events += payload.get("events", 0)
        instructions += payload.get("instructions", 0)
        max_wall = max(max_wall, payload.get("wall_s", 0.0))
    wall = wall_s if wall_s is not None else max_wall
    return _payload_from_nodes(merged, int(wall * 1e9), events, instructions)


def worker_summary(payloads: list[dict]) -> dict:
    """Per-worker utilization and straggler attribution for a fleet run.

    ``busy_s`` is the worker's instrumented self time (everything its
    subsystem timers saw); ``utilization`` divides by its own wall.  The
    straggler — the worker whose wall clock bounds the fleet's elapsed
    time — is named explicitly so a skewed shard placement is one glance
    away.
    """
    workers = []
    for index, payload in enumerate(payloads):
        wall = payload.get("wall_s", 0.0)
        busy = sum(s["self_ns"] for s in payload.get("subsystems", ())) / 1e9
        workers.append(
            {
                "worker": index,
                "wall_s": wall,
                "busy_s": busy,
                "utilization": busy / wall if wall > 0 else 0.0,
                "events": payload.get("events", 0),
            }
        )
    straggler = max(workers, key=lambda w: w["wall_s"]) if workers else None
    return {
        "workers": workers,
        "straggler": (
            {"worker": straggler["worker"], "wall_s": straggler["wall_s"]}
            if straggler is not None
            else None
        ),
    }


def share_attribution(baseline: dict, current: dict) -> list[dict]:
    """Per-subsystem share movement between two profiles, biggest first.

    The top entry is the answer to "fig6 got 12% slower — *where*?":
    the subsystem whose share of wall time moved the most.
    """
    base = {s["name"]: s["share"] for s in baseline.get("subsystems", ())}
    cur = {s["name"]: s["share"] for s in current.get("subsystems", ())}
    moves = [
        {
            "name": name,
            "baseline_share": base.get(name, 0.0),
            "current_share": cur.get(name, 0.0),
            "delta": cur.get(name, 0.0) - base.get(name, 0.0),
        }
        for name in set(base) | set(cur)
    ]
    moves.sort(key=lambda m: (-abs(m["delta"]), m["name"]))
    return moves


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def collapsed_stacks(payload: dict) -> list[str]:
    """Collapsed-stack lines (``a;b;c <self_ns>``) for flamegraph tools.

    Sampling-profiler frames ride along under a ``py`` root so subsystem
    and Python-frame time are distinguishable in one graph.
    """
    lines = [
        f"{node['path']} {node['self_ns']}"
        for node in payload.get("nodes", ())
        if node["self_ns"] > 0
    ]
    sampler = payload.get("sampler")
    if sampler:
        lines.extend(sampler.get("stacks", ()))
    return lines


def write_collapsed(payload: dict, path: str) -> int:
    lines = collapsed_stacks(payload)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)


def write_profile_json(payload: dict, path: str) -> None:
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_profile_json(path: str) -> dict:
    import json

    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != PROFILE_FORMAT:
        raise ValueError(f"{path} is not an {PROFILE_FORMAT} artifact")
    return payload


def export_profile(payload: dict, registry) -> None:
    """Stamp the profile into a MetricsRegistry as ``profile_*`` families
    so the Prometheus exporter carries the self-accounting too."""
    for subsystem in payload.get("subsystems", ()):
        labels = {"subsystem": subsystem["name"]}
        registry.counter(
            "profile_subsystem_seconds_total",
            labels,
            help="wall-clock self time per simulator subsystem",
        ).inc(subsystem["self_ns"] / 1e9)
        registry.counter(
            "profile_subsystem_calls_total",
            labels,
            help="timed activations per simulator subsystem",
        ).inc(subsystem["calls"])
    registry.gauge(
        "profile_wall_seconds", help="profiled wall-clock duration"
    ).set(payload.get("wall_s", 0.0))
    registry.gauge(
        "profile_events_per_second",
        help="simulation-engine events retired per wall second",
    ).set(payload.get("events_per_s", 0.0))
    registry.gauge(
        "profile_instructions_per_second",
        help="simulated machine instructions retired per wall second",
    ).set(payload.get("instructions_per_s", 0.0))


def render_profile(payload: dict, top: int = 16) -> str:
    """Console table: throughput meter + subsystem share breakdown."""
    lines = [
        "self-profile"
        f" : wall {format_wall(payload.get('wall_s', 0.0))},"
        f" {format_rate(payload.get('events_per_s', 0.0), 'event/s')},"
        f" {format_rate(payload.get('instructions_per_s', 0.0), 'instr/s')}"
    ]
    subsystems = list(payload.get("subsystems", ()))[:top]
    if subsystems:
        width = max(len(s["name"]) for s in subsystems)
        lines.append(
            f"  {'subsystem'.ljust(width)}  {'calls':>10}  {'self':>10}  share"
        )
        for s in subsystems:
            lines.append(
                f"  {s['name'].ljust(width)}  {s['calls']:>10}"
                f"  {format_wall(s['self_ns'] / 1e9):>10}  {s['share']:6.1%}"
            )
    summary = worker_lines(payload)
    lines.extend(summary)
    sampler = payload.get("sampler")
    if sampler:
        status = "budget exhausted" if sampler.get("exhausted") else "within budget"
        lines.append(
            f"  py sampler: {sampler.get('frames', 0)} frames,"
            f" overhead {format_wall(sampler.get('overhead_ns', 0) / 1e9)}"
            f" ({status}, cap {sampler.get('budget_fraction', 0.0):.1%})"
        )
    return "\n".join(lines)


def worker_lines(payload: dict) -> list[str]:
    """Per-worker utilization lines (empty for single-process profiles)."""
    workers = payload.get("workers")
    if not workers:
        return []
    lines = []
    for worker in workers:
        lines.append(
            f"  worker {worker['worker']}: wall {format_wall(worker['wall_s'])},"
            f" busy {format_wall(worker['busy_s'])}"
            f" ({worker['utilization']:.0%} utilized),"
            f" {worker['events']} events"
        )
    straggler = payload.get("straggler")
    if straggler is not None:
        lines.append(
            f"  straggler: worker {straggler['worker']}"
            f" ({format_wall(straggler['wall_s'])} wall)"
        )
    return lines


# ----------------------------------------------------------------------
# the ambient (active) profiler
# ----------------------------------------------------------------------
_ACTIVE: Profiler | NullProfiler = NULL_PROFILER


def active() -> Profiler | NullProfiler:
    """The profiler deep subsystems record into (NULL_PROFILER when off)."""
    return _ACTIVE


@contextmanager
def activation(profiler: Profiler | NullProfiler):
    """Install ``profiler`` as the ambient profiler for the duration.

    Nests: an inner activation (e.g. a driver run inside a profiled
    benchmark) shadows and then restores the outer one.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler if profiler is not None else NULL_PROFILER
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# config plumbing for PipelineConfig.profile / run_fleet(profile=...)
# ----------------------------------------------------------------------
@dataclass
class ProfileConfig:
    """Knobs for a driver-owned profiler."""

    #: also install the sys.setprofile Python-frame sampler
    sample: bool = False
    #: sampler overhead cap as a fraction of elapsed wall time; the hook
    #: uninstalls itself when its self-measured cost crosses the cap
    sample_budget: float = 0.02


def make_profiler(spec) -> Profiler | NullProfiler:
    """Resolve a ``profile`` config value to a profiler instance.

    ``None`` → :data:`NULL_PROFILER`; ``True`` → a fresh :class:`Profiler`;
    a :class:`ProfileConfig` → a fresh profiler with those knobs; an
    existing :class:`Profiler` passes through unchanged (shared across
    runs — e.g. one profiler over a whole fault-injection campaign; the
    caller that built it owns install/stop/export).
    """
    if spec is None or spec is False:
        return NULL_PROFILER
    if isinstance(spec, (Profiler, NullProfiler)):
        return spec
    if spec is True:
        return Profiler()
    return Profiler(sample=spec.sample, sample_budget=spec.sample_budget)


# ----------------------------------------------------------------------
# optional Python-frame sampler (sys.setprofile) under an overhead budget
# ----------------------------------------------------------------------
class SamplingProfiler:
    """A ``sys.setprofile`` call/return profiler that polices itself.

    Every hook invocation measures its own cost; every ``check_every``
    events the accumulated overhead is compared against ``budget`` × the
    elapsed wall time, and the hook uninstalls itself the moment it
    crosses the cap (``exhausted`` records that it did).  Frames feed the
    same collapsed-stack export as the subsystem timers, under a ``py``
    root.  C-function events are ignored; stacks are depth-capped.
    """

    def __init__(
        self,
        budget: float = 0.02,
        check_every: int = 2048,
        max_depth: int = 24,
        _clock=time.perf_counter_ns,
    ):
        if budget < 0:
            raise ValueError(f"negative overhead budget {budget}")
        self.budget = budget
        self.check_every = max(1, check_every)
        self.max_depth = max_depth
        self._clock = _clock
        self.overhead_ns = 0
        self.exhausted = False
        self.frames = 0
        self._stack: list[tuple[str, int]] = []
        self._nodes: dict[tuple[str, ...], list[int]] = {}
        self._installed = False
        self._t0: int | None = None

    def install(self) -> None:
        if self._installed:
            return
        self._t0 = self._clock()
        self._installed = True
        sys.setprofile(self._hook)

    def uninstall(self) -> None:
        if self._installed:
            sys.setprofile(None)
            self._installed = False

    def _hook(self, frame, event, arg) -> None:
        t = self._clock()
        if event == "call":
            code = frame.f_code
            name = getattr(code, "co_qualname", None) or code.co_name
            self._stack.append((name, t))
        elif event == "return" and self._stack:
            name, entered = self._stack.pop()
            depth = min(len(self._stack), self.max_depth - 1)
            path = (*(n for n, _ in self._stack[:depth]), name)
            node = self._nodes.get(path)
            elapsed = t - entered
            if node is None:
                self._nodes[path] = [1, elapsed]
            else:
                node[0] += 1
                node[1] += elapsed
        self.frames += 1
        self.overhead_ns += self._clock() - t
        if self.frames % self.check_every == 0:
            elapsed_wall = self._clock() - self._t0
            if elapsed_wall > 0 and self.overhead_ns > self.budget * elapsed_wall:
                self.exhausted = True
                self.uninstall()

    def summary(self) -> dict:
        return {
            "budget_fraction": self.budget,
            "overhead_ns": int(self.overhead_ns),
            "exhausted": self.exhausted,
            "frames": self.frames,
            "paths": len(self._nodes),
        }

    def collapsed(self) -> list[str]:
        self_ns = _self_times(self._nodes)
        return [
            f"py;{';'.join(path)} {self_ns[path]}"
            for path in sorted(self._nodes)
            if self_ns[path] > 0
        ]
