"""Structured runtime tracing (the "T" of the obs layer).

The tracer is an append-only, in-memory buffer of flat, typed events
covering the closure lifecycle:

===================  ==========================================================
kind                 emitted when / key fields
===================  ==========================================================
``closure.run``      an annotated closure finishes its APP execution
                     (closure, caller, seq, core, end_time, cycles)
``queue.push``       its log enters a validation queue (queue, seq, depth)
``queue.pop``        the log is dequeued for validation (queue, seq, depth)
``sampler.decision`` the sampler chooses validate/skip
                     (seq, validate, reason, rate)
``validator.validate``  re-execution completed (seq, core, passed, latency)
``validator.skip``   the log was dropped unvalidated (seq)
``checksum.verify``  a first-load CRC probe ran (seq, obj, version, ok)
``reclaim.batch``    a reclamation pass ran (reclaimed, watermark,
                     open_windows)
===================  ==========================================================

Timestamps are the runtime's clock (virtual seconds under the simulation
drivers, logical ticks under the default clock).  Every event is
additionally tagged with ``event_seq`` — the tracer's monotonically
increasing emission counter — because concurrent queues can tie on the
clock; sorting a merged JSON-lines trace by ``event_seq`` restores the
total emission order.  Events are emitted in clock order per closure, so
a JSON-lines export replays the lifecycle:
``closure.run`` → ``queue.push`` → ``queue.pop`` → ``sampler.decision`` →
``validator.validate``/``validator.skip``.

:class:`NullTracer` is the disabled implementation: a shared singleton
whose ``emit`` is a no-op, so instrumented code pays one attribute check
(``tracer.enabled`` / ``obs.enabled``) and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(slots=True)
class TraceEvent:
    """One structured event: a kind, a timestamp, and flat fields.

    ``event_seq`` is the tracer's emission counter — distinct from the
    ``seq`` *field* many events carry, which identifies the closure
    execution.  Timestamps alone cannot totally order a JSON-lines trace
    (concurrent queues tie on the sim clock); ``event_seq`` can, even
    after traces from several runs or shards are merged post-hoc.
    """

    kind: str
    ts: float
    fields: dict[str, Any] = field(default_factory=dict)
    event_seq: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "event_seq": self.event_seq,
            "ts": self.ts,
            "kind": self.kind,
            **self.fields,
        }


class Tracer:
    """Recording tracer with a hard event cap (drops, never grows unbounded)."""

    enabled = True

    def __init__(self, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._max_events = max_events
        self._seq = 0

    def emit(self, kind: str, ts: float, **fields: Any) -> None:
        # The counter advances even for dropped events so a gap in
        # event_seq across the trailing drop marker is visible evidence
        # of how much was lost.
        self._seq += 1
        if len(self.events) >= self._max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(kind, ts, fields, event_seq=self._seq))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_seq(self, seq: int) -> list[TraceEvent]:
        """Every event of one closure execution, in emission order."""
        return [e for e in self.events if e.fields.get("seq") == seq]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._seq = 0


class NullTracer:
    """The zero-overhead disabled tracer (shared singleton)."""

    enabled = False
    events: tuple = ()
    dropped = 0

    def emit(self, kind: str, ts: float, **fields: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return []

    def for_seq(self, seq: int) -> list[TraceEvent]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
