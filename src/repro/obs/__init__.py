"""Observability layer: metrics registry, runtime tracing, exporters.

A dependency-light subsystem the rest of the pipeline threads through
(`OrthrusRuntime(obs=...)`, `PipelineConfig(obs=...)`), off by default via
the shared :data:`NULL_OBS` no-op.  See DESIGN.md §"Observability" for the
full metric/trace taxonomy.
"""

from repro.obs.canary import (
    CanaryConfig,
    CanaryScheduler,
    LivenessMonitor,
    is_canary_log,
)
from repro.obs.exporters import (
    console_summary,
    load_metrics_json,
    read_trace_jsonl,
    to_prometheus,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.latency import (
    LatencyAttribution,
    StageStats,
    attribute,
    format_seconds,
    render_waterfall,
    stage_stats_from_registry,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricFamily,
    MetricsRegistry,
    StreamingHistogram,
    default_latency_buckets,
    merge_snapshots,
)
from repro.obs.observability import NULL_OBS, Observability
from repro.obs.slo import (
    EwmaAnomalyDetector,
    SloMonitor,
    SloObjective,
    SloReport,
    default_objectives,
)
from repro.obs.spans import (
    NULL_SPANS,
    NullSpanTracer,
    Span,
    SpanTracer,
    load_spans_chrome,
    write_spans_chrome,
)
from repro.obs.timeseries import (
    TimeSeries,
    TimeSeriesConfig,
    TimeSeriesRecorder,
    install_canary_probes,
    install_default_probes,
    install_span_probes,
    load_timeline,
    render_sparkline,
    write_timeline_json,
)
from repro.obs.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "CanaryConfig",
    "CanaryScheduler",
    "Counter",
    "EwmaAnomalyDetector",
    "Gauge",
    "LatencyAttribution",
    "LivenessMonitor",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_SPANS",
    "NULL_TRACER",
    "NullSpanTracer",
    "NullTracer",
    "Observability",
    "SloMonitor",
    "SloObjective",
    "SloReport",
    "Span",
    "SpanTracer",
    "StageStats",
    "StreamingHistogram",
    "TimeSeries",
    "TimeSeriesConfig",
    "TimeSeriesRecorder",
    "TraceEvent",
    "Tracer",
    "attribute",
    "console_summary",
    "default_latency_buckets",
    "default_objectives",
    "format_seconds",
    "install_canary_probes",
    "install_default_probes",
    "install_span_probes",
    "is_canary_log",
    "load_metrics_json",
    "load_spans_chrome",
    "load_timeline",
    "merge_snapshots",
    "read_trace_jsonl",
    "render_sparkline",
    "render_waterfall",
    "stage_stats_from_registry",
    "to_prometheus",
    "write_metrics_json",
    "write_spans_chrome",
    "write_timeline_json",
    "write_trace_jsonl",
]
