"""Observability layer: metrics registry, runtime tracing, exporters.

A dependency-light subsystem the rest of the pipeline threads through
(`OrthrusRuntime(obs=...)`, `PipelineConfig(obs=...)`), off by default via
the shared :data:`NULL_OBS` no-op.  See DESIGN.md §"Observability" for the
full metric/trace taxonomy.
"""

from repro.obs.exporters import (
    console_summary,
    load_metrics_json,
    read_trace_jsonl,
    to_prometheus,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricFamily,
    MetricsRegistry,
    StreamingHistogram,
    default_latency_buckets,
)
from repro.obs.observability import NULL_OBS, Observability
from repro.obs.slo import (
    EwmaAnomalyDetector,
    SloMonitor,
    SloObjective,
    SloReport,
    default_objectives,
)
from repro.obs.timeseries import (
    TimeSeries,
    TimeSeriesConfig,
    TimeSeriesRecorder,
    install_default_probes,
    load_timeline,
    render_sparkline,
    write_timeline_json,
)
from repro.obs.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "Counter",
    "EwmaAnomalyDetector",
    "Gauge",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "SloMonitor",
    "SloObjective",
    "SloReport",
    "StreamingHistogram",
    "TimeSeries",
    "TimeSeriesConfig",
    "TimeSeriesRecorder",
    "TraceEvent",
    "Tracer",
    "console_summary",
    "default_latency_buckets",
    "default_objectives",
    "install_default_probes",
    "load_metrics_json",
    "load_timeline",
    "read_trace_jsonl",
    "render_sparkline",
    "to_prometheus",
    "write_metrics_json",
    "write_timeline_json",
    "write_trace_jsonl",
]
