"""Liveness canaries: proving the validation plane is still detecting.

A run that reports zero detections is ambiguous — either the hardware was
healthy or the detector was dead.  Dixit et al. resolve the ambiguity in
production fleets by continuously injecting probes with *known* answers;
this module does the same for the validation plane.  The
:class:`CanaryScheduler` mints closure logs whose recorded return value is
deliberately corrupted relative to what re-execution will produce, so a
live validator MUST raise a ``mismatch`` detection for every canary.  The
:class:`LivenessMonitor` holds each issued canary to a virtual-time
deadline: a canary that is not detected in time becomes a
``canary.missed`` event in the :class:`~repro.detection.DetectionReport`
— the alarm that fires when validators hang, queues wedge, or the
dispatch loop silently dies, *before* the degradation ladder notices the
backpressure.

Canary closures are namespaced (``canary.probe`` from caller
``canary``) and carry ``core_id == -1``:

* samplers must always validate them (a skipped canary proves nothing),
* detection accounting keeps them out of organic coverage numbers
  (:func:`repro.detection.is_canary_closure`), and
* incident response ignores them — a canary mismatch is the probe
  *working*, not a faulty core.

Schedules are deterministic: nonces come from
:func:`repro.determinism.derived_rng` under the run seed, so the same
seed yields the same canary stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.closures.log import ClosureLog
from repro.detection import CANARY_PREFIX, DetectionEvent, is_canary_closure
from repro.determinism import derived_rng
from repro.errors import ConfigurationError
from repro.obs.observability import NULL_OBS

__all__ = [
    "CANARY_CLOSURE",
    "CANARY_CALLER",
    "CanaryConfig",
    "CanaryScheduler",
    "LivenessMonitor",
    "is_canary_log",
    "canary_probe",
]

CANARY_CLOSURE = CANARY_PREFIX + "probe"
CANARY_CALLER = "canary"


def is_canary_log(log: ClosureLog) -> bool:
    """True for logs minted by the canary scheduler."""
    return is_canary_closure(log.closure_name)


def canary_probe(nonce: int) -> tuple[str, int]:
    """The canary closure body: pure, heap-free, trivially re-executable.

    Re-execution returns ``("canary", nonce)``; the scheduler records a
    *different* retval on the log, so comparison must diverge.
    """
    return ("canary", nonce)


@dataclass(slots=True)
class CanaryConfig:
    """Injection cadence and liveness SLO for canary probes."""

    #: virtual seconds between injected canaries (first at one period)
    period: float = 200e-6
    #: detection deadline per canary; a canary not detected within
    #: ``deadline`` of issue raises ``canary.missed``.  Defaults to 3x the
    #: period when unset.
    deadline: float = 0.0

    def __post_init__(self):
        if self.deadline <= 0.0:
            self.deadline = 3.0 * self.period
        self.validate()

    def violations(self) -> list[str]:
        found = []
        if self.period <= 0:
            found.append("canary period must be positive")
        if self.deadline <= 0:
            found.append("canary deadline must be positive")
        return found

    def validate(self) -> None:
        for message in self.violations():
            raise ConfigurationError(message)


class CanaryScheduler:
    """Mints deterministic known-corrupt closure logs.

    Each canary's recorded ``retval`` flips a bit of the nonce the probe
    will actually return, so validation re-execution is guaranteed to
    mismatch — a detection with a known arrival time, which is what makes
    missing it meaningful.
    """

    def __init__(self, config: CanaryConfig, seed: int):
        self.config = config
        self._rng = derived_rng(seed, "canary")
        self.minted = 0

    def next_log(self, seq: int, now: float) -> ClosureLog:
        """Build the next canary log, stamped at virtual time ``now``."""
        nonce = self._rng.getrandbits(32)
        self.minted += 1
        return ClosureLog(
            seq=seq,
            closure_name=CANARY_CLOSURE,
            caller=CANARY_CALLER,
            func=canary_probe,
            args=(nonce,),
            # The deliberate corruption: recorded retval != re-executed
            # retval.  No heap objects, versions, or syscalls are involved,
            # so the probe is invisible to reclamation and the app state.
            retval=("canary", nonce ^ 0x5DC),
            start_time=now,
            end_time=now,
            core_id=-1,
        )


@dataclass(slots=True)
class _Outstanding:
    seq: int
    issued_at: float
    deadline_at: float


@dataclass(slots=True)
class _CanaryCounts:
    issued: int = 0
    detected: int = 0
    missed: int = 0


class LivenessMonitor:
    """Holds issued canaries to their detection deadline.

    Drivers call :meth:`issue` when a canary enters the validation plane
    and :meth:`poll` periodically (and once at shutdown, via
    :meth:`finalize`).  ``poll`` scans the detection report for canary
    mismatches, settles detected probes, and converts overdue ones into
    ``canary.missed`` events fed straight back into the report — where the
    SLO/burn machinery and the CLI already look for incidents.
    """

    def __init__(self, config: CanaryConfig, report, obs=None):
        self.config = config
        self._report = report
        self._obs = obs if obs is not None else NULL_OBS
        self._outstanding: dict[int, _Outstanding] = {}
        self._events_seen = 0
        self._counts = _CanaryCounts()
        self.detection_latencies: list[float] = []
        #: virtual time of the first missed canary; None while all healthy
        self.first_missed_at: float | None = None

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    @property
    def issued(self) -> int:
        return self._counts.issued

    @property
    def detected(self) -> int:
        return self._counts.detected

    @property
    def missed(self) -> int:
        return self._counts.missed

    def next_deadline(self) -> float | None:
        """Earliest outstanding deadline (None when nothing is in flight)."""
        if not self._outstanding:
            return None
        return min(o.deadline_at for o in self._outstanding.values())

    def issue(self, log: ClosureLog, now: float) -> None:
        """A canary entered the validation plane; start its clock."""
        self._outstanding[log.seq] = _Outstanding(
            seq=log.seq,
            issued_at=now,
            deadline_at=now + self.config.deadline,
        )
        self._counts.issued += 1
        if self._obs.enabled:
            self._obs.registry.counter(
                "orthrus_canary_issued_total",
                help="canary probes injected into the validation plane",
            ).inc()
            self._obs.tracer.emit(
                "canary.issue", ts=now, seq=log.seq, deadline=self.config.deadline
            )

    def poll(self, now: float) -> list[int]:
        """Settle detections, then alarm on overdue canaries.

        Returns the seqs newly declared missed at this poll.
        """
        events = self._report.events
        for event in events[self._events_seen:]:
            if (
                event.kind == "mismatch"
                and is_canary_closure(event.closure)
                and event.seq in self._outstanding
            ):
                issued = self._outstanding.pop(event.seq)
                self._counts.detected += 1
                self.detection_latencies.append(event.time - issued.issued_at)
                if self._obs.enabled:
                    self._obs.registry.counter(
                        "orthrus_canary_detected_total",
                        help="canary probes detected by the validation plane",
                    ).inc()
        self._events_seen = len(events)

        newly_missed = [
            seq
            for seq, entry in self._outstanding.items()
            if now >= entry.deadline_at
        ]
        for seq in newly_missed:
            entry = self._outstanding.pop(seq)
            self._counts.missed += 1
            if self.first_missed_at is None:
                self.first_missed_at = now
            # Recorded directly (not via the runtime detection hook): a
            # missed canary is a liveness incident, not an SDC — it must
            # not trip abort policies or arbitration.
            self._report.record(
                DetectionEvent(
                    kind="canary.missed",
                    closure=CANARY_CLOSURE,
                    seq=seq,
                    time=now,
                    detail=(
                        f"canary issued at {entry.issued_at:.6g}s undetected "
                        f"after {self.config.deadline:.3g}s deadline"
                    ),
                )
            )
            self._events_seen = len(self._report.events)
            if self._obs.enabled:
                self._obs.registry.counter(
                    "orthrus_canary_missed_total",
                    help="canary probes not detected within their deadline",
                ).inc()
                self._obs.tracer.emit(
                    "canary.missed",
                    ts=now,
                    seq=seq,
                    issued_at=entry.issued_at,
                    deadline=self.config.deadline,
                )
        return newly_missed

    def finalize(self, now: float) -> None:
        """End-of-run sweep: canaries still outstanding past their deadline
        are missed; ones inside their window are forgiven (the run ended,
        not the detector)."""
        self.poll(now)
        self._outstanding.clear()

    def summary(self) -> dict:
        """JSON-able liveness rollup for run results and reports."""
        latencies = sorted(self.detection_latencies)
        return {
            "issued": self._counts.issued,
            "detected": self._counts.detected,
            "missed": self._counts.missed,
            "outstanding": len(self._outstanding),
            "first_missed_at": self.first_missed_at,
            "worst_detection_latency": latencies[-1] if latencies else 0.0,
            "deadline": self.config.deadline,
            "period": self.config.period,
        }
