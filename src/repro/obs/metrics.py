"""Metric primitives and the registry (the "M" of the obs layer).

Three instrument kinds, modelled on the Prometheus data model but
dependency-free:

* :class:`Counter` — monotonically increasing float;
* :class:`Gauge` — a settable value, or a *callback gauge* bound to a
  function sampled at snapshot time (used for queue depths, heap bytes and
  reclamation windows, so the hot path pays nothing);
* :class:`StreamingHistogram` — fixed log-spaced buckets, O(1) per
  ``record`` and mergeable across registries — unlike
  :class:`repro.sim.metrics.Histogram`, which keeps every sample and
  re-sorts on query, this is safe to leave on in a hot loop.

Metrics are grouped into *families*: one name + help + kind, with children
keyed by a label set — e.g. ``orthrus_validations_total{closure, caller}``
has one child counter per (closure, caller) pair.  The registry is the
single container a run exports; snapshots are plain dicts (JSON-able) and
round-trip through :meth:`MetricsRegistry.from_snapshot` so saved runs can
be re-rendered later (the ``obs-summary`` CLI subcommand).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "default_latency_buckets",
    "merge_snapshots",
]


def default_latency_buckets() -> list[float]:
    """Log-spaced bucket upper bounds from 1 ns to ~17 s (virtual time).

    Factor-2 spacing bounds the per-bucket percentile-estimation error at
    2x while keeping the family small enough (35 buckets) to snapshot and
    merge cheaply.
    """
    return [1e-9 * 2**i for i in range(35)]


def _label_key(labels: dict[str, str] | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict[str, str] | None = None):
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"labels": self.labels, "value": self.value}


class Gauge:
    """A value that can go up and down, or track a callback."""

    __slots__ = ("labels", "value", "_fn")

    def __init__(self, labels: dict[str, str] | None = None):
        self.labels = dict(labels) if labels else {}
        self.value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Bind the gauge to ``fn``, evaluated at read/snapshot time.

        This is the zero-hot-path-overhead form: nothing is recorded while
        the run executes; the value is sampled only when exported.
        """
        self._fn = fn

    def read(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self.value

    def snapshot(self) -> dict:
        return {"labels": self.labels, "value": self.read()}


class StreamingHistogram:
    """Fixed-bucket histogram: O(1) record, exact count/sum/min/max.

    Percentiles are estimated by linear interpolation inside the owning
    bucket (clamped to the observed min/max), which is the standard
    Prometheus-style trade: bounded memory and mergeability in exchange for
    a bounded relative error set by the bucket spacing.
    """

    __slots__ = ("labels", "bounds", "counts", "count", "sum", "_min", "_max")

    def __init__(
        self,
        labels: dict[str, str] | None = None,
        buckets: list[float] | None = None,
    ):
        self.labels = dict(labels) if labels else {}
        bounds = list(buckets) if buckets is not None else default_latency_buckets()
        if bounds != sorted(bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.bounds = bounds
        # counts[i] = samples <= bounds[i]; counts[-1] = overflow (+Inf)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, value: float, count: int) -> None:
        """Record ``count`` identical samples in O(1)."""
        if count <= 0:
            return
        self.counts[bisect_left(self.bounds, value)] += count
        self.count += count
        self.sum += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram with identical buckets into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- query surface (duck-compatible with sim.metrics.Histogram) ------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, p: float) -> float:
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else self._min
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                lo = max(lo, self._min)
                hi = min(hi, self._max)
                if hi <= lo:
                    return float(lo)
                frac = (rank - cumulative) / n
                return float(lo + (hi - lo) * frac)
            cumulative += n
        return float(self._max)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def snapshot(self) -> dict:
        return {
            "labels": self.labels,
            "count": self.count,
            "sum": self.sum,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "counts": list(self.counts),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": StreamingHistogram}


class MetricFamily:
    """All children of one metric name, keyed by label set."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help: str = "", buckets=None):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: dict[tuple, Any] = {}

    def child(self, labels: dict[str, str] | None = None):
        key = _label_key(labels)
        found = self.children.get(key)
        if found is None:
            if self.kind == "histogram":
                found = StreamingHistogram(labels, buckets=self.buckets)
            else:
                found = _KINDS[self.kind](labels)
            self.children[key] = found
        return found

    def total(self) -> float:
        """Sum of all children (counters/gauges) — the unlabeled view."""
        if self.kind == "histogram":
            return float(sum(child.count for child in self.children.values()))
        if self.kind == "gauge":
            return float(sum(child.read() for child in self.children.values()))
        return float(sum(child.value for child in self.children.values()))

    def snapshot(self) -> dict:
        entry: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": [child.snapshot() for child in self.children.values()],
        }
        if self.kind == "histogram":
            entry["buckets"] = list(
                self.buckets if self.buckets is not None else default_latency_buckets()
            )
        return entry


class MetricsRegistry:
    """Get-or-create container for every metric family of one run."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}

    # -- instrument accessors (hot path: two dict lookups) ---------------
    def _family(self, name: str, kind: str, help: str, buckets=None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = MetricFamily(name, kind, help, buckets)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, labels: dict[str, str] | None = None, help: str = "") -> Counter:
        return self._family(name, "counter", help).child(labels)

    def gauge(self, name: str, labels: dict[str, str] | None = None, help: str = "") -> Gauge:
        return self._family(name, "gauge", help).child(labels)

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        help: str = "",
        buckets: list[float] | None = None,
    ) -> StreamingHistogram:
        return self._family(name, "histogram", help, buckets).child(labels)

    # -- read surface -----------------------------------------------------
    def families(self) -> Iterator[MetricFamily]:
        return iter(self._families.values())

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        """The value of one series, or the family total when ``labels`` is
        None and the family is labeled; 0.0 for unknown metrics."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        if labels is None and _label_key(labels) not in family.children:
            return family.total()
        child = family.children.get(_label_key(labels))
        if child is None:
            return 0.0
        if family.kind == "gauge":
            return child.read()
        if family.kind == "histogram":
            return float(child.count)
        return child.value

    def series(self, name: str) -> list[tuple[dict[str, str], Any]]:
        """(labels, instrument) pairs for one family, [] when absent."""
        family = self._families.get(name)
        if family is None:
            return []
        return [(child.labels, child) for child in family.children.values()]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (fleet aggregation across shards)."""
        for family in other.families():
            for child in family.children.values():
                mine = self._family(
                    family.name, family.kind, family.help, family.buckets
                ).child(child.labels)
                if family.kind == "counter":
                    mine.value += child.value
                elif family.kind == "gauge":
                    mine.set(mine.value + child.read())
                else:
                    mine.merge(child)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a serialized ``orthrus-metrics/1`` snapshot into this
        registry — the cross-process form of :meth:`merge` (fleet workers
        ship snapshots, not live registries)."""
        self.merge(MetricsRegistry.from_snapshot(snapshot))

    # -- snapshot / restore -----------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able dict of every family (callback gauges sampled now)."""
        return {
            "format": "orthrus-metrics/1",
            "metrics": [f.snapshot() for f in self._families.values()],
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        Callback gauges come back as plain gauges frozen at the sampled
        value; everything else round-trips exactly.
        """
        if snapshot.get("format") != "orthrus-metrics/1":
            raise ValueError("not an orthrus-metrics/1 snapshot")
        registry = cls()
        for entry in snapshot["metrics"]:
            name, kind = entry["name"], entry["kind"]
            buckets = entry.get("buckets")
            for series in entry["series"]:
                labels = series["labels"] or None
                if kind == "counter":
                    registry.counter(name, labels, entry.get("help", "")).inc(
                        series["value"]
                    )
                elif kind == "gauge":
                    registry.gauge(name, labels, entry.get("help", "")).set(
                        series["value"]
                    )
                else:
                    hist = registry.histogram(
                        name, labels, entry.get("help", ""), buckets=buckets
                    )
                    hist.counts = list(series["counts"])
                    hist.count = series["count"]
                    hist.sum = series["sum"]
                    if hist.count:
                        hist._min = series["min"]
                        hist._max = series["max"]
        return registry


def merge_snapshots(snapshots) -> MetricsRegistry:
    """Fold an iterable of ``orthrus-metrics/1`` snapshots into one
    registry.  The merge is associative and (for identical bucket layouts)
    order-independent in every exported value, so fleet rollups do not
    depend on which worker reported first."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged
