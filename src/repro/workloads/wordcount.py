"""Synthetic text corpus for the Phoenix word-count workload (Table 1).

Stands in for the WMT news subset: word frequencies follow a Zipf
distribution over a fixed vocabulary (natural language is famously
Zipfian), split into fixed-size chunks the MapReduce splitter hands to
mappers.
"""

from __future__ import annotations

from collections import Counter

from repro.workloads.zipf import ZipfSampler

_SYLLABLES = (
    "ta", "ri", "mo", "ne", "ka", "lu", "se", "vi", "do", "pa",
    "ze", "ku", "ha", "re", "ny", "wo", "qi", "ba", "fe", "gu",
)


def make_vocabulary(size: int) -> list[str]:
    """Deterministic pronounceable vocabulary of ``size`` distinct words."""
    words = []
    n = len(_SYLLABLES)
    for index in range(size):
        parts = [_SYLLABLES[index % n]]
        rest = index // n
        while True:
            parts.append(_SYLLABLES[rest % n])
            rest //= n
            if rest == 0:
                break
        words.append("".join(parts))
    return words


class WordCountCorpus:
    """A seeded Zipfian corpus, chunked for map tasks."""

    def __init__(
        self,
        n_words: int = 20000,
        vocabulary_size: int = 500,
        words_per_chunk: int = 500,
        skew: float = 1.0,
        seed: int = 0,
    ):
        if words_per_chunk < 1:
            raise ValueError("chunks need at least one word")
        self.vocabulary = make_vocabulary(vocabulary_size)
        sampler = ZipfSampler(vocabulary_size, skew, seed=seed)
        ranks = sampler.sample_many(n_words)
        self._words = [self.vocabulary[rank] for rank in ranks]
        self.words_per_chunk = words_per_chunk

    @property
    def n_words(self) -> int:
        return len(self._words)

    def chunks(self) -> list[str]:
        """The corpus as whitespace-joined chunks (the splitter's output)."""
        out = []
        for start in range(0, len(self._words), self.words_per_chunk):
            out.append(" ".join(self._words[start : start + self.words_per_chunk]))
        return out

    def reference_counts(self) -> dict[str, int]:
        """Ground-truth word counts (pure Python; used as the golden model)."""
        return dict(Counter(self._words))
