"""Shared workload types.

A workload is a deterministic, seeded stream of :class:`Op` records that a
driver feeds into an application server.  Table 1's datasets are modelled
by their published characteristics (skew, churn, op mix), which is what the
paper's results actually depend on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class OpKind(enum.Enum):
    GET = "get"
    SET = "set"
    REMOVE = "remove"
    INCR = "incr"
    SCAN = "scan"
    UPDATE = "update"
    PUT = "put"


@dataclass(frozen=True, slots=True)
class Op:
    """One client operation."""

    kind: OpKind
    key: Any
    value: Any = None
    #: scan length for range queries
    count: int = 0
