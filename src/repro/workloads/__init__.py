"""Workload generators modelling the paper's datasets (Table 1)."""

from repro.workloads.alex import AlexWorkload
from repro.workloads.base import Op, OpKind
from repro.workloads.cachelib import CacheLibWorkload
from repro.workloads.wordcount import WordCountCorpus, make_vocabulary
from repro.workloads.ycsb import YcsbWriteWorkload
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "AlexWorkload",
    "CacheLibWorkload",
    "Op",
    "OpKind",
    "WordCountCorpus",
    "YcsbWriteWorkload",
    "ZipfSampler",
    "make_vocabulary",
]
