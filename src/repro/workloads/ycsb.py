"""YCSB-style synthetic workload: 100% random writes (Table 1, LSMTree).

The paper stresses LSMTree's memory tier with pure random writes — an
intentionally unrealistic worst case for versioning overhead.  Keys are
uniform over the key space; values are fixed-size payloads.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.base import Op, OpKind


class YcsbWriteWorkload:
    """Deterministic uniform-random write stream."""

    def __init__(self, n_keys: int = 1000, value_bytes: int = 64, seed: int = 0):
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.value_bytes = value_bytes
        self._rng = random.Random(seed ^ 0xCB5)

    def ops(self, n_ops: int) -> Iterator[Op]:
        for index in range(n_ops):
            key = self._rng.randrange(self.n_keys)
            value = f"w{index:08d}" + "x" * max(0, self.value_bytes - 9)
            yield Op(OpKind.PUT, key, value)
