"""CacheLib-style workload: skewed with churn (Table 1, Memcached).

Meta's CacheLib traces are highly skewed (top 20% of objects take ~80% of
requests) and *churn*: the popular set drifts over time.  We model churn by
rotating the rank→key mapping every ``churn_period`` operations, so a new
subset of keys becomes hot while the skew shape stays constant.  The op mix
is read-dominated, matching the paper's observation that most Memcached
requests are GETs that create no versions.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.base import Op, OpKind
from repro.workloads.zipf import ZipfSampler


class CacheLibWorkload:
    """Deterministic CacheLib-like op stream."""

    def __init__(
        self,
        n_keys: int = 1000,
        skew: float = 0.99,
        get_fraction: float = 0.9,
        remove_fraction: float = 0.02,
        churn_period: int = 5000,
        value_bytes: int = 64,
        seed: int = 0,
    ):
        if not 0 <= get_fraction <= 1:
            raise ValueError("get_fraction must be in [0, 1]")
        if get_fraction + remove_fraction > 1:
            raise ValueError("op-mix fractions exceed 1")
        self.n_keys = n_keys
        self.get_fraction = get_fraction
        self.remove_fraction = remove_fraction
        self.churn_period = churn_period
        self.value_bytes = value_bytes
        self._sampler = ZipfSampler(n_keys, skew, seed=seed)
        self._rng = random.Random(seed ^ 0x5EED)
        self._rotation = 0

    def _key(self, rank: int) -> str:
        # Churn: rotate which keys occupy the popular ranks.
        return f"key-{(rank + self._rotation) % self.n_keys:08d}"

    def _value(self, key: str) -> str:
        filler = "v" * max(0, self.value_bytes - len(key))
        return f"{key}:{filler}"

    def ops(self, n_ops: int) -> Iterator[Op]:
        """Yield a deterministic stream of ``n_ops`` operations."""
        for index in range(n_ops):
            if self.churn_period and index and index % self.churn_period == 0:
                self._rotation += max(1, self.n_keys // 10)
            rank = self._sampler.sample()
            key = self._key(rank)
            roll = self._rng.random()
            if roll < self.get_fraction:
                yield Op(OpKind.GET, key)
            elif roll < self.get_fraction + self.remove_fraction:
                yield Op(OpKind.REMOVE, key)
            else:
                yield Op(OpKind.SET, key, self._value(key))
