"""Zipfian key sampling.

Real cloud caching traces are heavily skewed — in Meta's CacheLib trace the
top 20% of objects receive ~80% of requests.  This module provides an
inverse-CDF Zipf sampler (numpy-backed, seeded, deterministic) plus a
helper that calibrates the exponent to a target 20/80-style skew.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Samples ranks in [0, n) with probability ∝ 1/(rank+1)^s."""

    def __init__(self, n: int, s: float = 0.99, seed: int = 0):
        if n < 1:
            raise ValueError("need at least one item")
        if s < 0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.s = s
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
        cdf = np.cumsum(weights)
        self._cdf = cdf / cdf[-1]
        self._rng = np.random.default_rng(seed)

    def sample(self) -> int:
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def sample_many(self, count: int) -> np.ndarray:
        us = self._rng.random(count)
        return np.searchsorted(self._cdf, us, side="left")

    def head_mass(self, fraction: float) -> float:
        """Probability mass carried by the top ``fraction`` of ranks."""
        cutoff = max(1, int(self.n * fraction))
        return float(self._cdf[cutoff - 1])
