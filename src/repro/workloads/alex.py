"""ALEX-style workload: read-intensive range/update mix (Table 1, Masstree).

The ALEX benchmark keys are numeric and skewed; the paper's Masstree
evaluation uses 50% range queries / 50% updates, where each range query
locates a key and scans forward, and each update is a lookup-then-modify.
The same key appearing in both scans and updates creates the
scan/update dependencies §4.2 discusses.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.base import Op, OpKind
from repro.workloads.zipf import ZipfSampler


class AlexWorkload:
    """Deterministic ALEX-like op stream over an ordered key space."""

    def __init__(
        self,
        n_keys: int = 1000,
        skew: float = 0.8,
        scan_fraction: float = 0.5,
        max_scan: int = 16,
        seed: int = 0,
    ):
        if not 0 <= scan_fraction <= 1:
            raise ValueError("scan_fraction must be in [0, 1]")
        self.n_keys = n_keys
        self.scan_fraction = scan_fraction
        self.max_scan = max_scan
        self._sampler = ZipfSampler(n_keys, skew, seed=seed)
        self._rng = random.Random(seed ^ 0xA1E)

    def initial_keys(self) -> list[int]:
        """Keys pre-loaded into the tree before the timed run."""
        return [self._encode(rank) for rank in range(self.n_keys)]

    def _encode(self, rank: int) -> int:
        # Spread ranks over a sparse numeric key space, like ALEX keys.
        return rank * 17 + 3

    def ops(self, n_ops: int) -> Iterator[Op]:
        for _ in range(n_ops):
            key = self._encode(self._sampler.sample())
            if self._rng.random() < self.scan_fraction:
                yield Op(OpKind.SCAN, key, count=self._rng.randint(2, self.max_scan))
            else:
                yield Op(OpKind.UPDATE, key, value=self._rng.randint(0, 1 << 30))
