"""Orthrus pointers: the only handle through which user data is touched.

``OrthrusPtr`` mirrors Listing 4: the payload is obtained with
:meth:`load` (immutable), and every update goes through :meth:`store`,
which creates a new version out-of-place and logs it for validation.  The
semantics of a load/store depend on the execution context active on the
current thread (APP vs VAL, §3.3); outside any closure the pointer degrades
to direct (unlogged, unverified) access, which is how control-path code
handles user data it is not supposed to modify.
"""

from __future__ import annotations

from typing import Any

from repro.memory.heap import VersionedHeap


class OrthrusPtr:
    """Smart pointer into the versioned user-data space."""

    __slots__ = ("heap", "obj_id")

    #: marker checked by the serializer/comparator without importing this
    #: module (avoids an import cycle with the checksum layer)
    __orthrus_ptr__ = True

    def __init__(self, heap: VersionedHeap, obj_id: int):
        self.heap = heap
        self.obj_id = obj_id

    def load(self) -> Any:
        """Read the payload (immutable; updates must go through store)."""
        from repro.closures.context import current

        ctx = current()
        if ctx is not None:
            return ctx.load(self.obj_id)
        return self.heap.latest(self.obj_id).value

    def store(self, value: Any) -> None:
        """Write a new version of the payload."""
        from repro.closures.context import current

        ctx = current()
        if ctx is not None:
            ctx.store(self.obj_id, value)
        else:
            self.heap.store(self.obj_id, value)

    def delete(self) -> None:
        """OrthrusDelete: end the object's life."""
        from repro.closures.context import current

        ctx = current()
        if ctx is not None:
            ctx.delete(self.obj_id)
        else:
            self.heap.delete(self.obj_id)

    @property
    def version_id(self) -> int:
        """Version id of the live version (unmanaged introspection)."""
        return self.heap.latest(self.obj_id).version_id

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OrthrusPtr)
            and other.obj_id == self.obj_id
            and other.heap is self.heap
        )

    def __hash__(self) -> int:
        return hash((id(self.heap), self.obj_id))

    def __repr__(self) -> str:
        return f"OrthrusPtr(obj{self.obj_id})"


def orthrus_new(value: Any, heap: VersionedHeap | None = None) -> OrthrusPtr:
    """OrthrusNew: allocate a user-data object in versioned memory.

    Inside a closure the allocation is attributed to the running execution
    and logged; outside one, ``heap`` must be given explicitly.
    """
    from repro.closures.context import current

    ctx = current()
    if ctx is not None:
        return ctx.allocate(value)
    if heap is None:
        raise ValueError("orthrus_new outside a closure requires an explicit heap")
    return OrthrusPtr(heap, heap.allocate(value))


def ptr(obj_id: int) -> OrthrusPtr:
    """Rehydrate a pointer from a stored object id, inside a closure.

    Versioned containers (hash buckets, tree nodes) reference their
    children by object id; data operators turn those ids back into
    pointers against the closure's heap.
    """
    from repro.closures.context import require

    return OrthrusPtr(require().heap, obj_id)


def orthrus_receive(value: Any, checksum: int, heap: VersionedHeap | None = None) -> OrthrusPtr:
    """Materialize an object received from the control path (Figure 3).

    The sender computed ``checksum`` when the object was created; the
    payload may have been corrupted in transit by a control-path CPU error.
    Installing the *transported* CRC (instead of recomputing it) is what
    lets the first data-path load detect the corruption.
    """
    from repro.closures.context import current

    ctx = current()
    if ctx is not None:
        return ctx.allocate(value, checksum_override=checksum)
    if heap is None:
        raise ValueError("orthrus_receive outside a closure requires an explicit heap")
    return OrthrusPtr(heap, heap.allocate(value, checksum_override=checksum))
