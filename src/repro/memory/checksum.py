"""CRC-16 checksums for control-path data-integrity verification.

Orthrus attaches a 16-bit cyclic redundancy check to every data-object
version (stored in the version header, §3.4).  The CRC is computed when a
version is created and verified the first time the object is loaded after
crossing the control/data-path boundary.  A 16-bit code suffices because it
is used purely for *detection* — never for recovery.

We implement CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) with a
precomputed table, and a canonical serialization for the Python values user
data can hold, so that logically equal payloads always produce equal CRCs.
"""

from __future__ import annotations

import struct

_POLY = 0x1021
_INIT = 0xFFFF


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_TABLE = _build_table()


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE of ``data``."""
    crc = _INIT
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def serialize(value) -> bytes:
    """Canonical byte representation of a user-data payload.

    Handles the payload shapes the example applications use: ``None``,
    bool, int, float, str, bytes, and (possibly nested) tuples, lists and
    dicts of those.  Type tags keep distinct types from colliding (so the
    int ``1`` and the float ``1.0`` checksum differently).
    """
    out = bytearray()
    _serialize_into(value, out)
    return bytes(out)


def _serialize_into(value, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"B1" if value else b"B0"
    elif isinstance(value, int):
        out += b"I"
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "little", signed=True)
        out += len(raw).to_bytes(4, "little")
        out += raw
    elif isinstance(value, float):
        out += b"F"
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"S"
        out += len(raw).to_bytes(4, "little")
        out += raw
    elif isinstance(value, bytes):
        out += b"Y"
        out += len(value).to_bytes(4, "little")
        out += value
    elif isinstance(value, (tuple, list)):
        out += b"T" if isinstance(value, tuple) else b"L"
        out += len(value).to_bytes(4, "little")
        for item in value:
            _serialize_into(item, out)
    elif isinstance(value, dict):
        out += b"D"
        out += len(value).to_bytes(4, "little")
        for key in sorted(value, key=repr):
            _serialize_into(key, out)
            _serialize_into(value[key], out)
    elif getattr(value, "__orthrus_ptr__", False):
        # An Orthrus pointer embedded in a payload (a versioned container
        # referencing another user-data object): serialized by object id.
        out += b"P"
        out += value.obj_id.to_bytes(8, "little", signed=True)
    elif hasattr(value, "__orthrus_payload__"):
        # User-data classes expose their payload for checksumming.
        out += b"O"
        _serialize_into(value.__orthrus_payload__(), out)
    else:
        raise TypeError(
            f"cannot checksum value of type {type(value).__name__}; "
            "user-data payloads must be plain values or @user_data classes"
        )


def checksum_of(value) -> int:
    """CRC-16 of the canonical serialization of ``value``."""
    return crc16(serialize(value))


def deserialize(data: bytes):
    """Invert :func:`serialize`.

    Used by the control-path network model: payloads travel as canonical
    bytes, may be corrupted in transit by a faulty byte-move instruction,
    and are materialized back into values on the receiver.  Corrupted
    buffers either decode to a *wrong value* (a silent corruption the CRC
    catches at the data-path boundary) or raise ``ValueError`` (a fail-stop
    the classifier counts separately).
    """
    value, offset = _deserialize_from(data, 0)
    if offset != len(data):
        raise ValueError(f"{len(data) - offset} trailing bytes after payload")
    return value


def _take(data: bytes, offset: int, count: int) -> bytes:
    if offset + count > len(data):
        raise ValueError("truncated payload")
    return data[offset : offset + count]


def _deserialize_from(data: bytes, offset: int):
    tag = _take(data, offset, 1)
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"B":
        flag = _take(data, offset, 1)
        offset += 1
        if flag not in (b"0", b"1"):
            raise ValueError("bad bool flag")
        return flag == b"1", offset
    if tag == b"I":
        length = int.from_bytes(_take(data, offset, 4), "little")
        offset += 4
        if length > 1 << 20:
            raise ValueError("absurd int length")
        raw = _take(data, offset, length)
        return int.from_bytes(raw, "little", signed=True), offset + length
    if tag == b"F":
        raw = _take(data, offset, 8)
        return struct.unpack("<d", raw)[0], offset + 8
    if tag in (b"S", b"Y"):
        length = int.from_bytes(_take(data, offset, 4), "little")
        offset += 4
        if length > 1 << 24:
            raise ValueError("absurd string length")
        raw = _take(data, offset, length)
        if tag == b"Y":
            return raw, offset + length
        return raw.decode("utf-8"), offset + length
    if tag in (b"T", b"L"):
        length = int.from_bytes(_take(data, offset, 4), "little")
        offset += 4
        if length > 1 << 20:
            raise ValueError("absurd sequence length")
        items = []
        for _ in range(length):
            item, offset = _deserialize_from(data, offset)
            items.append(item)
        return (tuple(items) if tag == b"T" else items), offset
    if tag == b"D":
        length = int.from_bytes(_take(data, offset, 4), "little")
        offset += 4
        if length > 1 << 20:
            raise ValueError("absurd dict length")
        out = {}
        for _ in range(length):
            key, offset = _deserialize_from(data, offset)
            value, offset = _deserialize_from(data, offset)
            out[key] = value
        return out, offset
    raise ValueError(f"unknown payload tag {tag!r}")
