"""Watermark-based reclamation of stale data versions (§3.6).

A version is reclaimable once no running closure and no pending closure log
can reference it.  Orthrus approximates this with two windows:

* each version's *visible window* — creation until superseded/deleted;
* each closure's *active window* — execution start until its validation
  completes (or its log is dropped by the sampler).

The manager keeps the *combined queue* of all closures with open active
windows, ordered by start time (starts are monotonic, so insertion order
suffices).  When a closure leaves the queue, every version whose visible
window ended before the earliest remaining start time ``t`` is reclaimed in
a batch: nothing that starts later can ever see it.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.memory.heap import VersionedHeap
from repro.obs.observability import NULL_OBS


class ReclamationManager:
    """Tracks active windows and drives batched version reclamation."""

    def __init__(self, heap: VersionedHeap, batch_size: int = 64, obs=None):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self._heap = heap
        self._batch_size = batch_size
        self._active: OrderedDict[int, float] = OrderedDict()
        self._completed_since_reclaim = 0
        self._paused = 0
        self.reclaim_passes = 0
        self._obs = obs if obs is not None else NULL_OBS
        if self._obs.enabled:
            self._obs.registry.gauge(
                "orthrus_reclaim_open_windows",
                help="closures whose active window is still open",
            ).set_function(lambda: float(len(self._active)))

    # ------------------------------------------------------------------
    def closure_started(self, seq: int, start_time: float) -> None:
        """Open the closure's active window (APP execution begins)."""
        if self._active:
            last_start = next(reversed(self._active.values()))
            if start_time < last_start:
                raise ConfigurationError("closure start times must be monotonic")
        self._active[seq] = start_time

    def closure_finished(self, seq: int) -> int:
        """Close the closure's active window (validated or dropped).

        Returns the number of versions reclaimed by the batched pass (0
        when the pass was deferred for batching).
        """
        self._active.pop(seq, None)
        self._completed_since_reclaim += 1
        if self._paused or self._completed_since_reclaim < self._batch_size:
            return 0
        return self.reclaim_now()

    # ------------------------------------------------------------------
    # incident hold (evidence preservation)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Suspend reclamation passes (nestable).

        The incident-response layer pauses reclamation the moment a
        corruption is confirmed: every version still inside the window is
        potential evidence (blast-radius input) or repair material, and a
        batched GC pass would destroy it.  Windows keep closing; the
        deferred passes run at :meth:`resume`.
        """
        self._paused += 1

    def resume(self) -> int:
        """Re-enable reclamation; runs the deferred pass immediately."""
        if self._paused == 0:
            raise ConfigurationError("ReclamationManager.resume() without pause()")
        self._paused -= 1
        if self._paused == 0 and self._completed_since_reclaim >= self._batch_size:
            return self.reclaim_now()
        return 0

    @property
    def paused(self) -> bool:
        return self._paused > 0

    def reclaim_now(self) -> int:
        """Run a reclamation pass immediately (deferred while paused)."""
        if self._paused:
            return 0
        self._completed_since_reclaim = 0
        self.reclaim_passes += 1
        watermark = self.watermark
        reclaimed = self._heap.reclaim_before(watermark)
        obs = self._obs
        if obs.enabled:
            obs.registry.counter(
                "orthrus_reclaim_passes_total", help="batched reclamation passes"
            ).inc()
            obs.registry.counter(
                "orthrus_versions_reclaimed_total",
                help="stale versions freed by reclamation",
            ).inc(reclaimed)
            obs.tracer.emit(
                "reclaim.batch",
                ts=self._heap.now(),
                reclaimed=reclaimed,
                watermark=watermark,
                open_windows=len(self._active),
            )
        return reclaimed

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """Earliest start time across all open active windows (``t``).

        With no open windows every closed visible window is stale, so the
        watermark is +inf.
        """
        if not self._active:
            return math.inf
        return next(iter(self._active.values()))

    @property
    def open_windows(self) -> int:
        return len(self._active)
