"""Immutable data versions and their visible windows.

Every store through an :class:`~repro.memory.pointer.OrthrusPtr` creates a
new out-of-place version of the object (§3.1).  A version is immutable once
created; its *visible window* (Figure 4) opens at creation and closes when
the next version of the same object is created or the object is deleted.
The reclamation watermark (§3.6) frees versions whose window closed before
the earliest start time of any closure still running or awaiting
validation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any

#: Sentinel stored in place of a reclaimed payload so stale accesses fail
#: loudly instead of returning garbage.
RECLAIMED = object()


def approx_size(value: Any) -> int:
    """Cheap recursive estimate of a payload's memory footprint in bytes.

    Used for the memory-overhead accounting of Figs 6/10; it does not need
    to match CPython's allocator exactly, only to be consistent between the
    vanilla baseline and the versioned heap.
    """
    if value is None or isinstance(value, bool):
        return 8
    if isinstance(value, int):
        return 8 + value.bit_length() // 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (str, bytes)):
        return 16 + len(value)
    if getattr(value, "__orthrus_ptr__", False):
        return 8  # one pointer word
    if isinstance(value, (tuple, list)):
        return 16 + sum(approx_size(item) for item in value)
    if isinstance(value, dict):
        return 32 + sum(approx_size(k) + approx_size(v) for k, v in value.items())
    if hasattr(value, "__orthrus_payload__"):
        return 16 + approx_size(value.__orthrus_payload__())
    return sys.getsizeof(value)


@dataclass(slots=True)
class Version:
    """One immutable version of a user-data object.

    Attributes:
        version_id: globally unique, monotonically increasing.
        obj_id: the object this version belongs to.
        value: the payload (treated as immutable by convention).
        checksum: CRC-16 of the payload, stored in the version header
            (§3.4); ``None`` when checksums are disabled.
        created_at: visible-window open time.
        superseded_at: visible-window close time (next version created or
            object deleted); ``None`` while this is the live version.
        creator: sequence id of the closure execution that created it, or
            ``None`` for versions created outside any closure.
        size: approximate payload bytes, for memory accounting.
    """

    version_id: int
    obj_id: int
    value: Any
    checksum: int | None
    created_at: float
    superseded_at: float | None = None
    creator: int | None = None
    size: int = field(default=0)

    @property
    def live(self) -> bool:
        return self.superseded_at is None

    @property
    def reclaimed(self) -> bool:
        return self.value is RECLAIMED

    def window_ends_before(self, watermark: float) -> bool:
        """True when the visible window closed strictly before ``watermark``."""
        return self.superseded_at is not None and self.superseded_at < watermark

    def __repr__(self) -> str:
        state = "reclaimed" if self.reclaimed else ("live" if self.live else "stale")
        return f"Version(v{self.version_id}, obj{self.obj_id}, {state})"
