"""Versioned memory: checksums, versions, heaps, pointers, reclamation."""

from repro.memory.checksum import checksum_of, crc16, deserialize, serialize
from repro.memory.heap import PrivateHeap, VersionedHeap
from repro.memory.pointer import OrthrusPtr, orthrus_new, orthrus_receive, ptr
from repro.memory.reclaim import ReclamationManager
from repro.memory.version import RECLAIMED, Version, approx_size

__all__ = [
    "OrthrusPtr",
    "PrivateHeap",
    "RECLAIMED",
    "ReclamationManager",
    "Version",
    "VersionedHeap",
    "approx_size",
    "checksum_of",
    "crc16",
    "deserialize",
    "orthrus_new",
    "orthrus_receive",
    "ptr",
    "serialize",
]
