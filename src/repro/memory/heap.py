"""The versioned user-data space and the validator's private heap.

The application heap is split (Figure 2) into a *private space* (ordinary
Python objects, invisible to Orthrus) and a *user-data space* holding
versioned objects.  The user-data space is shared read-only with the
validator process; every update creates a new out-of-place
:class:`~repro.memory.version.Version`, which is what makes out-of-order
validation possible: a closure log pins the exact versions its re-execution
must see, independent of what the application has done since.

:class:`PrivateHeap` is the validator-side write buffer: re-executed stores
land there (never in the shared space), keyed by object id, so validation
cannot interfere with the application (§3.3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from repro.clock import Clock, LogicalClock
from repro.errors import HeapError, ReclaimedVersionError
from repro.memory.checksum import checksum_of
from repro.memory.version import RECLAIMED, Version, approx_size
from repro.obs.profiling import active as profiling_active


class _ObjectRecord:
    __slots__ = ("obj_id", "version_ids", "deleted_at")

    def __init__(self, obj_id: int):
        self.obj_id = obj_id
        self.version_ids: list[int] = []
        self.deleted_at: float | None = None


#: bytes of version-header metadata per version (ids, window timestamps,
#: CRC, creator) — an Orthrus-only cost counted in ``versioned_bytes`` but
#: not in the vanilla ``live_bytes`` baseline.
VERSION_HEADER_BYTES = 32


class VersionedHeap:
    """The shared, versioned user-data space.

    Args:
        clock: time source for visible windows; defaults to a logical
            counter that ticks on every version creation.
        checksums: compute a CRC-16 per version header (§3.4).  Disabled
            only by the checksum ablation benchmark.
    """

    def __init__(self, clock: Clock | None = None, checksums: bool = True):
        self._clock = clock if clock is not None else LogicalClock()
        self._checksums = checksums
        self._objects: dict[int, _ObjectRecord] = {}
        self._versions: dict[int, Version] = {}
        self._closed: deque[Version] = deque()  # superseded, in close order
        self._next_obj = 1
        self._next_version = 1
        #: bytes held by all unreclaimed versions (live + stale)
        self.versioned_bytes = 0
        #: bytes held by live versions only — the vanilla app's footprint
        self.live_bytes = 0
        self.versions_created = 0
        self.versions_reclaimed = 0

    # ------------------------------------------------------------------
    # allocation / store / delete
    # ------------------------------------------------------------------
    def allocate(
        self,
        value: Any,
        creator: int | None = None,
        checksum_override: int | None = None,
    ) -> int:
        """OrthrusNew: place a new user-data object into versioned memory.

        ``checksum_override`` installs a caller-supplied CRC instead of
        recomputing one — used when materializing an object received over
        the network, whose header CRC was computed at the *sender* and must
        travel with the payload so control-path corruption is detectable
        (Figure 3).
        """
        obj_id = self._next_obj
        self._next_obj += 1
        self._objects[obj_id] = _ObjectRecord(obj_id)
        self._new_version(obj_id, value, creator, checksum_override)
        return obj_id

    def store(self, obj_id: int, value: Any, creator: int | None = None) -> Version:
        """Create a new version of ``obj_id`` (out-of-place update)."""
        record = self._record(obj_id)
        if record.deleted_at is not None:
            raise HeapError(f"store to deleted object {obj_id}")
        return self._new_version(obj_id, value, creator)

    def delete(self, obj_id: int) -> None:
        """OrthrusDelete: close the live version's visible window."""
        record = self._record(obj_id)
        if record.deleted_at is not None:
            raise HeapError(f"double delete of object {obj_id}")
        now = self._advance()
        record.deleted_at = now
        if record.version_ids:
            last = self._versions[record.version_ids[-1]]
            if last.superseded_at is None:
                last.superseded_at = now
                self.live_bytes -= last.size
                self._closed.append(last)

    def _new_version(
        self,
        obj_id: int,
        value: Any,
        creator: int | None,
        checksum_override: int | None = None,
    ) -> Version:
        prof = profiling_active()
        t0 = prof.now() if prof.enabled else 0
        record = self._objects[obj_id]
        now = self._advance()
        if checksum_override is not None:
            checksum = checksum_override
        else:
            checksum = checksum_of(value) if self._checksums else None
        version = Version(
            version_id=self._next_version,
            obj_id=obj_id,
            value=value,
            checksum=checksum,
            created_at=now,
            creator=creator,
            size=approx_size(value),
        )
        self._next_version += 1
        if record.version_ids:
            previous = self._versions[record.version_ids[-1]]
            if previous.superseded_at is None:
                previous.superseded_at = now
                self.live_bytes -= previous.size
                self._closed.append(previous)
        record.version_ids.append(version.version_id)
        self._versions[version.version_id] = version
        self.versioned_bytes += version.size + VERSION_HEADER_BYTES
        self.live_bytes += version.size
        self.versions_created += 1
        if prof.enabled:
            prof.lap("memory.version", t0)
        return version

    def _advance(self) -> float:
        clock = self._clock
        if isinstance(clock, LogicalClock):
            return clock.tick()
        return clock.now()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _record(self, obj_id: int) -> _ObjectRecord:
        record = self._objects.get(obj_id)
        if record is None:
            raise HeapError(f"unknown object {obj_id}")
        return record

    def exists(self, obj_id: int) -> bool:
        record = self._objects.get(obj_id)
        return record is not None and record.deleted_at is None

    def latest(self, obj_id: int) -> Version:
        """The live version of ``obj_id``."""
        record = self._record(obj_id)
        if record.deleted_at is not None:
            raise HeapError(f"load of deleted object {obj_id}")
        version = self._versions[record.version_ids[-1]]
        if version.reclaimed:
            raise ReclaimedVersionError(f"live version of obj {obj_id} was reclaimed")
        return version

    def version(self, version_id: int) -> Version:
        version = self._versions.get(version_id)
        if version is None:
            raise HeapError(f"unknown version {version_id}")
        if version.reclaimed:
            raise ReclaimedVersionError(f"version {version_id} was reclaimed")
        return version

    def has_version(self, version_id: int) -> bool:
        """True while ``version_id`` is present and unreclaimed.

        Blast-radius analysis probes versions that may be past the
        reclamation window; a reclaimed version is unrecoverable rather
        than an error.
        """
        version = self._versions.get(version_id)
        return version is not None and not version.reclaimed

    def repair_version(self, version_id: int, value: Any) -> Version:
        """Overwrite a corrupted version's payload in place (repair, §2.3).

        Unlike :meth:`store` this does *not* create a new version: the
        repaired value keeps the original visible window and version id,
        so closure logs that pinned this version re-execute against the
        corrected payload.  The header CRC is recomputed (the old one
        covered corrupt bytes) and the byte accounting adjusted.
        """
        version = self.version(version_id)
        new_size = approx_size(value)
        delta = new_size - version.size
        self.versioned_bytes += delta
        if version.superseded_at is None:
            record = self._objects.get(version.obj_id)
            if record is None or record.deleted_at is None:
                self.live_bytes += delta
        version.value = value
        version.size = new_size
        if self._checksums:
            version.checksum = checksum_of(value)
        return version

    def visible_at(self, obj_id: int, when: float) -> Version:
        """The version of ``obj_id`` whose visible window contains ``when``.

        Used by the validator when a re-execution touches an object the
        original execution did not record (possible when the fault changed
        the APP's control flow): the re-execution must see the snapshot
        that was current when the closure started.
        """
        record = self._record(obj_id)
        for version_id in reversed(record.version_ids):
            version = self._versions[version_id]
            if version.created_at <= when and (
                version.superseded_at is None or when < version.superseded_at
            ):
                if version.reclaimed:
                    raise ReclaimedVersionError(
                        f"version {version_id} of obj {obj_id} was reclaimed"
                    )
                return version
        raise HeapError(f"object {obj_id} has no version visible at t={when}")

    # ------------------------------------------------------------------
    # reclamation support (§3.6)
    # ------------------------------------------------------------------
    def reclaim_before(self, watermark: float) -> int:
        """Reclaim every version whose visible window closed before
        ``watermark``; returns the number reclaimed.

        The closed-version queue is in window-close order (the clock is
        monotonic), so this is a single scan from the oldest end — the
        batched, watermark-based GC of §3.6.
        """
        reclaimed = 0
        closed = self._closed
        while closed and closed[0].superseded_at is not None and closed[0].superseded_at < watermark:
            version = closed.popleft()
            self._reclaim(version)
            reclaimed += 1
        return reclaimed

    def _reclaim(self, version: Version) -> None:
        if version.reclaimed:
            return
        self.versioned_bytes -= version.size + VERSION_HEADER_BYTES
        self.versions_reclaimed += 1
        version.value = RECLAIMED
        record = self._objects.get(version.obj_id)
        if record is not None:
            try:
                record.version_ids.remove(version.version_id)
            except ValueError:
                pass
        del self._versions[version.version_id]

    # ------------------------------------------------------------------
    # accounting / introspection
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current time on the heap's clock (observability timestamps)."""
        return self._clock.now()

    @property
    def live_version_count(self) -> int:
        """Unreclaimed versions that are the latest of a live object."""
        return len(self._versions) - len(self._closed)

    @property
    def reclaimable_version_count(self) -> int:
        """Superseded-but-unreclaimed versions awaiting the next GC pass."""
        return len(self._closed)

    @property
    def header_bytes(self) -> int:
        """Version-header metadata held by all unreclaimed versions."""
        return VERSION_HEADER_BYTES * len(self._versions)

    @property
    def stale_bytes(self) -> int:
        """Payload bytes held by superseded-but-unreclaimed versions."""
        return self.versioned_bytes - self.header_bytes - self.live_bytes

    @property
    def memory_overhead(self) -> float:
        """Versioning overhead relative to the vanilla (live-only) footprint."""
        if self.live_bytes == 0:
            return 0.0
        return self.versioned_bytes / self.live_bytes - 1.0

    def live_versions(self) -> Iterator[Version]:
        for record in self._objects.values():
            if record.deleted_at is None and record.version_ids:
                yield self._versions[record.version_ids[-1]]

    def __len__(self) -> int:
        return len(self._versions)


class PrivateHeap:
    """Validator-side write buffer (§3.3).

    Stores during re-execution land here; reads first consult this buffer,
    then fall back to the versions pinned by the closure log.  Output
    comparison walks :attr:`writes` in creation order against the log's
    recorded output versions.
    """

    def __init__(self):
        self._values: dict[int, Any] = {}
        self._next_shadow = -1
        #: (obj_id, value) pairs in store order — the VAL-side outputs.
        self.writes: list[tuple[int, Any]] = []
        #: obj_ids deleted during re-execution, in order.
        self.deleted: list[int] = []

    def allocate(self, value: Any) -> int:
        """Shadow OrthrusNew: allocate a validator-private object."""
        obj_id = self._next_shadow
        self._next_shadow -= 1
        self._values[obj_id] = value
        self.writes.append((obj_id, value))
        return obj_id

    def seed(self, obj_id: int, value: Any) -> None:
        """Pre-load a value that shadows the pinned input version.

        Unlike :meth:`store` this records no write: the repairer seeds the
        private heap with already-corrected upstream values so a replay
        reads repaired state, without the seeds polluting the replay's
        observed outputs.
        """
        self._values[obj_id] = value

    def store(self, obj_id: int, value: Any) -> None:
        self._values[obj_id] = value
        self.writes.append((obj_id, value))

    def delete(self, obj_id: int) -> None:
        self.deleted.append(obj_id)
        self._values.pop(obj_id, None)

    def has(self, obj_id: int) -> bool:
        return obj_id in self._values

    def load(self, obj_id: int) -> Any:
        if obj_id in self.deleted:
            raise HeapError(f"validator load of deleted shadow object {obj_id}")
        return self._values[obj_id]
