"""Command-line front end: run experiments without pytest.

Usage (also exposed as the ``repro-bench`` console script)::

    python -m repro.cli list
    python -m repro.cli perf --app memcached --ops 2000
    python -m repro.cli coverage --app masstree --faults 32 --cores 2
    python -m repro.cli latency --app lsmtree --ops 2000
    python -m repro.cli respond --app memcached --fault-kind misdirected
    python -m repro.cli perf --metrics-out run.json --trace-out run.jsonl
    python -m repro.cli perf --timeline-out timeline.json
    python -m repro.cli timeline timeline.json --stat p95
    python -m repro.cli bench-compare --out-dir bench/ --tolerance 0.25
    python -m repro.cli obs-summary run.json
    python -m repro.cli profile --app memcached --flame-out flame.txt
    python -m repro.cli perf --profile-out profile.json

Each subcommand drives the same harness the benchmark suite uses and
prints a compact report; seeds make every invocation reproducible.
``--metrics-out`` / ``--trace-out`` enable the observability layer on the
Orthrus arm and save a metrics snapshot (JSON, or Prometheus text when the
path ends in ``.prom``) and a JSON-lines trace; ``obs-summary`` re-renders
a saved JSON snapshot as a table (or a ``.jsonl`` trace in total
``event_seq`` order).

``--timeline-out`` additionally attaches the time-series recorder to the
Orthrus arm, evaluates the stock SLOs (override with repeatable ``--slo``
specs like ``"validation_lag_p95 p95 <= 200us"``) and saves an
``orthrus-timeseries/1`` artifact; ``timeline`` renders such an artifact
as terminal sparklines.  ``bench-compare`` runs the tracked benchmarks,
writes ``BENCH_<name>.json`` artifacts and diffs them against a baseline
directory with per-metric direction-aware tolerances.

``respond`` runs one full inject→detect→quarantine→repair incident
episode and prints the resulting IncidentReport; ``--quarantine`` on
perf/latency/coverage attaches the response layer (arbitration +
quarantine) to the Orthrus arm of those experiments.

``--validator-faults`` / ``--degradation`` on perf, latency, and respond
route the Orthrus arm through the fault-tolerant chaos driver (bounded
queues, watchdog re-dispatch, degradation ladder) and print the
conservation ledger; ``--ft-json`` saves the report, and a run whose
terminal degradation state is ``SAFE_HOLD`` exits nonzero (status 2).

``--spans-out`` records the causal span layer (closure.run → queue.wait →
dispatch → validate → verdict, plus chaos detours) and saves a Chrome
trace-event file; ``latency-attrib`` folds such a trace (or a metrics
snapshot's span histograms) into a per-stage waterfall with
reconciliation.  ``--canary-period`` on perf/latency injects known-corrupt
canary closures and reports validation-plane liveness; ``obs-summary`` and
``timeline`` exit with status 3 when a loaded run recorded a missed
canary.

``fleet`` simulates a sharded fleet (hundreds of hosts, millions of
users) with per-shard validator pools and degradation ladders, fanned out
across OS processes; the merged run digest is byte-identical regardless
of ``--workers``.  ``--json`` saves the orthrus-fleet/1 rollup,
``--metrics-out`` / ``--timeline-out`` save the merged registry/timeline
in the standard formats, and a fleet with any shard ending in SAFE_HOLD
exits with status 2.

``doctor`` statically audits validation-plane configs (a JSON file with
``pipeline``/``fleet`` sections, or the stock defaults) for
contradictions — a quarantined-out validator pool, a watchdog deadline
outliving its SLO, a sampler targeting unregistered closures — and exits
1 when any ERROR-severity finding survives; ``--out`` saves the
``orthrus-audit/1`` artifact (``obs-summary`` renders it).  ``--audit``
on perf/latency/respond/fleet additionally attaches the *runtime* drift
monitor, which compares declared config against observed behavior
(coverage floor, verdict-producing cores, ledger residuals, canary
liveness) and folds every unvalidated log into the per-closure
``orthrus_exposure_seconds`` exposure ledger; ``--audit-out`` saves the
payload.  Auditing is observational: run digests are byte-identical
with it on or off.

``profile`` runs the Orthrus arm under the wall-clock self-profiler and
prints the subsystem share table (machine execute, queue ops, validator
compare, memory versioning, …) plus the events/s / instructions/s
throughput meter; ``--flame-out`` saves collapsed flamegraph stacks and
``--sample`` attaches the budgeted Python sampling profiler.
``--profile-out`` on perf/latency/coverage/fleet saves the same
``orthrus-profile/1`` payload from a regular run; ``obs-summary``
renders those artifacts too.  Profiling only *observes* wall time — run
digests are byte-identical with it on or off.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys

from repro.errors import (
    ConfigurationError,
    ExitCode,
    FaultInjectionError,
    FleetExecutionError,
)
from repro.faultinject.campaign import FaultInjectionCampaign
from repro.faultinject.fleet_faults import FleetFaultPlan
from repro.fleet import FleetConfig, FleetConfigError, run_fleet
from repro.faultinject.config import InjectionConfig
from repro.faultinject.validator_faults import ValidatorChaosConfig
from repro.harness.benchtrack import (
    BENCHES,
    artifact_filename,
    compare_artifacts,
    load_artifact,
    render_comparison,
    run_bench,
    write_artifact,
)
from repro.harness.incident import (
    IncidentConfig,
    misdirected_fault,
    run_incident,
    value_fault,
)
from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)
from repro.machine.units import Unit
from repro.obs import (
    AUDIT_FORMAT,
    PROFILE_FORMAT,
    AuditConfig,
    CanaryConfig,
    MetricsRegistry,
    Observability,
    ProfileConfig,
    TimeSeriesConfig,
    attribute,
    audit_fleet,
    audit_pipeline,
    console_summary,
    export_profile,
    format_rate,
    format_seconds,
    format_wall,
    load_metrics_json,
    load_spans_chrome,
    load_timeline,
    make_profiler,
    render_audit,
    render_profile,
    render_sparkline,
    render_waterfall,
    stage_stats_from_registry,
    to_prometheus,
    write_collapsed,
    write_metrics_json,
    write_profile_json,
    write_spans_chrome,
    write_timeline_json,
    write_trace_jsonl,
)
from repro.obs.slo import SloObjective
from repro.response import ResponseConfig
from repro.runtime.degradation import FaultToleranceConfig
from repro.sim.metrics import slowdown
from repro.validation.queues import OVERFLOW_POLICIES
from repro.validation.watchdog import WatchdogConfig

#: app name → (scenario factory, orthrus runner, vanilla runner, rbv runner,
#:             default workload size)
_APPS = {
    "memcached": (memcached_scenario, None, None, None, 2000),
    "masstree": (masstree_scenario, None, None, None, 1500),
    "lsmtree": (lsmtree_scenario, None, None, None, 1500),
    "phoenix": (
        phoenix_scenario,
        functools.partial(run_phoenix, variant="orthrus"),
        functools.partial(run_phoenix, variant="vanilla"),
        functools.partial(run_phoenix, variant="rbv"),
        30000,
    ),
}


def _resolve(app: str):
    if app not in _APPS:
        raise SystemExit(f"unknown app {app!r}; choose from {', '.join(_APPS)}")
    factory, orthrus, vanilla, rbv, default_size = _APPS[app]
    return (
        factory(),
        orthrus or run_orthrus_server,
        vanilla or run_vanilla_server,
        rbv or run_rbv_server,
        default_size,
    )


#: per-app closure the ``respond`` fault defaults target (the insert path
#: — the closure whose outputs feed everything downstream)
_RESPOND_CLOSURES = {"memcached": "mc.set", "lsmtree": "lsm.put"}


def subcommand_names(parser=None) -> list[str]:
    """Registered subcommand names, in registration order.

    Derived from the parser itself (not a hand-kept list), so the
    ``list`` output and the help epilog can never drift from what
    ``add_parser`` actually registered.
    """
    parser = parser if parser is not None else build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return list(action.choices)
    return []


def cmd_list(_args) -> int:
    print("applications:")
    for name, (_, _, _, _, size) in _APPS.items():
        print(f"  {name:<10} (default workload size {size})")
    others = [name for name in subcommand_names() if name != "list"]
    print("\nsubcommands: " + ", ".join(others))
    print("tracked benchmarks (bench-compare): " + ", ".join(sorted(BENCHES)))
    return int(ExitCode.OK)


def _make_obs(args) -> Observability | None:
    """An Observability handle when export flags ask for one, else None
    (the pipeline then runs fully uninstrumented)."""
    timeline_out = getattr(args, "timeline_out", None)
    spans_out = getattr(args, "spans_out", None)
    wants_slo = bool(getattr(args, "slo", None))
    if args.metrics_out is None and args.trace_out is None and \
            timeline_out is None and spans_out is None and not wants_slo:
        return None
    for path in (args.metrics_out, args.trace_out, timeline_out, spans_out):
        if path is None:
            continue
        # Fail before the run, not at export time — a bad path after a
        # long campaign would throw the whole run away.
        try:
            with open(path, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            raise SystemExit(f"cannot write {path}: {exc}")
    return Observability(trace=args.trace_out is not None)


def _export_obs(obs: Observability | None, args, run_metrics=None) -> None:
    """Write the snapshot/trace the flags requested and report the paths."""
    if obs is None:
        return
    if run_metrics is not None:
        run_metrics.export_to(obs.registry)
    if args.metrics_out is not None:
        if args.metrics_out.endswith(".prom"):
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(to_prometheus(obs.registry))
        else:
            write_metrics_json(obs.registry, args.metrics_out)
        print(f"metrics snapshot   : {args.metrics_out}")
    if args.trace_out is not None:
        written = write_trace_jsonl(obs.tracer, args.trace_out)
        print(f"trace events       : {written} -> {args.trace_out}")
    spans_out = getattr(args, "spans_out", None)
    if spans_out is not None:
        written = write_spans_chrome(obs.spans, spans_out)
        print(f"causal spans       : {written} -> {spans_out} "
              "(chrome trace; open in Perfetto)")


def _timeseries_setup(args):
    """(TimeSeriesConfig, objectives) for the Orthrus arm, or (None, None).

    ``--slo`` specs replace the stock objectives; with ``--timeline-out``
    alone the pipeline evaluates its defaults.
    """
    timeline_out = getattr(args, "timeline_out", None)
    specs = getattr(args, "slo", None) or []
    if timeline_out is None and not specs:
        return None, None
    try:
        objectives = [SloObjective.parse(spec) for spec in specs]
    except ValueError as exc:
        raise SystemExit(str(exc))
    return TimeSeriesConfig(cadence=args.timeline_cadence), (objectives or None)


def _report_timeline(result, args) -> None:
    """Save the timeline artifact and print the SLO verdicts.

    Defensive getattrs: the phoenix harness returns its own result type
    without timeline/slo attributes.
    """
    timeline_out = getattr(args, "timeline_out", None)
    timeline = getattr(result, "timeline", None)
    slo = getattr(result, "slo", None)
    if timeline_out is not None and timeline is None:
        print(f"timeline           : (the {type(result).__name__} runner "
              "does not attach the recorder; no artifact written)")
    if timeline_out is not None and timeline is not None:
        try:
            write_timeline_json(timeline, timeline_out)
        except OSError as exc:
            raise SystemExit(f"cannot write {timeline_out}: {exc}")
        print(
            f"timeline           : {timeline.samples_taken} samples, "
            f"{len(timeline.summary())} series -> {timeline_out}"
        )
    if slo is not None:
        for line in slo.summary_lines():
            print(line)
        report = result.runtime.report
        if report.anomalies:
            regimes = ", ".join(
                f"{regime}={count}"
                for regime, count in sorted(report.anomaly_regimes().items())
            )
            print(f"telemetry anomalies: {regimes}")


def _response_config(args, auto_repair: bool = True) -> ResponseConfig | None:
    """The --quarantine flag's ResponseConfig for the Orthrus arm (or None)."""
    if not getattr(args, "quarantine", False):
        return None
    return ResponseConfig(auto_repair=auto_repair)


def _print_response(result) -> None:
    """Response-layer rollup for a RunResult produced with --quarantine."""
    if result.incident is None:
        print("response           : (runner does not attach the response layer)")
        return
    summary = result.runtime.report.summary()
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(summary["by_kind"].items()))
    print(
        f"detections         : {summary['total']}"
        + (f" ({kinds})" if kinds else "")
    )
    incident = result.incident
    print(f"quarantined cores  : {incident.quarantined_cores or 'none'}")
    if incident.faulty_core >= 0:
        print(f"implicated core    : {incident.faulty_core}")
        print(
            f"repaired versions  : {incident.versions_repaired}"
            f"/{incident.versions_corrupted} corrupted"
        )


def _canary_config(args) -> CanaryConfig | None:
    """The --canary-period flag's CanaryConfig for the Orthrus arm."""
    period = getattr(args, "canary_period", None)
    deadline = getattr(args, "canary_deadline", None)
    if period is None and deadline is None:
        return None
    try:
        return CanaryConfig(
            period=period if period is not None else 200e-6,
            deadline=deadline if deadline is not None else 0.0,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc))


def _print_canary(result) -> None:
    """Canary liveness rollup for a RunResult produced with --canary-period."""
    summary = getattr(result, "canary", None)
    if summary is None:
        print("canary liveness    : (runner does not attach the canary plane)")
        return
    status = "ALARM" if summary["missed"] else "ok"
    print(
        f"canary liveness    : {status} — {summary['issued']} issued, "
        f"{summary['detected']} detected, {summary['missed']} missed "
        f"(deadline {format_seconds(summary['deadline'])})"
    )
    if summary["missed"]:
        print(
            "first canary miss  : "
            f"t={format_seconds(summary['first_missed_at'])} sim"
        )
    organic = result.runtime.report.count_organic()
    print(f"organic detections : {organic}")


def _profile_config(args) -> ProfileConfig | None:
    """The --profile-out flag's ProfileConfig for the Orthrus arm.

    None keeps the profiler entirely off (the NULL_PROFILER fast path);
    the run digest is identical either way.
    """
    if getattr(args, "profile_out", None) is None and \
            getattr(args, "flame_out", None) is None:
        return None
    return ProfileConfig(
        sample=getattr(args, "sample", False),
        sample_budget=getattr(args, "sample_budget", 0.02),
    )


def _export_profile(profile, args) -> None:
    """Save the ``orthrus-profile/1`` payload (and flamegraph stacks)
    the profile flags requested, and report the paths."""
    out = getattr(args, "profile_out", None)
    flame_out = getattr(args, "flame_out", None)
    if out is None and flame_out is None:
        return
    if profile is None:
        print("self-profile       : (runner does not attach the profiler)")
        return
    if out is not None:
        try:
            write_profile_json(profile, out)
        except OSError as exc:
            raise SystemExit(f"cannot write {out}: {exc}")
        print(f"self-profile       : {out}")
    if flame_out is not None:
        try:
            written = write_collapsed(profile, flame_out)
        except OSError as exc:
            raise SystemExit(f"cannot write {flame_out}: {exc}")
        print(f"flamegraph stacks  : {written} -> {flame_out} "
              "(collapsed; feed to flamegraph.pl or speedscope)")


def _fault_tolerance_setup(args):
    """(FaultToleranceConfig, ValidatorChaosConfig | None) when the
    fault-tolerance flags ask for the chaos driver, else (None, None).

    Any of --validator-faults / --degradation / --queue-capacity /
    --overflow-policy opts the Orthrus arm into the fault-tolerant plane.
    """
    specs = getattr(args, "validator_faults", None) or []
    enabled = (
        bool(specs)
        or getattr(args, "degradation", False)
        or getattr(args, "queue_capacity", None) is not None
        or getattr(args, "overflow_policy", None) is not None
        or getattr(args, "watchdog_deadline", None) is not None
    )
    if not enabled:
        return None, None
    chaos = None
    if specs:
        try:
            chaos = ValidatorChaosConfig.parse(specs, seed=args.seed)
        except ConfigurationError as exc:
            raise SystemExit(str(exc))
    kwargs = {}
    if args.queue_capacity is not None:
        kwargs["queue_capacity"] = args.queue_capacity
    if args.overflow_policy is not None:
        kwargs["overflow_policy"] = args.overflow_policy
    if args.watchdog_deadline is not None:
        deadline = args.watchdog_deadline
        kwargs["watchdog"] = WatchdogConfig(deadline=deadline)
        # Tight deadlines need a tick fast enough to notice them expire.
        kwargs["check_interval"] = min(
            FaultToleranceConfig().check_interval, deadline / 8
        )
    return FaultToleranceConfig(**kwargs), chaos


def _finish_fault_tolerance(result, args) -> int:
    """Print the chaos-plane report and save ``--ft-json``.

    Returns this run's exit-status contribution: 2 when the terminal
    degradation state is SAFE_HOLD (the run ended still holding
    externalizing closures), else 0.
    """
    ft = getattr(result, "ft", None)
    if ft is None:
        print("fault tolerance    : (runner does not attach the chaos plane)")
        return int(ExitCode.OK)
    ledger = ft.ledger
    print(
        f"log conservation   : {ledger['enqueued']} in = "
        f"{ledger['validated']} validated + {ledger['skipped']} skipped + "
        f"{ledger['dropped']} dropped + {ledger['fallback']} fallback "
        + ("(conserved)" if ft.conserved else "(NOT CONSERVED)")
    )
    print(
        f"watchdog           : {ft.timeouts} timeouts, "
        f"{ft.redispatches} re-dispatches, "
        f"{ft.exhausted} retry budgets exhausted"
    )
    if ft.queue_drops:
        print("queue drops        : " + ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(ft.queue_drops.items())
        ))
    if ft.faulted_cores:
        print("armed faults       : " + ", ".join(
            f"{kind}={cores}"
            for kind, cores in sorted(ft.faulted_cores.items())
        ))
    if ft.quarantined_validators:
        print(f"quarantined cores  : {ft.quarantined_validators}")
    print(
        f"degradation        : peak {ft.peak_level}, "
        f"terminal {ft.terminal_level}"
    )
    if getattr(args, "ft_json", None) is not None:
        try:
            with open(args.ft_json, "w", encoding="utf-8") as fh:
                json.dump(ft.summary(), fh, indent=2)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write {args.ft_json}: {exc}")
        print(f"fault-tolerance out: {args.ft_json}")
    if ft.terminal_level == "safe-hold":
        print("verdict            : run ended in SAFE_HOLD")
        return int(ExitCode.SAFE_HOLD)
    return int(ExitCode.OK)


def _audit_enabled(args):
    """True (enable the drift monitor with defaults) when either audit
    flag asks for it, else None (the NULL fast path)."""
    if getattr(args, "audit", False) or \
            getattr(args, "audit_out", None) is not None:
        return True
    return None


def _finish_audit(result, args) -> int:
    """Print/save the run's ``orthrus-audit/1`` drift payload.

    Returns the exit-status contribution: FAILURE when the audit found
    ERROR-severity drift, else OK.  A no-op unless an audit flag was
    passed.
    """
    if _audit_enabled(args) is None:
        return int(ExitCode.OK)
    payload = getattr(result, "audit", None)
    if payload is None:
        print("audit              : (runner does not attach the drift monitor)")
        return int(ExitCode.OK)
    print(render_audit(payload))
    out = getattr(args, "audit_out", None)
    if out is not None:
        try:
            with open(out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write {out}: {exc}")
        print(f"audit artifact     : {out}")
    errors = payload.get("summary", {}).get("errors", 0)
    return int(ExitCode.FAILURE) if errors else int(ExitCode.OK)


#: keys the ``doctor`` config file may use per section — rejected keys
#: fail loudly rather than silently auditing nothing
_DOCTOR_PIPELINE_KEYS = frozenset((
    "app_threads", "validation_cores", "seed", "sampler_targets",
    "canary", "slos", "fault_tolerance", "quarantine", "audit",
))
_DOCTOR_FLEET_KEYS = frozenset((
    "hosts", "shards", "cores_per_host", "validators_per_shard",
    "app_cores_per_shard", "vnodes", "min_coverage", "queue_capacity",
    "canary_every", "watchdog_deadline", "slo_window", "quarantined",
    "epochs", "seed", "faults", "failover_retry_budget",
    "failover_backoff_epochs", "probation_epochs",
))


def _pipeline_from_spec(spec: dict) -> PipelineConfig:
    """A :class:`PipelineConfig` from a ``doctor`` JSON section."""
    unknown = sorted(set(spec) - _DOCTOR_PIPELINE_KEYS)
    if unknown:
        raise SystemExit(
            f"unknown pipeline key(s): {', '.join(unknown)} "
            f"(expected: {', '.join(sorted(_DOCTOR_PIPELINE_KEYS))})"
        )
    kwargs = {
        key: spec[key]
        for key in ("app_threads", "validation_cores", "seed")
        if key in spec
    }
    if "sampler_targets" in spec:
        kwargs["sampler_targets"] = tuple(spec["sampler_targets"])
    if "canary" in spec:
        kwargs["canary"] = CanaryConfig(**spec["canary"])
    if "slos" in spec:
        kwargs["slos"] = [SloObjective.parse(s) for s in spec["slos"]]
    if "audit" in spec:
        kwargs["audit"] = AuditConfig(**spec["audit"])
    ft_spec = spec.get("fault_tolerance")
    if ft_spec is not None:
        ft_kwargs = {
            key: ft_spec[key]
            for key in ("queue_capacity", "overflow_policy")
            if key in ft_spec
        }
        if "watchdog_deadline" in ft_spec:
            ft_kwargs["watchdog"] = WatchdogConfig(
                deadline=ft_spec["watchdog_deadline"]
            )
        kwargs["fault_tolerance"] = FaultToleranceConfig(**ft_kwargs)
    if spec.get("quarantine"):
        kwargs["response"] = ResponseConfig()
    return PipelineConfig(**kwargs)


def _fleet_from_spec(spec: dict) -> FleetConfig:
    """A :class:`FleetConfig` from a ``doctor`` JSON section."""
    unknown = sorted(set(spec) - _DOCTOR_FLEET_KEYS)
    if unknown:
        raise SystemExit(
            f"unknown fleet key(s): {', '.join(unknown)} "
            f"(expected: {', '.join(sorted(_DOCTOR_FLEET_KEYS))})"
        )
    kwargs = dict(spec)
    if "quarantined" in kwargs:
        kwargs["quarantined"] = tuple(
            (int(host), int(core)) for host, core in kwargs["quarantined"]
        )
    if "faults" in kwargs:
        try:
            kwargs["faults"] = FleetFaultPlan.from_dict(kwargs["faults"])
        except FaultInjectionError as exc:
            raise SystemExit(f"fleet.faults: {exc}")
    return FleetConfig(**kwargs)


def cmd_doctor(args) -> int:
    """Static validation-plane audit: cross-check declared configs for
    contradictions *before* anything runs (ROADMAP item 5)."""
    spec: dict = {}
    if args.config is not None:
        try:
            with open(args.config, encoding="utf-8") as fh:
                spec = json.load(fh)
        except OSError as exc:
            raise SystemExit(f"cannot read {args.config}: {exc}")
        except ValueError as exc:
            raise SystemExit(f"{args.config} is not valid JSON: {exc}")
        if not isinstance(spec, dict):
            raise SystemExit(
                f"{args.config}: expected a JSON object with "
                "'pipeline' and/or 'fleet' sections"
            )
        unknown = sorted(set(spec) - {"pipeline", "fleet"})
        if unknown:
            raise SystemExit(
                f"{args.config}: unknown section(s) {', '.join(unknown)} "
                "(expected 'pipeline' and/or 'fleet')"
            )
    pipeline_spec = dict(spec.get("pipeline", {}))
    if args.cores is not None:
        pipeline_spec["validation_cores"] = args.cores
    if args.sampler_target:
        pipeline_spec["sampler_targets"] = list(
            pipeline_spec.get("sampler_targets", ())
        ) + list(args.sampler_target)
    if args.canary_period is not None:
        pipeline_spec.setdefault("canary", {})["period"] = args.canary_period
    if args.canary_deadline is not None:
        pipeline_spec.setdefault("canary", {})["deadline"] = args.canary_deadline
    ft_flags = {
        "watchdog_deadline": args.watchdog_deadline,
        "queue_capacity": args.queue_capacity,
        "overflow_policy": args.overflow_policy,
    }
    for key, value in ft_flags.items():
        if value is not None:
            pipeline_spec.setdefault("fault_tolerance", {})[key] = value
    if args.slo:
        pipeline_spec["slos"] = list(pipeline_spec.get("slos", ())) + args.slo
    try:
        pipeline = _pipeline_from_spec(pipeline_spec)
    except (ConfigurationError, TypeError, ValueError) as exc:
        raise SystemExit(f"bad pipeline spec: {exc}")
    report = audit_pipeline(pipeline)
    fleet_spec = spec.get("fleet")
    if fleet_spec is not None:
        try:
            fleet_config = _fleet_from_spec(fleet_spec)
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"bad fleet spec: {exc}")
        report.merge(audit_fleet(fleet_config))
    elif args.config is None:
        # Bare `doctor`: vet the stock fleet defaults too, so one
        # invocation audits everything the CLI would run unflagged.
        report.merge(audit_fleet(FleetConfig()))
    payload = report.to_json()
    if args.out is not None:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write {args.out}: {exc}")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_audit(payload))
        if args.out is not None:
            print(f"audit artifact     : {args.out}")
    return int(ExitCode.OK) if report.ok else int(ExitCode.FAILURE)


def cmd_perf(args) -> int:
    scenario, orthrus, vanilla, rbv, default_size = _resolve(args.app)
    size = args.ops or default_size
    obs = _make_obs(args)
    timeseries, slos = _timeseries_setup(args)
    ft, chaos = _fault_tolerance_setup(args)
    canary = _canary_config(args)
    profile = _profile_config(args)
    audit = _audit_enabled(args)
    config = lambda obs=None, response=None, timeseries=None, slos=None, \
            ft=None, chaos=None, canary=None, profile=None, \
            audit=None: PipelineConfig(
        app_threads=args.threads,
        validation_cores=args.cores,
        seed=args.seed,
        obs=obs,
        response=response,
        timeseries=timeseries,
        slos=slos,
        fault_tolerance=ft,
        validator_faults=chaos,
        canary=canary,
        profile=profile,
        audit=audit,
    )
    v = vanilla(scenario, size, config())
    o = orthrus(
        scenario, size,
        config(obs, _response_config(args), timeseries, slos, ft, chaos,
               canary, profile, audit),
    )
    r = rbv(scenario, size, config())
    if args.app == "phoenix":
        base = v.metrics.duration
        print(f"vanilla job time : {base * 1e3:.3f} ms")
        print(f"orthrus overhead : {100 * (o.metrics.duration / base - 1):.1f}%")
        print(f"rbv overhead     : {100 * (r.metrics.duration / base - 1):.1f}%")
    else:
        print(f"vanilla throughput : {format_rate(v.metrics.throughput)}")
        print(f"orthrus overhead   : {100 * slowdown(v.metrics.throughput, o.metrics.throughput):.1f}%")
        print(f"rbv overhead       : {100 * slowdown(v.metrics.throughput, r.metrics.throughput):.1f}%")
    print(f"orthrus memory ovh : {100 * o.metrics.memory_overhead:.1f}%")
    print(f"validated/skipped  : {o.metrics.validated}/{o.metrics.skipped}")
    if args.quarantine:
        _print_response(o)
    if canary is not None:
        _print_canary(o)
    rc = 0
    if ft is not None or chaos is not None:
        rc = _finish_fault_tolerance(o, args)
    rc = rc or _finish_audit(o, args)
    _report_timeline(o, args)
    _export_obs(obs, args, o.metrics)
    _export_profile(getattr(o, "profile", None), args)
    return rc


def cmd_latency(args) -> int:
    scenario, orthrus, _vanilla, rbv, default_size = _resolve(args.app)
    size = args.ops or default_size
    obs = _make_obs(args)
    timeseries, slos = _timeseries_setup(args)
    ft, chaos = _fault_tolerance_setup(args)
    canary = _canary_config(args)
    profile = _profile_config(args)
    audit = _audit_enabled(args)
    config = lambda obs=None, response=None, timeseries=None, slos=None, \
            ft=None, chaos=None, canary=None, profile=None, \
            audit=None: PipelineConfig(
        app_threads=args.threads,
        validation_cores=args.cores,
        seed=args.seed,
        obs=obs,
        response=response,
        timeseries=timeseries,
        slos=slos,
        fault_tolerance=ft,
        validator_faults=chaos,
        canary=canary,
        profile=profile,
        audit=audit,
    )
    o = orthrus(
        scenario, size,
        config(obs, _response_config(args), timeseries, slos, ft, chaos,
               canary, profile, audit),
    )
    r = rbv(scenario, size, config())
    ol, rl = o.metrics.validation_latency, r.metrics.validation_latency
    print(f"orthrus validation latency : mean {ol.mean * 1e6:.2f} us, p95 {ol.p95 * 1e6:.2f} us")
    print(f"rbv validation latency     : mean {rl.mean * 1e6:.2f} us, p95 {rl.p95 * 1e6:.2f} us")
    if ol.mean > 0:
        print(f"ratio                      : {rl.mean / ol.mean:.0f}x")
    if args.quarantine:
        _print_response(o)
    if canary is not None:
        _print_canary(o)
    rc = 0
    if ft is not None or chaos is not None:
        rc = _finish_fault_tolerance(o, args)
    rc = rc or _finish_audit(o, args)
    _report_timeline(o, args)
    _export_obs(obs, args, o.metrics)
    _export_profile(getattr(o, "profile", None), args)
    return rc


def cmd_coverage(args) -> int:
    scenario, orthrus, _vanilla, rbv, default_size = _resolve(args.app)
    size = args.ops or default_size
    obs = _make_obs(args)
    # A *shared* profiler instance: every trial activates it, so the
    # payload aggregates the whole campaign (like the shared obs handle).
    prof_config = _profile_config(args)
    prof = make_profiler(prof_config) if prof_config is not None else None
    if prof is not None and prof.sampler is not None:
        prof.sampler.install()
    campaign = FaultInjectionCampaign(
        scenario,
        workload_size=size,
        injection=InjectionConfig(
            n_faults=args.faults, seed=args.seed, trigger_rate=args.trigger_rate
        ),
        # All trials share the handle, so the export aggregates the
        # whole campaign (per-trial traces interleave in trial order).
        # auto_repair stays off under --quarantine: repairing before the
        # digest is taken would reclassify genuine SDC trials as masked.
        make_pipeline=lambda: PipelineConfig(
            app_threads=args.threads,
            validation_cores=args.cores,
            seed=args.seed,
            drain_grace_fraction=args.grace,
            obs=obs,
            response=_response_config(args, auto_repair=False),
            profile=prof,
        ),
        runner=orthrus,
        rbv_runner=rbv if args.rbv else None,
    )
    result = campaign.run()
    outcomes = result.outcome_counts()
    print(f"profiled sites : {len(result.profiled_sites)}")
    print(
        "outcomes       : "
        + ", ".join(f"{kind.value}={count}" for kind, count in outcomes.items())
    )
    for unit in Unit:
        row = result.coverage_table()[unit]
        if row.total_sdcs == 0:
            continue
        rbv_part = (
            f", rbv {row.rbv_detected}/{row.total_sdcs}"
            if row.rbv_detected is not None
            else ""
        )
        print(
            f"  {unit.value:<6}: {row.total_sdcs} SDCs, "
            f"orthrus {row.orthrus_detected}/{row.total_sdcs}{rbv_part}"
        )
    print(f"detection rate : {result.detection_rate:.1%}")
    accuracy = result.attribution_accuracy
    if accuracy is not None:
        print(
            f"attribution    : {accuracy:.1%} of detected trials "
            "implicated the armed core"
        )
    _export_obs(obs, args)
    if prof is not None:
        prof.stop()
        _export_profile(prof.to_payload(), args)
    return int(ExitCode.OK)


def cmd_respond(args) -> int:
    if args.app not in _RESPOND_CLOSURES:
        raise SystemExit(
            f"respond supports {', '.join(sorted(_RESPOND_CLOSURES))}; "
            f"got {args.app!r}"
        )
    scenario = _APPS[args.app][0]()
    obs = _make_obs(args)
    closure = _RESPOND_CLOSURES[args.app]
    fault = (
        value_fault(closure)
        if args.fault_kind == "value"
        else misdirected_fault(closure)
    )
    config = IncidentConfig(
        n_ops=args.ops or 200,
        seed=args.seed,
        app_threads=args.threads,
        validation_cores=args.cores,
        faulty_core=args.faulty_core,
        fault=fault,
        arm_after=args.arm_after,
        probation=args.probation,
        obs=obs,
    )
    result = run_incident(scenario, config)
    report = result.report
    print(
        f"injected           : {args.fault_kind} fault on core "
        f"{config.faulty_core} ({closure})"
    )
    for line in report.summary_lines():
        print(line)
    blamed = str(report.faulty_core) if report.faulty_core >= 0 else "none"
    print(
        "attribution        : "
        + ("correct" if result.attribution_correct else "WRONG")
        + f" (injected core {result.injected_core}, blamed {blamed})"
    )
    print(
        "repair fidelity    : "
        + (
            "heap byte-identical to the fault-free run"
            if result.repaired
            else "heap DIVERGED from the fault-free run"
        )
    )
    if args.probation:
        print(f"readmitted cores   : {result.readmitted or 'none'}")
    # Optional chaos arm: replay the same scenario through the
    # fault-tolerant validation plane so the incident episode also scores
    # how detection holds up when the detectors themselves fail.
    ft, chaos = _fault_tolerance_setup(args)
    audit = _audit_enabled(args)
    stress = None
    ft_rc = 0
    if ft is not None or chaos is not None or audit is not None:
        print("validation-plane stress arm:")
        stress = run_orthrus_server(
            scenario,
            args.ops or 200,
            PipelineConfig(
                app_threads=args.threads,
                validation_cores=args.cores,
                seed=args.seed,
                fault_tolerance=ft,
                validator_faults=chaos,
                audit=audit,
            ),
        )
        if ft is not None or chaos is not None:
            ft_rc = _finish_fault_tolerance(stress, args)
        ft_rc = ft_rc or _finish_audit(stress, args)
    if args.json is not None:
        payload = json.loads(report.to_json())
        if stress is not None and stress.ft is not None:
            payload["fault_tolerance"] = stress.ft.summary()
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(payload, indent=2) + "\n")
        except OSError as exc:
            raise SystemExit(f"cannot write {args.json}: {exc}")
        print(f"incident report    : {args.json}")
    _export_obs(obs, args)
    rc = (
        int(ExitCode.OK)
        if result.repaired and result.attribution_correct
        else int(ExitCode.FAILURE)
    )
    return rc or ft_rc


def _summarize_trace_jsonl(path: str) -> int:
    """Render a saved trace in total post-hoc order (sorted by event_seq;
    ties and legacy traces without the field fall back to timestamp)."""
    events = []
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError as exc:
                    raise SystemExit(f"{path}:{lineno} is not valid JSON: {exc}")
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    events.sort(key=lambda e: (e.get("event_seq", 0), e.get("ts", 0.0)))
    by_kind: dict[str, int] = {}
    for event in events:
        by_kind[event.get("kind", "?")] = by_kind.get(event.get("kind", "?"), 0) + 1
        seq = event.get("event_seq", "?")
        ts = event.get("ts", 0.0)
        rest = " ".join(
            f"{key}={value}"
            for key, value in event.items()
            if key not in ("event_seq", "ts", "kind")
        )
        print(f"#{seq:>6} t={ts:.9f} {event.get('kind', '?'):<24} {rest}")
    print(f"-- {len(events)} events, " +
          ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items())))
    missed = by_kind.get("canary.missed", 0)
    if missed:
        print(f"canary liveness    : ALARM — {missed} canary.missed event(s)")
        return int(ExitCode.CANARY_MISSED)
    return int(ExitCode.OK)


def _canary_status_from_registry(registry) -> int:
    """Print canary liveness from a reloaded registry; the exit-status
    contribution is 3 when the run recorded a missed canary."""
    issued = sum(
        child.value for _, child in registry.series("orthrus_canary_issued_total")
    )
    if not issued:
        return int(ExitCode.OK)
    detected = sum(
        child.value
        for _, child in registry.series("orthrus_canary_detected_total")
    )
    missed = sum(
        child.value for _, child in registry.series("orthrus_canary_missed_total")
    )
    status = "ALARM" if missed else "ok"
    print(
        f"canary liveness: {status} — {issued:.0f} issued, "
        f"{detected:.0f} detected, {missed:.0f} missed"
    )
    return int(ExitCode.CANARY_MISSED) if missed else int(ExitCode.OK)


def cmd_fleet(args) -> int:
    quarantined = []
    for spec in args.quarantine or ():
        try:
            host, core = spec.split(":", 1)
            quarantined.append((int(host), int(core)))
        except ValueError:
            raise SystemExit(
                f"bad --quarantine {spec!r}; expected HOST:CORE (two ints)"
            )
    try:
        faults = FleetFaultPlan.parse(
            crashes=args.host_crash or (),
            partitions=args.partition or (),
            degradations=args.degrade_link or (),
            stragglers=args.straggle or (),
        )
        if args.chaos_crashes or args.chaos_partitions:
            faults = faults.merge(FleetFaultPlan.generate(
                hosts=args.hosts,
                epochs=args.epochs,
                crashes=args.chaos_crashes,
                partitions=args.chaos_partitions,
                seed=args.chaos_seed,
            ))
    except FaultInjectionError as exc:
        raise SystemExit(str(exc))
    config = FleetConfig(
        hosts=args.hosts,
        shards=args.shards,
        cores_per_host=args.cores_per_host,
        validators_per_shard=args.validators,
        app_cores_per_shard=args.app_cores,
        vnodes=args.vnodes,
        keys=args.keys,
        users=args.users,
        ops_per_user=args.ops_per_user,
        scale=args.scale,
        epochs=args.epochs,
        load_factor=args.load_factor,
        mercurial_rate=args.mercurial_rate,
        corruption_rate=args.corruption_rate,
        min_coverage=args.min_coverage,
        queue_capacity=args.fleet_queue_capacity,
        quarantined=tuple(quarantined),
        watchdog_deadline=args.watchdog_deadline,
        slo_window=args.slo_window,
        ground_shards=args.ground_shards,
        faults=None if faults.empty else faults,
        failover_retry_budget=args.failover_retry_budget,
        failover_backoff_epochs=args.failover_backoff,
        probation_epochs=args.probation_epochs,
        seed=args.seed,
    )
    if config.faults is not None:
        print(
            f"chaos plan         : {len(faults.crashes)} crash(es), "
            f"{len(faults.partitions)} partition(s), "
            f"{len(faults.degradations)} degradation(s), "
            f"{len(faults.stragglers)} straggler window(s) "
            f"[digest {faults.digest()[:16]}…]"
        )
    try:
        report = run_fleet(
            config,
            workers=args.workers,
            profile=True if _profile_config(args) is not None else None,
            group_timeout_s=args.group_timeout,
        )
    except FleetConfigError as exc:
        print(str(exc), file=sys.stderr)
        return int(ExitCode.FAILURE)
    except FleetExecutionError as exc:
        print(f"fleet DEGRADED     : {exc}", file=sys.stderr)
        for record in exc.outcomes:
            print(
                f"  group {record['group']} ({record['status']}): "
                f"{record['failure']} — {record['error']}",
                file=sys.stderr,
            )
        return int(ExitCode.DEGRADED_FLEET)
    print(report.render())
    audit_rc = _finish_audit(report, args)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"fleet rollup       : {args.json}")
    if args.events_out is not None:
        with open(args.events_out, "w", encoding="utf-8") as fh:
            for event in report.events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")
        print(f"fleet events       : {len(report.events)} -> {args.events_out}")
    if args.metrics_out is not None:
        if args.metrics_out.endswith(".prom"):
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(to_prometheus(report.registry))
        else:
            write_metrics_json(report.registry, args.metrics_out)
        print(f"metrics snapshot   : {args.metrics_out}")
    if args.timeline_out is not None:
        write_timeline_json(report.timeline, args.timeline_out)
        print(f"timeline artifact  : {args.timeline_out}")
    _export_profile(report.profile, args)
    if report.degraded:
        # partial results outrank SAFE_HOLD: the operator must know the
        # report itself is incomplete before trusting any gate on it
        lost = [r for r in report.fan_out if r["status"] == "lost"]
        missing = report.rollup["conservation"]["missing_shards"]
        print(
            f"fleet DEGRADED     : {len(lost)} host group(s) lost, "
            f"{len(missing)} shard(s) missing from the merge",
            file=sys.stderr,
        )
        return int(ExitCode.DEGRADED_FLEET)
    if report.safe_hold:
        held = report.rollup["degradation"]["safe_hold_shards"]
        print(
            f"fleet SAFE_HOLD    : {len(held)} shard(s) cannot vouch for "
            f"results ({', '.join(held[:8])}{'…' if len(held) > 8 else ''})",
            file=sys.stderr,
        )
        return int(ExitCode.SAFE_HOLD)
    return audit_rc


def cmd_profile(args) -> int:
    """One Orthrus run under the self-profiler: subsystem share table,
    throughput meter, and optional JSON / flamegraph artifacts."""
    scenario, orthrus, _vanilla, _rbv, default_size = _resolve(args.app)
    size = args.ops or default_size
    result = orthrus(
        scenario, size,
        PipelineConfig(
            app_threads=args.threads,
            validation_cores=args.cores,
            seed=args.seed,
            profile=ProfileConfig(
                sample=args.sample, sample_budget=args.sample_budget
            ),
        ),
    )
    payload = getattr(result, "profile", None)
    if payload is None:
        print(f"(the {type(result).__name__} runner does not attach the "
              "profiler; no profile recorded)")
        return int(ExitCode.FAILURE)
    print(render_profile(payload))
    if args.out is not None:
        try:
            write_profile_json(payload, args.out)
        except OSError as exc:
            raise SystemExit(f"cannot write {args.out}: {exc}")
        print(f"profile artifact   : {args.out}")
    if args.flame_out is not None:
        try:
            written = write_collapsed(payload, args.flame_out)
        except OSError as exc:
            raise SystemExit(f"cannot write {args.flame_out}: {exc}")
        print(f"flamegraph stacks  : {written} -> {args.flame_out} "
              "(collapsed; feed to flamegraph.pl or speedscope)")
    return int(ExitCode.OK)


def cmd_obs_summary(args) -> int:
    if args.path.endswith(".jsonl"):
        return _summarize_trace_jsonl(args.path)
    try:
        snapshot = load_metrics_json(args.path)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.path} is not valid JSON: {exc}")
    if isinstance(snapshot, dict) and snapshot.get("format") == AUDIT_FORMAT:
        print(render_audit(snapshot))
        errors = snapshot.get("summary", {}).get("errors", 0)
        return int(ExitCode.FAILURE) if errors else int(ExitCode.OK)
    if isinstance(snapshot, dict) and snapshot.get("format") == PROFILE_FORMAT:
        if args.format == "prom":
            registry = MetricsRegistry()
            export_profile(snapshot, registry)
            print(to_prometheus(registry), end="")
            return int(ExitCode.OK)
        print(render_profile(snapshot))
        return int(ExitCode.OK)
    if not isinstance(snapshot, dict) or snapshot.get("format") != "orthrus-metrics/1":
        raise SystemExit(
            f"{args.path} is not an orthrus-metrics/1 snapshot or an "
            "orthrus-profile/1 payload (expected the JSON written by "
            "--metrics-out or --profile-out)"
        )
    if args.format == "prom":
        print(to_prometheus(snapshot), end="")
        return int(ExitCode.OK)
    print(console_summary(snapshot), end="")
    registry = MetricsRegistry.from_snapshot(snapshot)
    stages = stage_stats_from_registry(registry)
    if stages:
        print("\nper-stage latency waterfall (orthrus_span_stage_seconds):")
        print(render_waterfall(stages), end="")
    return _canary_status_from_registry(registry)


_TIMELINE_STATS = ("count", "mean", "min", "max", "p50", "p95", "last")


def cmd_timeline(args) -> int:
    try:
        series_map = load_timeline(args.path)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.path}: {exc}")
    canary_missed = series_map.get("canary_missed")
    if args.series:
        missing = [name for name in args.series if name not in series_map]
        if missing:
            raise SystemExit(
                f"series not in artifact: {', '.join(missing)} "
                f"(have: {', '.join(series_map)})"
            )
        series_map = {name: series_map[name] for name in args.series}
    if args.format == "jsonl":
        for series in series_map.values():
            for t, value in series.values(args.stat):
                print(json.dumps(
                    {"series": series.name, "t": t,
                     "stat": args.stat, "value": value}
                ))
        if canary_missed is not None and canary_missed.summary()["max"]:
            return int(ExitCode.CANARY_MISSED)
        return int(ExitCode.OK)
    width = max(len(name) for name in series_map) if series_map else 0
    for series in series_map.values():
        points = [value for _, value in series.values(args.stat)]
        if args.format == "table":
            stats = series.summary()
            print(f"{series.name.ljust(width)}  " + "  ".join(
                f"{stat}={stats[stat]:.4g}" for stat in _TIMELINE_STATS
            ))
            continue
        spark = render_sparkline(points, width=args.width)
        low = f"{min(points):.3g}" if points else "-"
        high = f"{max(points):.3g}" if points else "-"
        unit = f" {series.unit}" if series.unit else ""
        print(
            f"{series.name.ljust(width)}  {spark}  "
            f"[{low}, {high}]{unit} ({series.total_samples} samples)"
        )
    if canary_missed is not None:
        missed = canary_missed.summary()["max"]
        status = "ALARM" if missed else "ok"
        print(f"canary liveness: {status} — {missed:.0f} missed")
        if missed:
            return int(ExitCode.CANARY_MISSED)
    return int(ExitCode.OK)


def cmd_latency_attrib(args) -> int:
    """Decompose a saved run's detection latency into causal stages.

    Accepts either a Chrome trace from ``--spans-out`` (full per-chain
    attribution with reconciliation) or an ``orthrus-metrics/1`` snapshot
    from ``--metrics-out`` (per-stage waterfall only — the histogram
    family survives even after the span buffer is gone).
    """
    try:
        with open(args.path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.path} is not valid JSON: {exc}")
    if isinstance(payload, dict) and payload.get("format") == "orthrus-metrics/1":
        registry = MetricsRegistry.from_snapshot(payload)
        stages = stage_stats_from_registry(registry)
        if not stages:
            raise SystemExit(
                f"{args.path} has no orthrus_span_stage_seconds family "
                "(was the run made with spans enabled?)"
            )
        print(f"per-stage latency waterfall ({args.path}):")
        print(render_waterfall(stages), end="")
        print("(snapshot input: no per-chain reconciliation; use a "
              "--spans-out trace for that)")
        return int(ExitCode.OK)
    try:
        spans = load_spans_chrome(args.path)
    except ValueError as exc:
        raise SystemExit(f"{args.path}: {exc}")
    attr = attribute(spans)
    e2e = attr.end_to_end()
    print(
        f"causal chains      : {attr.chain_count} "
        f"({e2e.count} verdict-terminated)"
    )
    print(
        f"end-to-end latency : p50 {format_seconds(e2e.p50)}, "
        f"p95 {format_seconds(e2e.p95)}, p99 {format_seconds(e2e.p99)}, "
        f"max {format_seconds(e2e.max)}"
    )
    recon = attr.reconciliation()
    print(
        "reconciliation     : stage sums vs end-to-end, max residual "
        f"{format_seconds(recon['max_residual'])} across "
        f"{recon['chains']} chains "
        + ("(reconciled)" if recon["reconciled"] else "(NOT RECONCILED)")
    )
    print()
    print(render_waterfall(attr.stages()), end="")
    if args.by_level:
        for level, stages in attr.by_level().items():
            print(f"\ndegradation level: {level}")
            print(render_waterfall(stages), end="")
    if args.by_closure:
        for closure, stages in attr.by_closure().items():
            print(f"\nclosure: {closure or '(unnamed)'}")
            print(render_waterfall(stages), end="")
    return (
        int(ExitCode.OK) if recon["reconciled"] else int(ExitCode.FAILURE)
    )


def cmd_bench_compare(args) -> int:
    names = args.bench or sorted(BENCHES)
    for name in names:
        if name not in BENCHES:
            raise SystemExit(
                f"unknown benchmark {name!r}; tracked: {', '.join(sorted(BENCHES))}"
            )
    failures = 0
    for name in names:
        artifact = run_bench(name, scale=args.scale, seed=args.seed)
        path = write_artifact(artifact, args.out_dir)
        print(f"wrote {path} (wall {format_wall(artifact['wall_time_s'])})")
        baseline_path = os.path.join(args.baseline_dir, artifact_filename(name))
        if args.update:
            write_artifact(artifact, args.baseline_dir)
            print(f"baseline updated: {baseline_path}")
            continue
        if not os.path.exists(baseline_path):
            print(f"no baseline at {baseline_path}; skipping comparison "
                  "(run with --update to create one)")
            continue
        try:
            baseline = load_artifact(baseline_path)
        except ValueError as exc:
            raise SystemExit(str(exc))
        comparison = compare_artifacts(baseline, artifact, tolerance=args.tolerance)
        print(render_comparison(comparison))
        if not comparison.ok:
            failures += 1
    return int(ExitCode.FAILURE) if failures else int(ExitCode.OK)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run Orthrus-reproduction experiments from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and subcommands")

    def audit_flags(p):
        p.add_argument(
            "--audit", action="store_true",
            help="attach the runtime drift monitor (declared config vs "
            "observed behavior) and print the orthrus-audit/1 report; "
            "exits 1 on ERROR-severity drift",
        )
        p.add_argument(
            "--audit-out", default=None, metavar="PATH",
            help="save the orthrus-audit/1 drift payload (implies --audit)",
        )

    def common(p):
        p.add_argument("--app", default="memcached", help="application to drive")
        p.add_argument("--ops", type=int, default=None, help="workload size")
        p.add_argument("--threads", type=int, default=2, help="application threads")
        p.add_argument("--cores", type=int, default=2, help="validation cores")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="enable observability and save a metrics snapshot "
            "(JSON; Prometheus text when PATH ends in .prom)",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="enable tracing and save a JSON-lines event trace",
        )
        p.add_argument(
            "--spans-out", default=None, metavar="PATH",
            help="enable causal span tracing and save a Chrome trace-event "
            "file (loadable in Perfetto / chrome://tracing, and by the "
            "latency-attrib subcommand)",
        )

    def canary_flags(p):
        p.add_argument(
            "--canary-period", type=float, default=None, metavar="SIM_S",
            help="inject a known-corrupt canary closure every SIM_S "
            "virtual seconds and track validation-plane liveness",
        )
        p.add_argument(
            "--canary-deadline", type=float, default=None, metavar="SIM_S",
            help="detection deadline per canary before a canary.missed "
            "incident is raised (default: 3x the period); implies "
            "--canary-period",
        )

    def quarantine_flag(p):
        p.add_argument(
            "--quarantine", action="store_true",
            help="attach the response layer (arbitration + quarantine) to "
            "the Orthrus arm and report what it concluded",
        )

    def timeline_flags(p):
        p.add_argument(
            "--timeline-out", default=None, metavar="PATH",
            help="attach the time-series recorder to the Orthrus arm and "
            "save an orthrus-timeseries/1 artifact",
        )
        p.add_argument(
            "--timeline-cadence", type=float, default=5e-6, metavar="SIM_S",
            help="sampling cadence in sim-seconds (default: %(default)g)",
        )
        p.add_argument(
            "--slo", action="append", default=None, metavar="SPEC",
            help="SLO objective '<series> <stat> <op> <value>[unit]' "
            "(e.g. 'validation_lag_p95 p95 <= 200us'); repeatable, "
            "replaces the stock objectives",
        )

    def profile_flags(p):
        p.add_argument(
            "--profile-out", default=None, metavar="PATH",
            help="self-profile the Orthrus arm (subsystem wall-time "
            "shares, events/s meter) and save the orthrus-profile/1 "
            "payload; never affects the run digest",
        )
        p.add_argument(
            "--flame-out", default=None, metavar="PATH",
            help="also save collapsed flamegraph stacks "
            "(flamegraph.pl / speedscope input); implies profiling",
        )
        p.add_argument(
            "--sample", action="store_true",
            help="also attach the budgeted sys.setprofile sampling "
            "profiler (adds Python-frame stacks to --flame-out)",
        )
        p.add_argument(
            "--sample-budget", type=float, default=0.02, metavar="FRAC",
            help="sampling-overhead budget as a fraction of wall time "
            "(default: %(default)s); the sampler uninstalls itself once "
            "the budget is exhausted",
        )

    def fault_tolerance_flags(p):
        p.add_argument(
            "--validator-faults", action="append", default=None,
            metavar="KIND=N",
            help="arm chaos faults against the validation plane itself "
            "(crash|hang|slowdown|verdict-loss; N < 1 is a fraction of "
            "the validation cores, N >= 1 a core count); repeatable, "
            "routes the Orthrus arm through the fault-tolerant driver",
        )
        p.add_argument(
            "--degradation", action="store_true",
            help="enable the fault-tolerant validation plane (bounded "
            "queues, watchdog re-dispatch, NORMAL->DEGRADED->"
            "CHECKSUM_ONLY->SAFE_HOLD ladder) even with no faults armed",
        )
        p.add_argument(
            "--queue-capacity", type=int, default=None, metavar="N",
            help="bounded per-validator queue capacity (default: 64); "
            "implies --degradation",
        )
        p.add_argument(
            "--overflow-policy", choices=sorted(OVERFLOW_POLICIES),
            default=None,
            help="bounded-queue overflow policy (default: drop-oldest); "
            "implies --degradation",
        )
        p.add_argument(
            "--watchdog-deadline", type=float, default=None, metavar="SIM_S",
            help="virtual-time deadline per dispatched log before the "
            "watchdog re-dispatches it (default: 500e-6); implies "
            "--degradation",
        )
        p.add_argument(
            "--ft-json", default=None, metavar="PATH",
            help="save the fault-tolerance report (conservation ledger, "
            "watchdog counters, terminal degradation state) as JSON",
        )

    doctor = sub.add_parser(
        "doctor",
        help="statically audit validation-plane configs for "
        "contradictions (exit 1 on ERROR findings)",
    )
    doctor.add_argument(
        "--config", default=None, metavar="PATH",
        help="JSON file with 'pipeline' and/or 'fleet' sections to audit "
        "(default: audit the stock pipeline + fleet defaults)",
    )
    doctor.add_argument(
        "--cores", type=int, default=None,
        help="validation cores to declare",
    )
    doctor.add_argument(
        "--sampler-target", action="append", default=None, metavar="CLOSURE",
        help="declare a sampler target closure (repeatable; unregistered "
        "names are exactly the nba-stats-scraper failure mode)",
    )
    canary_flags(doctor)
    doctor.add_argument(
        "--watchdog-deadline", type=float, default=None, metavar="SIM_S",
        help="watchdog deadline to declare",
    )
    doctor.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="bounded validation-queue capacity to declare",
    )
    doctor.add_argument(
        "--overflow-policy", default=None, metavar="POLICY",
        help="bounded-queue overflow policy to declare (free-form on "
        "purpose: the audit flags unknown policies)",
    )
    doctor.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="SLO objective '<series> <stat> <op> <value>[unit]' "
        "(repeatable)",
    )
    doctor.add_argument(
        "--json", action="store_true",
        help="print the orthrus-audit/1 payload as JSON instead of text",
    )
    doctor.add_argument(
        "--out", default=None, metavar="PATH",
        help="save the orthrus-audit/1 artifact",
    )

    perf = sub.add_parser("perf", help="Fig 6-style performance comparison")
    common(perf)
    quarantine_flag(perf)
    timeline_flags(perf)
    fault_tolerance_flags(perf)
    canary_flags(perf)
    profile_flags(perf)
    audit_flags(perf)

    latency = sub.add_parser("latency", help="Fig 8-style validation latency")
    common(latency)
    quarantine_flag(latency)
    timeline_flags(latency)
    fault_tolerance_flags(latency)
    canary_flags(latency)
    profile_flags(latency)
    audit_flags(latency)

    coverage = sub.add_parser("coverage", help="Table 2-style fault campaign")
    common(coverage)
    quarantine_flag(coverage)
    profile_flags(coverage)
    coverage.add_argument("--faults", type=int, default=24)
    coverage.add_argument("--trigger-rate", type=float, default=1.0)
    coverage.add_argument("--grace", type=float, default=4.0,
                          help="drain window as a fraction of run duration")
    coverage.add_argument("--rbv", action="store_true",
                          help="also run the RBV arm per SDC trial")

    respond = sub.add_parser(
        "respond",
        help="one inject→detect→quarantine→repair incident episode",
    )
    common(respond)
    respond.add_argument(
        "--fault-kind", choices=("value", "misdirected"), default="value",
        help="value: corrupt a computed digest in place; misdirected: "
        "corrupt the hash so writes land on the wrong object",
    )
    respond.add_argument(
        "--faulty-core", type=int, default=0,
        help="core armed with the persistent fault (a validation-core id "
        "exercises the faulty-validator arbitration case)",
    )
    respond.add_argument(
        "--arm-after", type=int, default=10,
        help="ops served healthy before the fault is armed",
    )
    respond.add_argument(
        "--probation", action="store_true",
        help="disarm the fault after repair and run probation probes",
    )
    respond.add_argument(
        "--json", default=None, metavar="PATH",
        help="save the IncidentReport as JSON (includes the "
        "fault_tolerance summary when the stress arm ran)",
    )
    fault_tolerance_flags(respond)
    audit_flags(respond)

    fleet = sub.add_parser(
        "fleet",
        help="fleet-scale sharded simulation with deterministic "
        "cross-shard merge",
    )
    fleet.add_argument("--hosts", type=int, default=8)
    fleet.add_argument("--shards", type=int, default=16)
    fleet.add_argument(
        "--cores-per-host", type=int, default=32, metavar="N",
        help="cores per host (default: %(default)s)",
    )
    fleet.add_argument(
        "--validators", type=int, default=4, metavar="N",
        help="validator cores per shard (default: %(default)s)",
    )
    fleet.add_argument(
        "--app-cores", type=int, default=4, metavar="N",
        help="application cores per shard (default: %(default)s)",
    )
    fleet.add_argument(
        "--vnodes", type=int, default=256, metavar="N",
        help="ring partitions per shard (default: %(default)s)",
    )
    fleet.add_argument("--keys", type=int, default=200_000,
                       help="versioned keys placed on the ring")
    fleet.add_argument("--users", type=int, default=20_000,
                       help="simulated users")
    fleet.add_argument("--ops-per-user", type=float, default=10.0)
    fleet.add_argument(
        "--scale", type=float, default=1.0,
        help="multiplier on keys/users (CI smoke passes 0.1)",
    )
    fleet.add_argument("--epochs", type=int, default=96,
                       help="validation epochs to simulate")
    fleet.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="OS processes to fan host groups across (digest is "
        "byte-identical for any value)",
    )
    fleet.add_argument(
        "--load-factor", type=float, default=1.0,
        help="demand multiplier vs provisioned validator capacity "
        "(overload knob; high values walk shards to SAFE_HOLD)",
    )
    fleet.add_argument(
        "--min-coverage", type=float, default=0.05, metavar="FRAC",
        help="must-validate floor per shard: the fraction of offered logs "
        "the sampler may never shed (the rest queues under overload)",
    )
    fleet.add_argument(
        "--queue-capacity", dest="fleet_queue_capacity", type=int,
        default=512, metavar="LOGS",
        help="per-shard validation queue depth before overflow drops",
    )
    fleet.add_argument(
        "--mercurial-rate", type=float, default=1e-3, metavar="P",
        help="probability any core is silently defective",
    )
    fleet.add_argument(
        "--corruption-rate", type=float, default=1e-3, metavar="P",
        help="per-op corruption probability on a defective core",
    )
    fleet.add_argument(
        "--quarantine", action="append", default=None, metavar="HOST:CORE",
        help="pre-quarantine a core (repeatable; topology checks reject "
        "a shard whose whole validator pool is quarantined)",
    )
    fleet.add_argument(
        "--watchdog-deadline", type=float, default=500e-6, metavar="SIM_S",
    )
    fleet.add_argument(
        "--slo-window", type=float, default=2e-3, metavar="SIM_S",
        help="SLO window the watchdog deadline must fit inside",
    )
    fleet.add_argument(
        "--ground-shards", type=int, default=4, metavar="N",
        help="shards that also run the real DES memcached/lsmtree server",
    )
    fleet.add_argument(
        "--host-crash", action="append", default=None,
        metavar="HOST@EPOCH[+RESTART]",
        help="crash a host at an epoch, optionally restarting after "
        "RESTART epochs (repeatable; its shards re-home via the ring "
        "and re-admit through a probation window)",
    )
    fleet.add_argument(
        "--partition", action="append", default=None,
        metavar="A-B@EPOCH+DURATION",
        help="sever the link between a host pair for a window "
        "(repeatable; RBV spill reroutes or falls back to checksum-only)",
    )
    fleet.add_argument(
        "--degrade-link", action="append", default=None,
        metavar="A-B@EPOCH+DURATION[:FACTOR]",
        help="slow the link between a host pair by FACTOR "
        "(default 4.0) for a window (repeatable)",
    )
    fleet.add_argument(
        "--straggle", action="append", default=None,
        metavar="H1,H2@EPOCH+DURATION[:FACTOR]",
        help="run a host group at FACTOR validator capacity "
        "(default 0.5) for a window (repeatable)",
    )
    fleet.add_argument(
        "--chaos-crashes", type=int, default=0, metavar="N",
        help="additionally generate N seeded host crashes "
        "(deterministic in --chaos-seed)",
    )
    fleet.add_argument(
        "--chaos-partitions", type=int, default=0, metavar="N",
        help="additionally generate N seeded spill-link partitions",
    )
    fleet.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the generated chaos batch (default: %(default)s)",
    )
    fleet.add_argument(
        "--failover-retry-budget", type=int, default=4, metavar="N",
        help="re-dispatch attempts for a dead host's re-homed backlog "
        "(capped-exponential backoff; default: %(default)s)",
    )
    fleet.add_argument(
        "--failover-backoff", type=int, default=1, metavar="EPOCHS",
        help="base backoff before the first re-dispatch attempt "
        "(default: %(default)s)",
    )
    fleet.add_argument(
        "--probation-epochs", type=int, default=4, metavar="EPOCHS",
        help="clean epochs a restarted host idles before re-admission "
        "(default: %(default)s)",
    )
    fleet.add_argument(
        "--group-timeout", type=float, default=None, metavar="S",
        help="per-host-group wall-clock deadline for the supervised "
        "fan-out (default: none)",
    )
    fleet.add_argument("--seed", type=int, default=1)
    fleet.add_argument(
        "--json", default=None, metavar="PATH",
        help="save the orthrus-fleet/1 rollup (digest, coverage, census)",
    )
    fleet.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="save the merged, totally-ordered event stream as JSON lines",
    )
    fleet.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="save the merged fleet registry (orthrus-metrics/1; "
        "Prometheus text when PATH ends in .prom)",
    )
    fleet.add_argument(
        "--timeline-out", default=None, metavar="PATH",
        help="save the merged fleet timeline (orthrus-timeseries/1)",
    )
    fleet.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="self-profile planning/simulation/merge across workers and "
        "save the merged orthrus-profile/1 payload (per-worker "
        "utilization + straggler attribution; digest-neutral)",
    )
    fleet.add_argument(
        "--flame-out", default=None, metavar="PATH",
        help="also save the merged collapsed flamegraph stacks",
    )
    audit_flags(fleet)

    profile = sub.add_parser(
        "profile",
        help="self-profile one Orthrus run: subsystem timer table, "
        "throughput meter, optional flamegraph stacks",
    )
    profile.add_argument("--app", default="memcached", help="application to drive")
    profile.add_argument("--ops", type=int, default=None, help="workload size")
    profile.add_argument("--threads", type=int, default=2,
                         help="application threads")
    profile.add_argument("--cores", type=int, default=2,
                         help="validation cores")
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument(
        "--sample", action="store_true",
        help="attach the budgeted sys.setprofile sampling profiler "
        "(adds Python-frame stacks to --flame-out)",
    )
    profile.add_argument(
        "--sample-budget", type=float, default=0.02, metavar="FRAC",
        help="sampling-overhead budget as a fraction of wall time "
        "(default: %(default)s)",
    )
    profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="save the orthrus-profile/1 payload (obs-summary renders it)",
    )
    profile.add_argument(
        "--flame-out", default=None, metavar="PATH",
        help="save collapsed flamegraph stacks "
        "(flamegraph.pl / speedscope input)",
    )

    obs_summary = sub.add_parser(
        "obs-summary",
        help="render a saved metrics snapshot (or a .jsonl trace in "
        "event_seq order)",
    )
    obs_summary.add_argument(
        "path",
        help="JSON snapshot from --metrics-out, or a .jsonl trace "
        "from --trace-out",
    )
    obs_summary.add_argument(
        "--format", choices=("table", "prom"), default="table",
        help="output format (default: human-readable table)",
    )

    timeline = sub.add_parser(
        "timeline", help="render an orthrus-timeseries/1 artifact"
    )
    timeline.add_argument("path", help="artifact from --timeline-out")
    timeline.add_argument(
        "--series", action="append", default=None, metavar="NAME",
        help="only these series (repeatable; default: all)",
    )
    timeline.add_argument(
        "--stat", default="mean",
        choices=("count", "mean", "min", "max", "p50", "p95", "last"),
        help="bucket statistic to plot (default: mean)",
    )
    timeline.add_argument(
        "--format", choices=("spark", "table", "jsonl"), default="spark",
        help="sparklines, whole-run summary table, or JSON-lines points",
    )
    timeline.add_argument(
        "--width", type=int, default=60, help="sparkline width (columns)"
    )

    latency_attrib = sub.add_parser(
        "latency-attrib",
        help="decompose a saved run's latency into causal stages "
        "(queue wait, dispatch, validate, ...)",
    )
    latency_attrib.add_argument(
        "path",
        help="Chrome trace from --spans-out, or an orthrus-metrics/1 "
        "snapshot from --metrics-out",
    )
    latency_attrib.add_argument(
        "--by-level", action="store_true",
        help="also break the waterfall down per degradation level",
    )
    latency_attrib.add_argument(
        "--by-closure", action="store_true",
        help="also break the waterfall down per closure kind",
    )

    bench_compare = sub.add_parser(
        "bench-compare",
        help="run tracked benchmarks, write BENCH_*.json, diff vs baselines",
    )
    bench_compare.add_argument(
        "--bench", action="append", default=None, metavar="NAME",
        help=f"benchmark to run (repeatable; default: all of "
        f"{', '.join(sorted(BENCHES))})",
    )
    bench_compare.add_argument(
        "--out-dir", default="bench-artifacts", metavar="DIR",
        help="where BENCH_<name>.json artifacts are written",
    )
    bench_compare.add_argument(
        "--baseline-dir", default="benchmarks/baselines", metavar="DIR",
        help="directory holding the baseline artifacts",
    )
    bench_compare.add_argument(
        "--tolerance", type=float, default=0.1,
        help="relative drift allowed per metric (default: %(default)s)",
    )
    bench_compare.add_argument(
        "--scale", type=float, default=0.25,
        help="workload scale factor (must match the baseline's)",
    )
    bench_compare.add_argument("--seed", type=int, default=1)
    bench_compare.add_argument(
        "--update", action="store_true",
        help="rewrite the baselines from this run instead of comparing",
    )
    parser.epilog = "subcommands: " + ", ".join(subcommand_names(parser))
    return parser


#: subcommand name -> handler.  The roster drift test asserts this stays
#: in lockstep with the subparsers ``build_parser`` registers.
_HANDLERS = {
    "list": cmd_list,
    "doctor": cmd_doctor,
    "perf": cmd_perf,
    "latency": cmd_latency,
    "coverage": cmd_coverage,
    "respond": cmd_respond,
    "fleet": cmd_fleet,
    "profile": cmd_profile,
    "obs-summary": cmd_obs_summary,
    "timeline": cmd_timeline,
    "latency-attrib": cmd_latency_attrib,
    "bench-compare": cmd_bench_compare,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
