"""Command-line front end: run experiments without pytest.

Usage (also exposed as the ``repro-bench`` console script)::

    python -m repro.cli list
    python -m repro.cli perf --app memcached --ops 2000
    python -m repro.cli coverage --app masstree --faults 32 --cores 2
    python -m repro.cli latency --app lsmtree --ops 2000
    python -m repro.cli respond --app memcached --fault-kind misdirected
    python -m repro.cli perf --metrics-out run.json --trace-out run.jsonl
    python -m repro.cli obs-summary run.json

Each subcommand drives the same harness the benchmark suite uses and
prints a compact report; seeds make every invocation reproducible.
``--metrics-out`` / ``--trace-out`` enable the observability layer on the
Orthrus arm and save a metrics snapshot (JSON, or Prometheus text when the
path ends in ``.prom``) and a JSON-lines trace; ``obs-summary`` re-renders
a saved JSON snapshot as a table.

``respond`` runs one full inject→detect→quarantine→repair incident
episode and prints the resulting IncidentReport; ``--quarantine`` on
perf/latency/coverage attaches the response layer (arbitration +
quarantine) to the Orthrus arm of those experiments.
"""

from __future__ import annotations

import argparse
import functools
import sys

from repro.faultinject.campaign import FaultInjectionCampaign
from repro.faultinject.config import InjectionConfig
from repro.harness.incident import (
    IncidentConfig,
    misdirected_fault,
    run_incident,
    value_fault,
)
from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import (
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)
from repro.machine.units import Unit
from repro.obs import (
    Observability,
    console_summary,
    load_metrics_json,
    to_prometheus,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.response import ResponseConfig
from repro.sim.metrics import slowdown

#: app name → (scenario factory, orthrus runner, vanilla runner, rbv runner,
#:             default workload size)
_APPS = {
    "memcached": (memcached_scenario, None, None, None, 2000),
    "masstree": (masstree_scenario, None, None, None, 1500),
    "lsmtree": (lsmtree_scenario, None, None, None, 1500),
    "phoenix": (
        phoenix_scenario,
        functools.partial(run_phoenix, variant="orthrus"),
        functools.partial(run_phoenix, variant="vanilla"),
        functools.partial(run_phoenix, variant="rbv"),
        30000,
    ),
}


def _resolve(app: str):
    if app not in _APPS:
        raise SystemExit(f"unknown app {app!r}; choose from {', '.join(_APPS)}")
    factory, orthrus, vanilla, rbv, default_size = _APPS[app]
    return (
        factory(),
        orthrus or run_orthrus_server,
        vanilla or run_vanilla_server,
        rbv or run_rbv_server,
        default_size,
    )


#: per-app closure the ``respond`` fault defaults target (the insert path
#: — the closure whose outputs feed everything downstream)
_RESPOND_CLOSURES = {"memcached": "mc.set", "lsmtree": "lsm.put"}


def cmd_list(_args) -> int:
    print("applications:")
    for name, (_, _, _, _, size) in _APPS.items():
        print(f"  {name:<10} (default workload size {size})")
    print("\nsubcommands: perf, latency, coverage, respond, obs-summary")
    return 0


def _make_obs(args) -> Observability | None:
    """An Observability handle when export flags ask for one, else None
    (the pipeline then runs fully uninstrumented)."""
    if args.metrics_out is None and args.trace_out is None:
        return None
    for path in (args.metrics_out, args.trace_out):
        if path is None:
            continue
        # Fail before the run, not at export time — a bad path after a
        # long campaign would throw the whole run away.
        try:
            with open(path, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            raise SystemExit(f"cannot write {path}: {exc}")
    return Observability(trace=args.trace_out is not None)


def _export_obs(obs: Observability | None, args, run_metrics=None) -> None:
    """Write the snapshot/trace the flags requested and report the paths."""
    if obs is None:
        return
    if run_metrics is not None:
        run_metrics.export_to(obs.registry)
    if args.metrics_out is not None:
        if args.metrics_out.endswith(".prom"):
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(to_prometheus(obs.registry))
        else:
            write_metrics_json(obs.registry, args.metrics_out)
        print(f"metrics snapshot   : {args.metrics_out}")
    if args.trace_out is not None:
        written = write_trace_jsonl(obs.tracer, args.trace_out)
        print(f"trace events       : {written} -> {args.trace_out}")


def _response_config(args, auto_repair: bool = True) -> ResponseConfig | None:
    """The --quarantine flag's ResponseConfig for the Orthrus arm (or None)."""
    if not getattr(args, "quarantine", False):
        return None
    return ResponseConfig(auto_repair=auto_repair)


def _print_response(result) -> None:
    """Response-layer rollup for a RunResult produced with --quarantine."""
    if result.incident is None:
        print("response           : (runner does not attach the response layer)")
        return
    summary = result.runtime.report.summary()
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(summary["by_kind"].items()))
    print(
        f"detections         : {summary['total']}"
        + (f" ({kinds})" if kinds else "")
    )
    incident = result.incident
    print(f"quarantined cores  : {incident.quarantined_cores or 'none'}")
    if incident.faulty_core >= 0:
        print(f"implicated core    : {incident.faulty_core}")
        print(
            f"repaired versions  : {incident.versions_repaired}"
            f"/{incident.versions_corrupted} corrupted"
        )


def cmd_perf(args) -> int:
    scenario, orthrus, vanilla, rbv, default_size = _resolve(args.app)
    size = args.ops or default_size
    obs = _make_obs(args)
    config = lambda obs=None, response=None: PipelineConfig(
        app_threads=args.threads,
        validation_cores=args.cores,
        seed=args.seed,
        obs=obs,
        response=response,
    )
    v = vanilla(scenario, size, config())
    o = orthrus(scenario, size, config(obs, _response_config(args)))
    r = rbv(scenario, size, config())
    if args.app == "phoenix":
        base = v.metrics.duration
        print(f"vanilla job time : {base * 1e3:.3f} ms")
        print(f"orthrus overhead : {100 * (o.metrics.duration / base - 1):.1f}%")
        print(f"rbv overhead     : {100 * (r.metrics.duration / base - 1):.1f}%")
    else:
        print(f"vanilla throughput : {v.metrics.throughput / 1e3:.0f} kop/s")
        print(f"orthrus overhead   : {100 * slowdown(v.metrics.throughput, o.metrics.throughput):.1f}%")
        print(f"rbv overhead       : {100 * slowdown(v.metrics.throughput, r.metrics.throughput):.1f}%")
    print(f"orthrus memory ovh : {100 * o.metrics.memory_overhead:.1f}%")
    print(f"validated/skipped  : {o.metrics.validated}/{o.metrics.skipped}")
    if args.quarantine:
        _print_response(o)
    _export_obs(obs, args, o.metrics)
    return 0


def cmd_latency(args) -> int:
    scenario, orthrus, _vanilla, rbv, default_size = _resolve(args.app)
    size = args.ops or default_size
    obs = _make_obs(args)
    config = lambda obs=None, response=None: PipelineConfig(
        app_threads=args.threads,
        validation_cores=args.cores,
        seed=args.seed,
        obs=obs,
        response=response,
    )
    o = orthrus(scenario, size, config(obs, _response_config(args)))
    r = rbv(scenario, size, config())
    ol, rl = o.metrics.validation_latency, r.metrics.validation_latency
    print(f"orthrus validation latency : mean {ol.mean * 1e6:.2f} us, p95 {ol.p95 * 1e6:.2f} us")
    print(f"rbv validation latency     : mean {rl.mean * 1e6:.2f} us, p95 {rl.p95 * 1e6:.2f} us")
    if ol.mean > 0:
        print(f"ratio                      : {rl.mean / ol.mean:.0f}x")
    if args.quarantine:
        _print_response(o)
    _export_obs(obs, args, o.metrics)
    return 0


def cmd_coverage(args) -> int:
    scenario, orthrus, _vanilla, rbv, default_size = _resolve(args.app)
    size = args.ops or default_size
    obs = _make_obs(args)
    campaign = FaultInjectionCampaign(
        scenario,
        workload_size=size,
        injection=InjectionConfig(
            n_faults=args.faults, seed=args.seed, trigger_rate=args.trigger_rate
        ),
        # All trials share the handle, so the export aggregates the
        # whole campaign (per-trial traces interleave in trial order).
        # auto_repair stays off under --quarantine: repairing before the
        # digest is taken would reclassify genuine SDC trials as masked.
        make_pipeline=lambda: PipelineConfig(
            app_threads=args.threads,
            validation_cores=args.cores,
            seed=args.seed,
            drain_grace_fraction=args.grace,
            obs=obs,
            response=_response_config(args, auto_repair=False),
        ),
        runner=orthrus,
        rbv_runner=rbv if args.rbv else None,
    )
    result = campaign.run()
    outcomes = result.outcome_counts()
    print(f"profiled sites : {len(result.profiled_sites)}")
    print(
        "outcomes       : "
        + ", ".join(f"{kind.value}={count}" for kind, count in outcomes.items())
    )
    for unit in Unit:
        row = result.coverage_table()[unit]
        if row.total_sdcs == 0:
            continue
        rbv_part = (
            f", rbv {row.rbv_detected}/{row.total_sdcs}"
            if row.rbv_detected is not None
            else ""
        )
        print(
            f"  {unit.value:<6}: {row.total_sdcs} SDCs, "
            f"orthrus {row.orthrus_detected}/{row.total_sdcs}{rbv_part}"
        )
    print(f"detection rate : {result.detection_rate:.1%}")
    accuracy = result.attribution_accuracy
    if accuracy is not None:
        print(
            f"attribution    : {accuracy:.1%} of detected trials "
            "implicated the armed core"
        )
    _export_obs(obs, args)
    return 0


def cmd_respond(args) -> int:
    if args.app not in _RESPOND_CLOSURES:
        raise SystemExit(
            f"respond supports {', '.join(sorted(_RESPOND_CLOSURES))}; "
            f"got {args.app!r}"
        )
    scenario = _APPS[args.app][0]()
    obs = _make_obs(args)
    closure = _RESPOND_CLOSURES[args.app]
    fault = (
        value_fault(closure)
        if args.fault_kind == "value"
        else misdirected_fault(closure)
    )
    config = IncidentConfig(
        n_ops=args.ops or 200,
        seed=args.seed,
        app_threads=args.threads,
        validation_cores=args.cores,
        faulty_core=args.faulty_core,
        fault=fault,
        arm_after=args.arm_after,
        probation=args.probation,
        obs=obs,
    )
    result = run_incident(scenario, config)
    report = result.report
    print(
        f"injected           : {args.fault_kind} fault on core "
        f"{config.faulty_core} ({closure})"
    )
    for line in report.summary_lines():
        print(line)
    blamed = str(report.faulty_core) if report.faulty_core >= 0 else "none"
    print(
        "attribution        : "
        + ("correct" if result.attribution_correct else "WRONG")
        + f" (injected core {result.injected_core}, blamed {blamed})"
    )
    print(
        "repair fidelity    : "
        + (
            "heap byte-identical to the fault-free run"
            if result.repaired
            else "heap DIVERGED from the fault-free run"
        )
    )
    if args.probation:
        print(f"readmitted cores   : {result.readmitted or 'none'}")
    if args.json is not None:
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(report.to_json(indent=2) + "\n")
        except OSError as exc:
            raise SystemExit(f"cannot write {args.json}: {exc}")
        print(f"incident report    : {args.json}")
    _export_obs(obs, args)
    return 0 if result.repaired and result.attribution_correct else 1


def cmd_obs_summary(args) -> int:
    try:
        snapshot = load_metrics_json(args.path)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.path} is not valid JSON: {exc}")
    if not isinstance(snapshot, dict) or snapshot.get("format") != "orthrus-metrics/1":
        raise SystemExit(
            f"{args.path} is not an orthrus-metrics/1 snapshot "
            "(expected the JSON written by --metrics-out)"
        )
    if args.format == "prom":
        print(to_prometheus(snapshot), end="")
    else:
        print(console_summary(snapshot), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run Orthrus-reproduction experiments from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and subcommands")

    def common(p):
        p.add_argument("--app", default="memcached", help="application to drive")
        p.add_argument("--ops", type=int, default=None, help="workload size")
        p.add_argument("--threads", type=int, default=2, help="application threads")
        p.add_argument("--cores", type=int, default=2, help="validation cores")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="enable observability and save a metrics snapshot "
            "(JSON; Prometheus text when PATH ends in .prom)",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="enable tracing and save a JSON-lines event trace",
        )

    def quarantine_flag(p):
        p.add_argument(
            "--quarantine", action="store_true",
            help="attach the response layer (arbitration + quarantine) to "
            "the Orthrus arm and report what it concluded",
        )

    perf = sub.add_parser("perf", help="Fig 6-style performance comparison")
    common(perf)
    quarantine_flag(perf)

    latency = sub.add_parser("latency", help="Fig 8-style validation latency")
    common(latency)
    quarantine_flag(latency)

    coverage = sub.add_parser("coverage", help="Table 2-style fault campaign")
    common(coverage)
    quarantine_flag(coverage)
    coverage.add_argument("--faults", type=int, default=24)
    coverage.add_argument("--trigger-rate", type=float, default=1.0)
    coverage.add_argument("--grace", type=float, default=4.0,
                          help="drain window as a fraction of run duration")
    coverage.add_argument("--rbv", action="store_true",
                          help="also run the RBV arm per SDC trial")

    respond = sub.add_parser(
        "respond",
        help="one inject→detect→quarantine→repair incident episode",
    )
    common(respond)
    respond.add_argument(
        "--fault-kind", choices=("value", "misdirected"), default="value",
        help="value: corrupt a computed digest in place; misdirected: "
        "corrupt the hash so writes land on the wrong object",
    )
    respond.add_argument(
        "--faulty-core", type=int, default=0,
        help="core armed with the persistent fault (a validation-core id "
        "exercises the faulty-validator arbitration case)",
    )
    respond.add_argument(
        "--arm-after", type=int, default=10,
        help="ops served healthy before the fault is armed",
    )
    respond.add_argument(
        "--probation", action="store_true",
        help="disarm the fault after repair and run probation probes",
    )
    respond.add_argument(
        "--json", default=None, metavar="PATH",
        help="save the IncidentReport as JSON",
    )

    obs_summary = sub.add_parser(
        "obs-summary", help="render a saved metrics snapshot"
    )
    obs_summary.add_argument("path", help="JSON snapshot from --metrics-out")
    obs_summary.add_argument(
        "--format", choices=("table", "prom"), default="table",
        help="output format (default: human-readable table)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "perf": cmd_perf,
        "latency": cmd_latency,
        "coverage": cmd_coverage,
        "respond": cmd_respond,
        "obs-summary": cmd_obs_summary,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
