"""Fleet run report: rollups, console rendering, and the JSON artifact.

The report is the single object the ``fleet`` CLI subcommand consumes:
it owns the merged registry (exported via the standard
``orthrus-metrics/1`` snapshot, so ``obs-summary`` renders fleet runs),
the merged timeline (``orthrus-timeseries/1``, so the ``timeline``
subcommand renders them too), the totally-ordered event stream, and the
fleet digest.  ``to_json`` is the ``orthrus-fleet/1`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.merge import FleetTimeline
from repro.fleet.topology import FleetConfig
from repro.obs.exposure import ExposureLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import format_rate, format_wall, worker_lines
from repro.sim.metrics import RunMetrics

__all__ = ["FleetReport"]

# one formatting helper across the repo (repro.obs.profiling)
_fmt_seconds = format_wall


@dataclass
class FleetReport:
    """Everything one fleet run produced, post-merge."""

    config: FleetConfig
    topology: dict
    digest: str
    events: list
    registry: MetricsRegistry
    timeline: FleetTimeline
    shards: list
    grounds: list
    ground_metrics: list
    workers: int
    wall_s: float
    rollup: dict = field(default_factory=dict)
    #: merged ``orthrus-profile/1`` payload (with per-worker utilization)
    #: when the run was launched with ``run_fleet(..., profile=...)``
    profile: dict | None = None
    #: merged ``orthrus-audit/1`` payload of per-shard drift findings
    audit: dict | None = None
    #: per-host-group supervision records from the fan-out (empty when
    #: the run was inline or every group returned first try)
    fan_out: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Compute the fleet-wide rollups and stamp them into the merged
        registry so they round-trip through ``obs-summary``."""
        registry = self.registry
        value = registry.value
        ops = value("fleet_ops_total")
        validated = value("fleet_validated_total")
        coverage = validated / ops if ops else 0.0
        incidents = {
            labels["kind"]: int(child.value)
            for labels, child in registry.series("fleet_incidents_total")
        }
        census: dict[str, list[int]] = {}
        for shard in self.shards:
            if shard["quarantined_cores"]:
                census.setdefault(shard["host"], []).extend(
                    shard["quarantined_cores"]
                )
        terminal: dict[str, int] = {}
        peak = "normal"
        levels = ("normal", "degraded", "checksum-only", "safe-hold")
        for shard in self.shards:
            terminal[shard["terminal_level"]] = (
                terminal.get(shard["terminal_level"], 0) + 1
            )
            if levels.index(shard["peak_level"]) > levels.index(peak):
                peak = shard["peak_level"]
        safe_hold = sorted(
            s["shard"] for s in self.shards if s["terminal_level"] == "safe-hold"
        )
        ground_rollup = None
        if self.ground_metrics:
            pooled = RunMetrics()
            for metrics in self.ground_metrics:
                pooled.merge(metrics)
            ground_rollup = {
                "shards": len(self.ground_metrics),
                "operations": pooled.operations,
                "validated": pooled.validated,
                "detections": pooled.detections,
                "lag": pooled.validation_latency.summary(),
                "digests": {
                    g["shard"]: g["digest"]
                    for g in sorted(self.grounds, key=lambda g: g["shard"])
                },
            }
        lag = registry.series("fleet_validation_lag_seconds")
        lag_summary = lag[0][1].summary() if lag else {}
        exposure = ExposureLedger.from_registry(registry, subject_label="shard")

        # -- failover rollup (zeros on a healthy fleet) ------------------
        failover_series = registry.series("fleet_failover_lag_seconds")
        failover_lag = (
            failover_series[0][1].summary() if failover_series else {}
        )
        re_homed = int(value("fleet_re_homed_total"))
        recovered = int(value("fleet_failover_recovered_total"))
        failover_dropped = int(value("fleet_failover_dropped_total"))
        failovers = sum(
            1 for event in self.events if event["kind"] == "fleet.failover"
        )
        failover_exposure = exposure.by_reason().get(
            "failover", {"logs": 0, "seconds": 0.0}
        )
        backlog = sum(int(s.get("backlog", 0)) for s in self.shards)

        # -- conservation ledger: every offered log must land in exactly
        # one terminal bucket (the zero-lost-logs acceptance gate) -------
        accounted = (
            int(validated) + int(value("fleet_skipped_total"))
            + int(value("fleet_dropped_total"))
            + int(value("fleet_checksum_validated_total"))
            + re_homed + backlog
        )
        expected_shards = {f"s{i:04d}" for i in range(self.config.shards)}
        missing_shards = sorted(
            expected_shards - {s["shard"] for s in self.shards}
        )
        conservation = {
            "ops": int(ops),
            "accounted": accounted,
            # a fleet with missing shards never balances: their offered
            # logs are unaccounted regardless of what the survivors sum to
            "balanced": accounted == int(ops) and not missing_shards,
            "re_homed_split_ok": re_homed == recovered + failover_dropped,
            "missing_shards": missing_shards,
        }

        self.rollup = {
            "ops": int(ops),
            "validated": int(validated),
            "skipped": int(value("fleet_skipped_total")),
            "dropped": int(value("fleet_dropped_total")),
            "checksum_only": int(value("fleet_checksum_validated_total")),
            "escaped": int(value("fleet_escaped_total")),
            "coverage": coverage,
            "validation_lag": lag_summary,
            "incidents": {"total": sum(incidents.values()), "by_kind": incidents},
            "quarantine": {
                "cores": int(value("fleet_quarantined_cores")),
                "hosts": len(census),
                "census": {host: sorted(cores) for host, cores in sorted(census.items())},
            },
            "degradation": {
                "peak": peak,
                "terminal": dict(sorted(terminal.items())),
                "safe_hold_shards": safe_hold,
            },
            "canary": {
                "issued": int(value("fleet_canary_issued_total")),
                "missed": int(value("fleet_canary_missed_total")),
            },
            "rbv": {
                "remote_logs": int(value("fleet_rbv_remote_logs_total")),
                "remote_bytes": int(value("fleet_rbv_remote_bytes_total")),
            },
            "exposure": exposure.summary(),
            "failover": {
                "hosts_crashed": int(value("fleet_host_crashes_total")),
                "failovers": failovers,
                "re_homed": re_homed,
                "recovered": recovered,
                "dropped": failover_dropped,
                "inherited": int(value("fleet_inherited_total")),
                "lag": failover_lag,
                "exposure": failover_exposure,
            },
            "conservation": conservation,
            "ground": ground_rollup,
        }
        registry.gauge(
            "fleet_hosts", help="simulated hosts"
        ).set(self.config.hosts)
        registry.gauge(
            "fleet_shards", help="simulated shards"
        ).set(self.config.shards)
        registry.gauge(
            "fleet_keys", help="versioned keys placed on the ring"
        ).set(self.config.effective_keys)
        registry.gauge(
            "fleet_users", help="simulated users"
        ).set(self.config.effective_users)
        registry.gauge(
            "fleet_coverage_fraction",
            help="fleet-wide validated fraction of offered logs",
        ).set(coverage)

    # ------------------------------------------------------------------
    @property
    def safe_hold(self) -> bool:
        """Fleet-level SAFE_HOLD: any shard's ladder ended there."""
        return bool(self.rollup["degradation"]["safe_hold_shards"])

    @property
    def degraded(self) -> bool:
        """The run completed on partial results: a host group was lost
        past its bounded retry, or shard summaries are missing.  Maps to
        ``ExitCode.DEGRADED_FLEET`` in the CLI."""
        if any(record["status"] == "lost" for record in self.fan_out):
            return True
        return bool(self.rollup["conservation"]["missing_shards"])

    def to_json(self) -> dict:
        payload = {
            "format": "orthrus-fleet/1",
            "digest": self.digest,
            "topology": self.topology,
            "workload": {
                "keys": self.config.effective_keys,
                "users": self.config.effective_users,
                "ops": self.rollup["ops"],
                "epochs": self.config.epochs,
                "horizon_s": self.config.horizon_s,
            },
            **self.rollup,
            "shards": self.shards,
            "event_count": len(self.events),
            "workers": self.workers,
            "wall_s": round(self.wall_s, 3),
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        if self.audit is not None:
            payload["audit"] = self.audit
        # supervision records ride along only when something failed, so
        # healthy artifacts stay identical across worker counts
        if any(record["status"] != "ok" for record in self.fan_out):
            payload["fan_out"] = self.fan_out
            payload["degraded"] = self.degraded
        return payload

    def render(self) -> str:
        rollup = self.rollup
        topo = self.topology
        lag = rollup["validation_lag"]
        lines = [
            "fleet summary",
            (
                f"  topology        : {topo['hosts']} hosts / {topo['shards']} shards"
                f" / {topo['cores']} cores"
                f" (ring {topo['ring_partitions']} partitions,"
                f" spread {topo['ring_spread'][0]:+.1%}..{topo['ring_spread'][1]:+.1%})"
            ),
            (
                f"  workload        : {self.config.effective_keys:,} keys /"
                f" {self.config.effective_users:,} users /"
                f" {rollup['ops']:,} ops over {self.config.epochs} epochs"
            ),
            (
                f"  coverage        : {rollup['coverage']:.1%} validated"
                f" ({rollup['validated']:,} validated,"
                f" {rollup['skipped']:,} sampled out,"
                f" {rollup['dropped']:,} dropped,"
                f" {rollup['checksum_only']:,} checksum-only)"
            ),
        ]
        if lag:
            lines.append(
                f"  validation lag  : p50={_fmt_seconds(lag['p50'])}"
                f" p95={_fmt_seconds(lag['p95'])}"
                f" p99={_fmt_seconds(lag['p99'])}"
                f" max={_fmt_seconds(lag['max'])}"
            )
        by_kind = rollup["incidents"]["by_kind"]
        kinds = ", ".join(f"{k}={by_kind[k]}" for k in sorted(by_kind)) or "none"
        lines.append(
            f"  incidents       : {rollup['incidents']['total']} ({kinds})"
        )
        lines.append(
            f"  quarantine      : {rollup['quarantine']['cores']} core(s)"
            f" across {rollup['quarantine']['hosts']} host(s)"
        )
        degradation = rollup["degradation"]
        lines.append(
            f"  degradation     : peak={degradation['peak']}"
            f" safe-hold-shards={len(degradation['safe_hold_shards'])}"
        )
        lines.append(
            f"  canary liveness : {rollup['canary']['issued']} issued /"
            f" {rollup['canary']['missed']} missed"
        )
        lines.append(
            f"  cross-host rbv  : {rollup['rbv']['remote_logs']:,} remote logs,"
            f" {rollup['rbv']['remote_bytes'] / 1e6:.2f} MB on the link"
        )
        failover = rollup.get("failover") or {}
        if failover.get("failovers") or failover.get("hosts_crashed"):
            lag = failover["lag"]
            lag_text = (
                f" lag p95={_fmt_seconds(lag['p95'])}" if lag else ""
            )
            lines.append(
                f"  failover        : {failover['hosts_crashed']} host"
                f" crash(es), {failover['failovers']} shard failover(s),"
                f" {failover['re_homed']:,} re-homed"
                f" ({failover['recovered']:,} recovered,"
                f" {failover['dropped']:,} dropped){lag_text}"
            )
        conservation = rollup.get("conservation")
        if conservation is not None:
            status = "balanced" if (
                conservation["balanced"] and conservation["re_homed_split_ok"]
            ) else "IMBALANCED"
            line = (
                f"  conservation    : {status}"
                f" ({conservation['accounted']:,} accounted"
                f" of {conservation['ops']:,} offered)"
            )
            if conservation["missing_shards"]:
                line += (
                    f" — {len(conservation['missing_shards'])}"
                    " shard(s) missing"
                )
            lines.append(line)
        lost = [r for r in self.fan_out if r["status"] != "ok"]
        if lost:
            detail = ", ".join(
                f"group {r['group']} {r['status']}"
                f" ({r['failure']}, {r['attempts']} attempt(s))"
                for r in lost
            )
            lines.append(f"  fan-out         : {detail}")
        exp = rollup.get("exposure")
        if exp and exp["logs"]:
            worst = exp["worst"][0] if exp["worst"] else None
            line = (
                f"  exposure        : {exp['logs']:,} log(s),"
                f" {exp['seconds'] * 1e3:.3f} ms unprotected"
            )
            if worst is not None:
                line += f" (worst shard {worst['subject']})"
            lines.append(line)
        if self.audit is not None:
            summary = self.audit["summary"]
            lines.append(
                f"  drift audit     : {summary['errors']} error(s),"
                f" {summary['warnings']} warning(s)"
                f" over {self.audit['rules_run']} rule-check(s)"
            )
        if rollup["ground"]:
            ground = rollup["ground"]
            lines.append(
                f"  grounded shards : {ground['shards']} DES runs,"
                f" {ground['operations']} ops,"
                f" {ground['detections']} detections,"
                f" lag p95={_fmt_seconds(ground['lag']['p95'])}"
            )
        if self.profile is not None:
            top = self.profile["subsystems"][0] if self.profile["subsystems"] else None
            line = (
                f"  self-profile    :"
                f" {format_rate(self.profile['events_per_s'], 'event/s')}"
            )
            if top is not None:
                line += f", top subsystem {top['name']} ({top['share']:.0%})"
            lines.append(line)
            lines.extend("  " + entry.strip() for entry in worker_lines(self.profile))
        lines.append(
            f"  determinism     : digest {self.digest[:16]}…"
            f" over {len(self.events)} events"
            f" ({self.workers} worker(s), {self.wall_s:.2f}s wall)"
        )
        return "\n".join(lines)
