"""Consistent-hash ring sharding the versioned keyspace across the fleet.

The classic token ring (random vnode positions on a circle) has a
well-known flaw at our scale: even with 256 vnodes per shard, the gap
lengths between tokens follow an exponential distribution and per-shard
load spreads by ±20% or worse — a non-starter when each shard's validator
pool is provisioned for its share of the keyspace.  We instead use
*capacity-bounded rendezvous hashing over ring partitions* (the scheme
behind Ceph's straw buckets and envoy's bounded-load ring):

1. The hash space is split into ``partitions`` equal slices (a power of
   two, so ``key_hash % partitions`` is exact); a key's partition never
   changes as shards come and go.
2. Each (partition, shard) pair gets a pseudo-random weight
   ``mix64(partition_token ^ shard_token)``; every partition ranks all
   shards by descending weight (rendezvous / highest-random-weight).
3. Partitions are assigned greedily, in partition order, to the
   highest-ranked shard that still has headroom under a capacity cap of
   ``ceil(partitions / shards * cap_factor)``.

Properties (enforced by ``tests/fleet/test_ring.py``):

* **balance** — with the default ``cap_factor=1.0`` the cap is exactly
  ``ceil(partitions / shards)`` and total capacity equals demand, so by
  pigeonhole every shard lands in ``[floor, ceil]`` of the mean: balance
  is essentially perfect (far inside the ±15% the tests assert) at every
  fleet size;
* **low remap** — removing a shard re-homes its own ``~1/S`` of the
  keyspace plus a cap-reshuffle cascade measured at ~1% of partitions:
  comfortably under the ``2/N`` remap bound for fleets up to ~64 shards
  (beyond that the cascade floor dominates the shrinking ``2/N`` — the
  measured trade is documented in DESIGN §12);
* **determinism** — weights come from :func:`mix64` over sha256-derived
  tokens, so the map is a pure function of (names, partitions, salt),
  identical across processes and Python versions.

All bulk operations are vectorized: placing 10M keys is one ``%`` and one
fancy-index over a precomputed ``owner_of_partition`` array.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

__all__ = ["mix64", "name_token", "ConsistentHashRing", "DEFAULT_VNODES"]

#: vnodes (ring partitions per shard) used by the fleet topology default
DEFAULT_VNODES = 256

_U64 = np.uint64
_MASK = _U64(0xFFFFFFFFFFFFFFFF)


def mix64(x: np.ndarray | int) -> np.ndarray | int:
    """splitmix64 finalizer: a cheap, high-quality 64-bit mixer.

    Vectorized over numpy uint64 arrays; scalar ints are handled too (the
    single-key lookup path).  All arithmetic is mod 2^64.
    """
    scalar = not isinstance(x, np.ndarray)
    z = np.asarray(x, dtype=_U64)
    with np.errstate(over="ignore"):
        z = (z + _U64(0x9E3779B97F4A7C15)) & _MASK
        z = ((z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)) & _MASK
        z = ((z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)) & _MASK
        z = z ^ (z >> _U64(31))
    return int(z) if scalar else z


def name_token(name: str, salt: int | str = 0) -> int:
    """A stable 64-bit token for a node name (sha256-based, not ``hash()``
    — the builtin is randomized per process and would break determinism
    across fleet workers)."""
    digest = hashlib.sha256(f"{salt}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Capacity-bounded rendezvous assignment of ring partitions to nodes.

    ``nodes`` are shard names (order-insensitive: assignment depends only
    on the name set).  ``partitions`` defaults to the next power of two
    ≥ ``len(nodes) * vnodes``; pass it explicitly when comparing rings
    across membership changes, otherwise the partition grid itself moves.
    """

    def __init__(
        self,
        nodes,
        vnodes: int = DEFAULT_VNODES,
        partitions: int | None = None,
        salt: int | str = 0,
        cap_factor: float = 1.0,
    ):
        names = sorted(set(nodes))
        if not names:
            raise ValueError("ring needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if cap_factor < 1.0:
            raise ValueError("cap_factor must be >= 1.0")
        if partitions is None:
            partitions = 1 << max(1, math.ceil(math.log2(len(names) * vnodes)))
        if partitions < len(names):
            raise ValueError("need at least one partition per node")
        if partitions & (partitions - 1):
            raise ValueError("partitions must be a power of two")
        self.nodes: tuple[str, ...] = tuple(names)
        self.vnodes = vnodes
        self.partitions = partitions
        self.salt = salt
        self.cap_factor = cap_factor
        self.capacity = math.ceil(partitions / len(names) * cap_factor)
        self.owner_of_partition = self._assign_partitions()

    def _assign_partitions(self) -> np.ndarray:
        part_tokens = mix64(np.arange(self.partitions, dtype=_U64))
        node_tokens = np.array(
            [name_token(name, self.salt) for name in self.nodes], dtype=_U64
        )
        with np.errstate(over="ignore"):
            weights = mix64(part_tokens[:, None] ^ node_tokens[None, :])
        # Descending-weight preference list per partition; ``~w`` inverts
        # the order monotonically so a *stable* ascending argsort yields
        # descending weights with index-order tie-breaking.
        prefs = np.argsort(~weights, axis=1, kind="stable")
        loads = np.zeros(len(self.nodes), dtype=np.int64)
        owner = np.empty(self.partitions, dtype=np.int32)
        cap = self.capacity
        for part in range(self.partitions):
            for choice in prefs[part]:
                if loads[choice] < cap:
                    owner[part] = choice
                    loads[choice] += 1
                    break
        return owner

    # -- lookups ---------------------------------------------------------
    def partition_of(self, key_hashes: np.ndarray | int):
        """Key hash(es) → partition index(es); stable across membership."""
        if isinstance(key_hashes, np.ndarray):
            return (key_hashes.astype(_U64) % _U64(self.partitions)).astype(np.int64)
        return int(key_hashes) % self.partitions

    def assign(self, key_hashes: np.ndarray) -> np.ndarray:
        """Bulk placement: uint64 key hashes → node indices (vectorized)."""
        return self.owner_of_partition[self.partition_of(key_hashes)]

    def lookup(self, key_hash: int) -> str:
        return self.nodes[int(self.owner_of_partition[self.partition_of(key_hash)])]

    def partition_counts(self) -> np.ndarray:
        """Partitions owned per node (index-aligned with ``nodes``)."""
        return np.bincount(self.owner_of_partition, minlength=len(self.nodes))

    def load_spread(self) -> tuple[float, float]:
        """(min, max) per-node partition share relative to the mean — the
        balance numbers the ±15% property test checks."""
        counts = self.partition_counts().astype(float)
        mean = counts.mean()
        return float(counts.min() / mean - 1.0), float(counts.max() / mean - 1.0)

    # -- membership changes ----------------------------------------------
    def without(self, *removed: str) -> "ConsistentHashRing":
        """The ring after quarantining nodes out (same partition grid)."""
        remaining = [n for n in self.nodes if n not in set(removed)]
        return ConsistentHashRing(
            remaining,
            vnodes=self.vnodes,
            partitions=self.partitions,
            salt=self.salt,
            cap_factor=self.cap_factor,
        )

    def with_nodes(self, *added: str) -> "ConsistentHashRing":
        """The ring after adding nodes (same partition grid)."""
        return ConsistentHashRing(
            list(self.nodes) + list(added),
            vnodes=self.vnodes,
            partitions=self.partitions,
            salt=self.salt,
            cap_factor=self.cap_factor,
        )

    def remap_fraction(self, other: "ConsistentHashRing") -> float:
        """Fraction of the keyspace whose owning *node name* differs
        between two rings on the same partition grid.  Partitions are
        equal slices of the hash space (power-of-two modulus), so the
        partition fraction is the key fraction."""
        if other.partitions != self.partitions:
            raise ValueError("rings must share a partition grid to compare")
        mine = np.asarray(self.nodes, dtype=object)[self.owner_of_partition]
        theirs = np.asarray(other.nodes, dtype=object)[other.owner_of_partition]
        return float(np.mean(mine != theirs))
