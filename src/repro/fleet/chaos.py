"""Infrastructure chaos compiler + failover engine (DESIGN.md §15).

A :class:`~repro.faultinject.fleet_faults.FleetFaultPlan` describes *what*
breaks — host crash windows, link partitions/degradations, straggling
host groups.  This module decides *what happens next*, entirely at plan
time in the parent process, so every shard stays a pure function of
``(ShardPlan, FleetConfig)`` and the merge-determinism argument of
DESIGN §12 survives chaos untouched:

* **re-homing** — when a host dies, each of its shards' ring partitions
  re-home to survivors via the existing rendezvous remap
  (``ring.without(*dead)`` on the fixed partition grid: the <2/N
  single-node-removal bound).  The dead shard's *arrivals* are
  apportioned per-epoch to the recipients with exact largest-remainder
  integer splits, so fleet-wide conservation (every offered log lands in
  exactly one shard's ledger) holds to the log;
* **backlog re-dispatch** — the coverage-critical logs queued on the
  dead host at crash time are re-dispatched against the recipients'
  validator pools with capped-exponential backoff under
  ``failover_retry_budget`` attempts; whatever the budget cannot drain
  is dropped *with reason*, never silently lost;
* **spill rerouting** — each shard's per-epoch RBV spill route is
  precompiled: the ring-successor peer while healthy, the next live,
  reachable host (with a per-hop latency penalty) around a partition or
  a dead peer, and ``-1`` (fall back to local checksum-only coverage)
  when no route survives;
* **probation** — a restarted host idles through ``probation_epochs``
  before its shards re-admit and arrivals flow home, mirroring
  :class:`~repro.response.quarantine.QuarantineManager` re-admission.

Everything the compiler emits is plain picklable data (tuples of ints
and floats), attached to each :class:`~repro.fleet.shardsim.ShardPlan`
as a :class:`ShardChaos` manifest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CrashWindow",
    "ShardChaos",
    "compile_fleet_chaos",
    "failover_drain_schedule",
    "remap_fractions",
]


@dataclass(frozen=True)
class CrashWindow:
    """One outage of this shard's host, with its precompiled failover."""

    crash_epoch: int
    #: first epoch the host is back up (probation begins); None = stays dead
    restart_epoch: int | None
    #: first epoch arrivals flow home again; None = never within the run
    readmit_epoch: int | None
    #: (recipient shard name, fraction of this shard's partitions) pairs
    recipients: tuple[tuple[str, float], ...]
    #: validator cores across the recipient shards (drain capacity model)
    recovery_pool: int
    #: re-dispatch attempt epochs (capped-exponential backoff, clipped to
    #: the horizon; at most ``failover_retry_budget`` entries)
    drain_epochs: tuple[int, ...]


@dataclass(frozen=True)
class ShardChaos:
    """Per-shard chaos manifest (pure data; picklable)."""

    #: this shard announces host-level transitions (lowest shard id on host)
    primary: bool = False
    crashes: tuple[CrashWindow, ...] = ()
    #: epochs the host is dead (union of crash windows)
    down_epochs: tuple[int, ...] = ()
    #: epochs the host is up but not yet re-admitted
    probation_epochs: tuple[int, ...] = ()
    #: per-epoch demand inherited from dead shards (empty = none ever)
    inherited_ops: tuple[int, ...] = ()
    #: (donor shard id, start epoch, end epoch exclusive, total ops)
    inherited_sources: tuple[tuple[int, int, int, int], ...] = ()
    #: per-epoch spill route host (-1 = no route); empty = static peer
    spill_route: tuple[int, ...] = ()
    #: per-epoch spill lag multiplier (reroute hops × link degradation)
    spill_penalty: tuple[float, ...] = ()
    #: per-epoch local validator capacity factor (straggler windows)
    straggle: tuple[float, ...] = ()

    @property
    def diverted_epochs(self) -> frozenset:
        """Epochs this shard's arrivals flow to recipients instead."""
        return frozenset(self.down_epochs) | frozenset(self.probation_epochs)


def failover_drain_schedule(
    crash_epoch: int, epochs: int, budget: int, base_backoff: int
) -> tuple[int, ...]:
    """Re-dispatch attempt epochs: capped-exponential backoff under a
    retry budget, clipped to the horizon.  With the defaults (budget 4,
    base 1) a crash at e schedules attempts at e+1, e+3, e+7, e+15."""
    base = max(1, base_backoff)
    delay = base
    at = crash_epoch
    schedule = []
    for _ in range(max(0, budget)):
        at += delay
        if at >= epochs:
            break
        schedule.append(at)
        delay = min(delay * 2, 8 * base)
    return tuple(schedule)


def remap_fractions(base_ring, diverted_names) -> dict:
    """For each diverted shard: where its partitions re-home, as
    ``{donor_name: ((recipient_name, fraction), ...)}``.

    Uses the single/multi-node-removal remap on the fixed partition grid
    — survivors keep their own partitions (the <2/N bound), so a donor's
    keyspace spreads across the ring instead of doubling one victim.
    """
    sub = base_ring.without(*diverted_names)
    owner_base = base_ring.owner_of_partition
    owner_sub = sub.owner_of_partition
    fractions: dict[str, tuple] = {}
    for donor in sorted(diverted_names):
        donor_idx = base_ring.nodes.index(donor)
        parts = np.nonzero(owner_base == donor_idx)[0]
        if len(parts) == 0:
            # a capacity-bounded ring never leaves a shard empty, but the
            # conservation contract must survive even if one is
            fractions[donor] = ((sub.nodes[0], 1.0),)
            continue
        counts = np.bincount(owner_sub[parts], minlength=len(sub.nodes))
        fractions[donor] = tuple(
            (sub.nodes[int(i)], float(counts[i]) / float(len(parts)))
            for i in np.nonzero(counts)[0]
        )
    return fractions


def _apportion(total: int, fractions) -> list[tuple[str, int]]:
    """Split ``total`` over ``(name, fraction)`` pairs with deterministic
    largest-remainder rounding: shares sum to exactly ``total``."""
    if total <= 0 or not fractions:
        return [(name, 0) for name, _ in fractions]
    exact = [(name, total * frac) for name, frac in fractions]
    shares = {name: int(value) for name, value in exact}
    shortfall = total - sum(shares.values())
    order = sorted(exact, key=lambda item: (-(item[1] - int(item[1])), item[0]))
    for name, _ in order[:shortfall]:
        shares[name] += 1
    return [(name, shares[name]) for name, _ in fractions]


def compile_fleet_chaos(config, topology, plans) -> dict:
    """Compile the config's fault plan into per-shard manifests.

    Returns ``{shard_id: ShardChaos}`` for every shard the plan touches
    (crash victims, load recipients, rerouted spillers, stragglers);
    untouched shards are absent and simulate exactly as a healthy fleet.
    Pure in ``(config, topology, plans)`` — workers never see the plan,
    only its compiled consequences.
    """
    from repro.fleet.shardsim import _arrivals

    plan = config.faults
    epochs = config.epochs
    hosts = config.hosts
    if plan is None or plan.empty:
        return {}

    # -- per-host outage schedule (union of crash windows) ---------------
    down = [[False] * epochs for _ in range(hosts)]
    probation = [[False] * epochs for _ in range(hosts)]
    crash_specs_by_host: dict[int, list] = {}
    for crash in plan.crashes:
        if not (0 <= crash.host < hosts) or crash.at_epoch >= epochs:
            continue
        restart = (
            None if crash.restart_after is None
            else crash.at_epoch + crash.restart_after
        )
        if restart is not None and restart >= epochs:
            restart = None
        readmit = (
            None if restart is None
            else restart + config.probation_epochs
        )
        if readmit is not None and readmit >= epochs:
            readmit = None
        for epoch in range(crash.at_epoch, restart if restart is not None else epochs):
            down[crash.host][epoch] = True
        if restart is not None:
            for epoch in range(restart, readmit if readmit is not None else epochs):
                probation[crash.host][epoch] = True
        crash_specs_by_host.setdefault(crash.host, []).append(
            (crash.at_epoch, restart, readmit)
        )
    # a later crash overrides an earlier window's probation tail
    for host in range(hosts):
        for epoch in range(epochs):
            if down[host][epoch]:
                probation[host][epoch] = False

    def diverted(host: int, epoch: int) -> bool:
        return down[host][epoch] or probation[host][epoch]

    shard_names = [s.name for s in topology.shards]
    host_of_shard = {s.shard_id: s.host_id for s in topology.shards}
    name_to_id = {name: shard_id for shard_id, name in enumerate(shard_names)}
    base_ring = topology.ring()

    # -- per-epoch re-homing: remap fractions per distinct diverted set --
    fractions_cache: dict[frozenset, dict] = {}

    def fractions_for(dead_names: frozenset) -> dict:
        if dead_names not in fractions_cache:
            fractions_cache[dead_names] = remap_fractions(base_ring, dead_names)
        return fractions_cache[dead_names]

    plans_by_id = {p.shard_id: p for p in plans}
    arrivals_cache: dict[int, list[int]] = {}

    def arrivals_of(shard_id: int) -> list[int]:
        if shard_id not in arrivals_cache:
            arrivals_cache[shard_id] = _arrivals(plans_by_id[shard_id], config)
        return arrivals_cache[shard_id]

    inherited: dict[int, list[int]] = {}
    inherited_by_donor: dict[tuple[int, int], list] = {}
    for epoch in range(epochs):
        dead = frozenset(
            shard_names[s.shard_id]
            for s in topology.shards
            if diverted(s.host_id, epoch)
        )
        if not dead or len(dead) >= len(shard_names):
            continue
        fractions = fractions_for(dead)
        for donor_name in sorted(dead):
            donor_id = name_to_id[donor_name]
            offered = arrivals_of(donor_id)[epoch]
            for recipient_name, share in _apportion(
                offered, fractions[donor_name]
            ):
                if share <= 0:
                    continue
                recipient_id = name_to_id[recipient_name]
                cells = inherited.setdefault(recipient_id, [0] * epochs)
                cells[epoch] += share
                window = inherited_by_donor.setdefault(
                    (recipient_id, donor_id), [epoch, epoch + 1, 0]
                )
                window[1] = epoch + 1
                window[2] += share

    # -- per-shard crash windows (failover + drain schedule) -------------
    crashes_by_shard: dict[int, list[CrashWindow]] = {}
    for host, specs in crash_specs_by_host.items():
        for shard in topology.shards:
            if shard.host_id != host:
                continue
            for crash_epoch, restart, readmit in sorted(specs):
                dead = frozenset(
                    shard_names[s.shard_id]
                    for s in topology.shards
                    if diverted(s.host_id, crash_epoch)
                )
                if len(dead) >= len(shard_names):
                    recipients = ()
                else:
                    recipients = fractions_for(dead).get(shard.name, ())
                crashes_by_shard.setdefault(shard.shard_id, []).append(
                    CrashWindow(
                        crash_epoch=crash_epoch,
                        restart_epoch=restart,
                        readmit_epoch=readmit,
                        recipients=recipients,
                        recovery_pool=(
                            len(recipients) * config.validators_per_shard
                        ),
                        drain_epochs=failover_drain_schedule(
                            crash_epoch, epochs,
                            config.failover_retry_budget,
                            config.failover_backoff_epochs,
                        ),
                    )
                )

    # -- per-shard spill routes around partitions / dead peers -----------
    spill_routes: dict[int, tuple] = {}
    spill_penalties: dict[int, tuple] = {}
    if hosts > 1:
        for shard in topology.shards:
            h = shard.host_id
            route = []
            penalty = []
            for epoch in range(epochs):
                chosen, mult = -1, 1.0
                for hop in range(1, hosts):
                    candidate = (h + hop) % hosts
                    if diverted(candidate, epoch):
                        continue
                    if plan.link_partitioned(h, candidate, epoch):
                        continue
                    chosen = candidate
                    mult = (1.0 + 0.5 * (hop - 1)) * plan.link_factor(
                        h, candidate, epoch
                    )
                    break
                route.append(chosen)
                penalty.append(mult)
            default_peer = topology.peer_host(h)
            if any(r != default_peer for r in route) or any(
                p != 1.0 for p in penalty
            ):
                spill_routes[shard.shard_id] = tuple(route)
                spill_penalties[shard.shard_id] = tuple(penalty)

    # -- per-shard straggler factors -------------------------------------
    straggles: dict[int, tuple] = {}
    if plan.stragglers:
        for shard in topology.shards:
            factors = tuple(
                plan.straggle_factor(shard.host_id, epoch)
                for epoch in range(epochs)
            )
            if any(f != 1.0 for f in factors):
                straggles[shard.shard_id] = factors

    # -- compose ---------------------------------------------------------
    primary_of_host = {
        host.host_id: min(host.shard_ids) for host in topology.hosts
        if host.shard_ids
    }
    manifests: dict[int, ShardChaos] = {}
    touched = (
        set(crashes_by_shard) | set(inherited) | set(spill_routes)
        | set(straggles)
    )
    for shard_id in sorted(touched):
        host = host_of_shard[shard_id]
        sources = tuple(
            (donor_id, start, end, total)
            for (recipient_id, donor_id), (start, end, total)
            in sorted(inherited_by_donor.items())
            if recipient_id == shard_id
        )
        manifests[shard_id] = ShardChaos(
            primary=primary_of_host.get(host) == shard_id,
            crashes=tuple(crashes_by_shard.get(shard_id, ())),
            down_epochs=tuple(
                e for e in range(epochs) if down[host][e]
            ),
            probation_epochs=tuple(
                e for e in range(epochs) if probation[host][e]
            ),
            inherited_ops=tuple(inherited.get(shard_id, ())),
            inherited_sources=sources,
            spill_route=spill_routes.get(shard_id, ()),
            spill_penalty=spill_penalties.get(shard_id, ()),
            straggle=straggles.get(shard_id, ()),
        )
    return manifests
