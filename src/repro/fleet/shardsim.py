"""Per-shard validation-plane simulator (the worker-side unit of work).

Each shard runs an *epoch-driven aggregate model* of one Orthrus
deployment slice: a bounded validation queue fed by that shard's slice of
the fleet workload, a validator pool whose capacity shrinks as mercurial
cores are quarantined, the §6 degradation ladder
(:class:`~repro.runtime.degradation.DegradationController` reused
verbatim as the per-shard state machine), cross-host remote validation
("spill") priced by the :class:`~repro.sim.costs.CostModel` link model,
and canary liveness probes.  A deterministic subset of shards is
additionally *grounded*: it runs the real DES memcached/lsmtree server
through :func:`repro.harness.pipeline.run_orthrus_server`, tying the
aggregate statistics to the byte-level runtime the rest of the repo
tests.

Determinism contract (what the cross-shard merge relies on): a shard's
result is a pure function of ``(ShardPlan, FleetConfig)``.  Every random
draw comes from :func:`repro.fleet.streams.shard_rng` streams namespaced
by (host, shard, purpose), so neither worker count, nor worker identity,
nor the existence of other shards can perturb it.

The queue model follows §3.5's coverage split: ``min_coverage`` of each
epoch's logs is *coverage-critical* (never-validated sites — must queue
and eventually validate), the rest is steady-state resampling served
opportunistically from spare capacity and shed first.  A healthy shard
therefore keeps its queue near empty even when demand exceeds capacity —
sampling is the design point, not overload — and the ladder only walks
when even the critical slice cannot be served.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.fleet.chaos import ShardChaos
from repro.fleet.streams import shard_rng
from repro.fleet.topology import FleetConfig
from repro.obs.audit import Finding, Severity
from repro.obs.exposure import ExposureLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import active as profiling_active
from repro.obs.timeseries import TimeSeries
from repro.runtime.degradation import DegradationController, DegradationLevel

__all__ = ["ShardPlan", "ShardResult", "simulate_shard", "AVG_CLOSURE_CYCLES"]

#: mean re-execution cycles per closure in the aggregate model (the DES
#: apps measure ~1.5-3k cycles/closure; the exact value only scales
#: capacity, the *relative* structure is what matters)
AVG_CLOSURE_CYCLES = 2000

#: per-epoch series kept per shard (merged fleet-wide by the runner);
#: names deliberately match the single-host timeline vocabulary so the
#: ``timeline`` CLI renders fleet artifacts unchanged
SHARD_SERIES = (
    ("validation_lag_p95", "s"),
    ("queue_depth", "logs"),
    ("coverage_fraction", "fraction"),
    ("quarantined_cores", "cores"),
    ("degradation_level", "level"),
    ("rbv_remote_rate", "fraction"),
)


@dataclass(frozen=True)
class ShardPlan:
    """Everything one shard needs to simulate itself (picklable)."""

    shard_id: int
    host_id: int
    shard_name: str
    host_name: str
    app_name: str
    #: keyspace slice and user population placed on this shard by the ring
    keys: int
    users: int
    #: total data operations over the whole run (pre-``load_factor``)
    ops: int
    app_cores: tuple[int, ...]
    validator_cores: tuple[int, ...]
    #: local cores quarantined before the run (operator input)
    quarantined_at_start: tuple[int, ...]
    #: local cores that are silently defective (fleet fault population,
    #: drawn once by the planner from the host-namespaced stream)
    defective_cores: tuple[int, ...]
    peer_host: int
    #: whether this shard also runs the real DES server (grounding)
    ground: bool
    #: compiled infrastructure-chaos manifest (None = healthy; see
    #: repro.fleet.chaos — all cross-shard failover effects arrive here
    #: precomputed, keeping the shard pure in (plan, config))
    chaos: ShardChaos | None = None


@dataclass
class ShardResult:
    """A shard's contribution to the fleet merge (picklable)."""

    shard_id: int
    host_id: int
    #: (t, host_id, shard_id, local_seq, kind, payload) tuples, t-ordered
    events: list = field(default_factory=list)
    #: orthrus-metrics/1 snapshot of the shard-local registry
    snapshot: dict = field(default_factory=dict)
    #: series name -> TimeSeries.to_dict()
    series: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)
    #: terminal drift findings (``Finding.to_dict`` records) — merged
    #: fleet-wide by the runner into the report's audit payload
    audit: list = field(default_factory=list)
    ground: dict | None = None
    ground_metrics: object | None = None


def _jittered_count(rng, expected: float) -> int:
    """Round an expected event count to an integer, with the fractional
    part resolved by one namespaced coin flip — unbiased and cheap, and
    (unlike a true binomial sampler) a single draw regardless of n."""
    whole = int(expected)
    if rng.random() < expected - whole:
        whole += 1
    return whole


def _arrivals(plan: ShardPlan, config: FleetConfig) -> list[int]:
    """Per-epoch demand: a diurnal profile (phase-shifted per shard so
    the fleet's peaks don't align) with multiplicative jitter, integer-
    normalized to ``plan.ops * load_factor`` total."""
    rng = shard_rng(config.seed, plan.host_id, plan.shard_id, "load")
    phase = 2.0 * math.pi * plan.shard_id / max(1, config.shards)
    weights = []
    for epoch in range(config.epochs):
        diurnal = 1.0 + 0.35 * math.sin(
            2.0 * math.pi * epoch / config.epochs + phase
        )
        weights.append(diurnal * (0.9 + 0.2 * rng.random()))
    total = max(0, int(round(plan.ops * config.load_factor)))
    scale = total / sum(weights)
    arrivals = [int(w * scale) for w in weights]
    for i in range(total - sum(arrivals)):
        arrivals[i % config.epochs] += 1
    return arrivals


def simulate_shard(plan: ShardPlan, config: FleetConfig) -> ShardResult:
    """Run one shard's epoch model; pure in (plan, config)."""
    with profiling_active().scope("fleet.shard"):
        return _simulate_shard(plan, config)


def _simulate_shard(plan: ShardPlan, config: FleetConfig) -> ShardResult:
    rng = shard_rng(config.seed, plan.host_id, plan.shard_id, "sim")
    registry = MetricsRegistry()
    labels = {"host": plan.host_name}
    exposure = ExposureLedger(
        registry=registry, subject_label="shard", extra_labels=labels
    )
    series = {
        name: TimeSeries(name, capacity=128, reservoir=8, unit=unit)
        for name, unit in SHARD_SERIES
    }
    result = ShardResult(shard_id=plan.shard_id, host_id=plan.host_id)
    seq = 0

    def emit(t: float, kind: str, **payload) -> None:
        nonlocal seq
        result.events.append((t, plan.host_id, plan.shard_id, seq, kind, payload))
        seq += 1

    costs = config.costs
    per_validation_s = costs.seconds(
        costs.validation_dispatch_cycles + AVG_CLOSURE_CYCLES
    )
    rate_per_core = max(1, int(config.epoch_s / per_validation_s))
    remote_penalty_s = 2.0 * costs.network_transfer_s(config.spill_bytes)

    pool = list(plan.validator_cores)
    quarantined: set[int] = set(plan.quarantined_at_start)
    defective = set(plan.defective_cores)
    detections_by_core: dict[int, int] = {}
    ladder = DegradationController()
    seen_transitions = 0
    queue = 0
    spilling = False

    totals = {
        "ops": 0, "validated": 0, "skipped": 0, "dropped": 0,
        "checksum_only": 0, "detections": 0, "escaped": 0,
        "timeouts": 0, "canary_issued": 0, "canary_missed": 0,
        "remote_logs": 0, "remote_bytes": 0, "quarantines": 0,
        # failover conservation buckets (zero on a healthy fleet)
        "re_homed": 0, "failover_recovered": 0, "failover_dropped": 0,
        "inherited": 0, "diverted": 0, "backlog": 0, "host_crashes": 0,
    }
    lag_hist = registry.histogram(
        "fleet_validation_lag_seconds",
        help="validation lag across fleet shards (log enqueue to verdict)",
    )
    arrivals = _arrivals(plan, config)

    # -- infrastructure chaos (compiled manifest; None on healthy runs:
    # every chaos branch below is guarded so the healthy path replays the
    # exact pre-chaos instruction and RNG sequence) ----------------------
    chaos = plan.chaos
    down_epochs = frozenset(chaos.down_epochs) if chaos else frozenset()
    idle_epochs = (
        down_epochs | frozenset(chaos.probation_epochs)
        if chaos else frozenset()
    )
    #: live failovers: [CrashWindow, pending re-homed backlog]
    active_failovers: list[list] = []
    failover_hist = None
    if chaos is not None:
        failover_hist = registry.histogram(
            "fleet_failover_lag_seconds",
            help="host death to re-dispatch of re-homed backlog, per log",
        )
        series["failover_lag"] = TimeSeries(
            "failover_lag", capacity=128, reservoir=8, unit="s"
        )
        if chaos.primary:
            series["hosts_down"] = TimeSeries(
                "hosts_down", capacity=128, reservoir=8, unit="hosts"
            )
    prev_route = plan.peer_host
    prev_straggle = 1.0

    def quarantine(t: float, core: int, role: str) -> None:
        quarantined.add(core)
        totals["quarantines"] += 1
        emit(
            t, "quarantine",
            core=plan.host_id * config.cores_per_host + core,
            local_core=core, role=role,
            detections=detections_by_core.get(core, 0),
        )

    for epoch in range(config.epochs):
        t = (epoch + 1) * config.epoch_s

        # -- chaos: host transitions + re-homed backlog drains -----------
        if chaos is not None:
            for window in chaos.crashes:
                if window.crash_epoch == epoch:
                    if chaos.primary:
                        totals["host_crashes"] += 1
                        emit(t, "fleet.host_down", host=plan.host_name,
                             epoch=epoch, restart=window.restart_epoch)
                    totals["re_homed"] += queue
                    emit(t, "fleet.failover", re_homed=queue,
                         recipients=[
                             [name, round(frac, 4)]
                             for name, frac in window.recipients
                         ],
                         attempts=len(window.drain_epochs))
                    if queue and window.drain_epochs:
                        active_failovers.append([window, queue])
                    elif queue:
                        # budget 0 or a crash at the horizon: dropped
                        # with reason, never silently lost
                        totals["failover_dropped"] += queue
                        exposure.record(plan.shard_name, "failover",
                                        config.horizon_s - t, queue)
                        emit(t, "fleet.failover.drop", count=queue,
                             reason="retry budget exhausted")
                    queue = 0
                if window.restart_epoch == epoch and chaos.primary:
                    emit(t, "fleet.host_up", host=plan.host_name,
                         epoch=epoch, probation=config.probation_epochs)
                if window.readmit_epoch == epoch and chaos.primary:
                    emit(t, "fleet.readmit", host=plan.host_name, epoch=epoch)
            for state in list(active_failovers):
                window, pending = state
                if epoch not in window.drain_epochs:
                    continue
                lag = (epoch - window.crash_epoch) * config.epoch_s
                drained = min(
                    pending, max(1, window.recovery_pool * rate_per_core // 4)
                )
                totals["failover_recovered"] += drained
                failover_hist.record_many(lag, drained)
                exposure.record(plan.shard_name, "failover", lag, drained)
                series["failover_lag"].append(t, lag)
                state[1] = pending - drained
                emit(t, "fleet.redispatch", drained=drained,
                     remaining=state[1],
                     lag_epochs=epoch - window.crash_epoch)
                if state[1] == 0:
                    active_failovers.remove(state)
                elif epoch == window.drain_epochs[-1]:
                    totals["failover_dropped"] += state[1]
                    exposure.record(plan.shard_name, "failover",
                                    config.horizon_s - t, state[1])
                    emit(t, "fleet.failover.drop", count=state[1],
                         reason="retry budget exhausted")
                    active_failovers.remove(state)
            if chaos.primary:
                series["hosts_down"].append(
                    t, 1.0 if epoch in down_epochs else 0.0
                )
            if epoch in idle_epochs:
                # dead (or on probation): arrivals divert to the ring
                # recipients, which account them — conservation holds
                # fleet-wide, not per-shard
                totals["diverted"] += arrivals[epoch]
                continue

        demand = arrivals[epoch]
        if chaos is not None and chaos.inherited_ops:
            inherited = chaos.inherited_ops[epoch]
            if inherited:
                demand += inherited
                totals["inherited"] += inherited
            for donor_id, start, end, total in chaos.inherited_sources:
                if start == epoch:
                    emit(t, "fleet.inherit", donor=donor_id, ops=total,
                         start=start, end=end)
        totals["ops"] += demand
        must = int(demand * config.min_coverage)

        # -- chaos: spill reroute + straggler windows --------------------
        peer = plan.peer_host
        penalty_mult = 1.0
        straggle = 1.0
        if chaos is not None:
            if chaos.straggle:
                straggle = chaos.straggle[epoch]
                if straggle != prev_straggle:
                    emit(t, "fleet.straggle", factor=straggle)
                    prev_straggle = straggle
            if chaos.spill_route:
                peer = chaos.spill_route[epoch]
                penalty_mult = chaos.spill_penalty[epoch]
                if peer != prev_route:
                    if peer < 0:
                        emit(t, "fleet.partition", peer=plan.peer_host)
                    elif peer == plan.peer_host:
                        emit(t, "fleet.partition.heal", route=peer)
                    else:
                        emit(t, "fleet.partition", peer=plan.peer_host,
                             route=peer, penalty=round(penalty_mult, 3))
                    prev_route = peer

        active = [c for c in pool if c not in quarantined]
        cap_local = (
            0 if ladder.checksum_only
            else int(len(active) * rate_per_core * straggle)
        )
        # Cross-host spill: quarantine-induced deficit is served by the
        # ring-successor host's spare validators at half throughput (the
        # closure log and versions cross the link both ways).
        deficit = len(pool) - len(active)
        cap_remote = 0
        if (
            deficit > 0
            and peer != plan.host_id
            and peer >= 0
            and not ladder.checksum_only
        ):
            cap_remote = max(1, deficit * rate_per_core // 2)
        if (cap_remote > 0) != spilling:
            spilling = cap_remote > 0
            emit(t, "spill.open" if spilling else "spill.close",
                 peer=peer if spilling else plan.peer_host, deficit=deficit)
        capacity = cap_local + cap_remote

        queue += must
        validated_critical = min(queue, capacity)
        queue -= validated_critical
        spare = capacity - validated_critical
        opportunistic_pool = demand - must
        opportunistic = (
            0 if ladder.coverage_only else min(opportunistic_pool, spare)
        )
        validated = validated_critical + opportunistic
        # Conservation: each offered log lands in exactly ONE terminal
        # bucket.  Under CHECKSUM_ONLY the shed slice gets CRC-only
        # coverage (it is not "sampled out" — the sampler is off), while
        # the must slice stays queued for catch-up and is accounted when
        # it validates, drops, or survives as backlog.
        if ladder.checksum_only:
            checksum_only = opportunistic_pool - opportunistic
            skipped = 0
        else:
            checksum_only = 0
            skipped = opportunistic_pool - opportunistic
        partitioned = 0
        if deficit > 0 and peer < 0 and not ladder.checksum_only and queue:
            # the spill path is severed and no reroute survives: the
            # share the peer would have served falls back to local
            # checksum-only coverage instead of stalling critical logs
            # behind a dead link
            partitioned = min(queue, max(1, deficit * rate_per_core // 2))
            queue -= partitioned
            checksum_only += partitioned
            emit(t, "fleet.spill.fallback", count=partitioned)
        remote = max(0, validated - cap_local)
        dropped = max(0, queue - config.queue_capacity)
        queue = min(queue, config.queue_capacity)

        expected_wait = (
            (queue / capacity) * config.epoch_s if capacity else math.inf
        )
        timed_out = queue if (
            queue and expected_wait > config.watchdog_deadline
        ) else 0

        # -- exposure windows (DESIGN §14): every log left unvalidated
        # opens a measured span of vulnerability.  A skip lasts one
        # epoch (the next resampling opportunity); a drop exposes the
        # key for the rest of the run; a stall lasts until the queue
        # drains or the run ends, whichever is sooner. ------------------
        remaining = config.horizon_s - t
        exposure.record(plan.shard_name, "sampled-out", config.epoch_s, skipped)
        exposure.record(plan.shard_name, "queue-drop", remaining, dropped)
        exposure.record(
            plan.shard_name, "checksum-only", config.epoch_s,
            checksum_only - partitioned,
        )
        exposure.record(
            plan.shard_name, "partitioned", config.epoch_s, partitioned
        )
        exposure.record(
            plan.shard_name, "stalled", min(expected_wait, remaining), timed_out
        )

        lag = per_validation_s + (
            (queue / capacity) * config.epoch_s if capacity else config.epoch_s
        )
        if remote:
            lag += remote_penalty_s * penalty_mult * (remote / max(1, validated))
        if validated:
            lag_hist.record(lag * (0.7 + 0.3 * rng.random()))
            lag_hist.record(lag)
            lag_hist.record(lag * (1.4 + 0.4 * rng.random()))

        # -- fault population: corruptions, detections, quarantine -------
        coverage = validated / demand if demand else 0.0
        epoch_detections = 0
        epoch_escaped = 0
        for core in plan.app_cores:
            if core not in defective or core in quarantined:
                continue
            ops_on_core = demand / max(1, len(plan.app_cores))
            corrupted = _jittered_count(
                rng, ops_on_core * config.corruption_rate
            )
            caught = _jittered_count(rng, corrupted * coverage)
            caught = min(caught, corrupted)
            epoch_detections += caught
            epoch_escaped += corrupted - caught
            if caught:
                count = detections_by_core.get(core, 0) + caught
                detections_by_core[core] = count
                if count >= config.detection_threshold and core not in quarantined:
                    quarantine(t, core, "app")
        for core in active:
            if core not in defective:
                continue
            validated_on_core = validated / max(1, len(active))
            caught = _jittered_count(
                rng, validated_on_core * config.corruption_rate
            )
            if caught:
                # Arbitration (majority-of-three on a remote third core)
                # confirms the *validator* is the liar; the round trip is
                # paid on the link model.
                epoch_detections += caught
                totals["remote_logs"] += caught
                totals["remote_bytes"] += caught * 2 * config.spill_bytes
                count = detections_by_core.get(core, 0) + caught
                detections_by_core[core] = count
                if count >= config.detection_threshold:
                    quarantine(t, core, "validator")
        if epoch_detections or epoch_escaped:
            emit(t, "detections", count=epoch_detections,
                 escaped=epoch_escaped, coverage=round(coverage, 4))

        # -- canary liveness --------------------------------------------
        if config.canary_every and epoch % config.canary_every == 0:
            totals["canary_issued"] += 1
            if ladder.checksum_only or capacity == 0:
                totals["canary_missed"] += 1
                emit(t, "canary.missed", level=ladder.level.label)

        # -- degradation ladder -----------------------------------------
        ladder.observe(
            t,
            utilization=queue / config.queue_capacity,
            drop_rate=dropped / max(1, must),
            timeout_rate=min(1.0, timed_out / max(1, must)),
        )
        for transition in ladder.history[seen_transitions:]:
            emit(t, "degradation", frm=transition.frm.label,
                 to=transition.to.label, reason=transition.reason)
        seen_transitions = len(ladder.history)

        totals["validated"] += validated
        totals["skipped"] += skipped
        totals["dropped"] += dropped
        totals["checksum_only"] += checksum_only
        totals["detections"] += epoch_detections
        totals["escaped"] += epoch_escaped
        totals["timeouts"] += timed_out
        totals["remote_logs"] += remote
        totals["remote_bytes"] += remote * 2 * config.spill_bytes

        run_coverage = totals["validated"] / max(1, totals["ops"])
        series["validation_lag_p95"].append(t, lag * 1.6)
        series["queue_depth"].append(t, float(queue))
        series["coverage_fraction"].append(t, run_coverage)
        series["quarantined_cores"].append(t, float(len(quarantined)))
        series["degradation_level"].append(t, float(ladder.level))
        series["rbv_remote_rate"].append(t, remote / max(1, validated))

    horizon = config.horizon_s

    # -- conservation residuals ------------------------------------------
    # every offered log must land in a terminal bucket; what is still
    # queued at the horizon is accounted as backlog, and any failover
    # state the drain schedule somehow left open (unreachable: schedules
    # are horizon-clipped and the final attempt drops the remainder) is
    # folded into failover_dropped rather than lost
    totals["backlog"] = queue
    for _window, pending in active_failovers:
        totals["failover_dropped"] += pending

    # -- grounding: run the real DES server for this shard ---------------
    if plan.ground:
        result.ground, result.ground_metrics = _ground_run(plan, config)
        result.ground["shard"] = plan.shard_name
        emit(horizon, "ground.digest", **{
            k: result.ground[k]
            for k in ("app", "digest", "operations", "validated", "detections")
        })

    # -- shard summary (always the shard's last event: the merge digest
    # covers every counter, so any divergence anywhere is caught) --------
    summary = {
        "shard": plan.shard_name,
        "host": plan.host_name,
        "app": plan.app_name,
        "keys": plan.keys,
        "users": plan.users,
        **totals,
        "coverage": round(totals["validated"] / max(1, totals["ops"]), 6),
        "quarantined_cores": sorted(
            plan.host_id * config.cores_per_host + c for c in quarantined
        ),
        "pre_quarantined": len(plan.quarantined_at_start),
        "terminal_level": ladder.level.label,
        "peak_level": ladder.peak.label,
        "safe_hold": ladder.level >= DegradationLevel.SAFE_HOLD,
    }
    emit(horizon, "shard.summary", **{
        k: summary[k] for k in (
            "shard", "host", "ops", "validated", "skipped", "dropped",
            "checksum_only", "detections", "escaped", "quarantines",
            "canary_missed", "remote_logs", "re_homed", "backlog",
            "terminal_level", "peak_level",
        )
    })
    result.summary = summary

    # -- shard-local drift findings (never event-emitted: the audit
    # artifact rides beside the digest-covered event stream) -------------
    findings = []
    if totals["ops"] and summary["coverage"] < config.min_coverage:
        findings.append(Finding(
            rule="drift-coverage-floor",
            severity=Severity.ERROR,
            subject=plan.shard_name,
            message=(
                f"observed coverage {summary['coverage']:.4f} below the "
                f"declared floor {config.min_coverage:g}"
            ),
            remediation="raise validator capacity or lower min_coverage",
            observed=(
                ("coverage", summary["coverage"]),
                ("floor", config.min_coverage),
            ),
        ))
    if totals["canary_missed"]:
        findings.append(Finding(
            rule="drift-canary-liveness",
            severity=Severity.ERROR,
            subject=plan.shard_name,
            message=(
                f"{totals['canary_missed']} of {totals['canary_issued']} "
                "canary probe(s) missed"
            ),
            remediation=(
                "restore validator capacity; the shard cannot prove the "
                "validation plane is live"
            ),
            observed=(
                ("issued", totals["canary_issued"]),
                ("missed", totals["canary_missed"]),
            ),
        ))
    result.audit = [f.to_dict() for f in findings]

    # -- registry export --------------------------------------------------
    counter_pairs = (
        ("fleet_ops_total", "ops", "data operations offered fleet-wide"),
        ("fleet_validated_total", "validated", "logs validated (local + remote)"),
        ("fleet_skipped_total", "skipped", "steady-state logs shed by the sampler"),
        ("fleet_dropped_total", "dropped", "coverage-critical logs dropped (overflow)"),
        ("fleet_checksum_validated_total", "checksum_only",
         "logs covered only by CRC under CHECKSUM_ONLY"),
        ("fleet_escaped_total", "escaped", "corruptions missed by sampling"),
        ("fleet_timeouts_total", "timeouts", "watchdog deadline overruns"),
        ("fleet_canary_issued_total", "canary_issued", "canary probes issued"),
        ("fleet_canary_missed_total", "canary_missed", "canary probes missed"),
        ("fleet_rbv_remote_logs_total", "remote_logs",
         "closure logs validated on a remote host"),
        ("fleet_rbv_remote_bytes_total", "remote_bytes",
         "bytes shipped for cross-host validation"),
    )
    for name, key, help_text in counter_pairs:
        registry.counter(name, labels, help=help_text).inc(totals[key])
    if chaos is not None:
        # failover counters exist only on chaos runs so healthy-fleet
        # snapshots stay byte-identical to the pre-chaos model
        failover_pairs = (
            ("fleet_host_crashes_total", "host_crashes",
             "planned host crashes executed"),
            ("fleet_re_homed_total", "re_homed",
             "queued logs re-homed off dead hosts"),
            ("fleet_failover_recovered_total", "failover_recovered",
             "re-homed logs recovered by re-dispatch"),
            ("fleet_failover_dropped_total", "failover_dropped",
             "re-homed logs dropped after the retry budget"),
            ("fleet_inherited_total", "inherited",
             "logs inherited from dead shards via the ring remap"),
            ("fleet_diverted_total", "diverted",
             "own arrivals diverted to recipients while down"),
        )
        for name, key, help_text in failover_pairs:
            registry.counter(name, labels, help=help_text).inc(totals[key])
    registry.counter(
        "fleet_detections_total", {**labels, "kind": "sdc"},
        help="confirmed SDC detections",
    ).inc(totals["detections"])
    for kind, amount in (
        ("detection", totals["detections"]),
        ("quarantine", totals["quarantines"]),
        ("canary-miss", totals["canary_missed"]),
        ("degradation", seen_transitions),
        ("safe-hold", 1 if summary["safe_hold"] else 0),
    ):
        if amount:
            registry.counter(
                "fleet_incidents_total", {"kind": kind},
                help="fleet incidents by kind",
            ).inc(amount)
    registry.gauge(
        "fleet_quarantined_cores", labels,
        help="cores quarantined at end of run",
    ).set(len(quarantined))
    registry.gauge(
        "fleet_safe_hold_shards",
        help="shards whose ladder ended in SAFE_HOLD",
    ).set(1 if summary["safe_hold"] else 0)
    registry.gauge(
        "fleet_versioned_bytes", labels,
        help="approx. versioned-heap footprint (64B/key + log headroom)",
    ).set(plan.keys * 96)

    result.snapshot = registry.snapshot()
    result.series = {name: s.to_dict() for name, s in series.items()}
    return result


def _ground_run(plan: ShardPlan, config: FleetConfig):
    """One real DES server run for a grounded shard (imported lazily so
    plain aggregate simulations never pay the harness import)."""
    from repro.determinism import derive_seed
    from repro.harness.pipeline import PipelineConfig, run_orthrus_server
    from repro.harness.scenarios import lsmtree_scenario, memcached_scenario

    scenario = (
        memcached_scenario() if plan.app_name == "memcached" else lsmtree_scenario()
    )
    seed = derive_seed(config.seed, "fleet", "ground", plan.shard_id)
    run = run_orthrus_server(
        scenario, config.ground_ops, PipelineConfig(seed=seed, costs=config.costs)
    )
    ground = {
        "app": plan.app_name,
        "digest": run.digest,
        "operations": run.metrics.operations,
        "validated": run.metrics.validated,
        "detections": run.metrics.detections,
        "lag": run.metrics.validation_latency.summary(),
    }
    return ground, run.metrics
