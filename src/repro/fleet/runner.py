"""Fleet planner and process-parallel runner.

``plan_fleet`` does all cross-shard work *up front* in the parent: bulk
key/user placement over the consistent-hash ring (vectorized — 10M keys
is one modulo and one fancy-index), the per-host mercurial-core draw, and
the grounded-shard selection.  Each resulting :class:`ShardPlan` is
self-contained, so workers need no shared state and no communication —
the precondition for the merge-determinism argument in DESIGN.md §12.

``run_fleet`` fans host groups out across OS processes (``fork`` where
the platform has it, ``spawn`` otherwise; ``workers=1`` runs inline with
no pool at all, which is what the CI digest-equality check compares
against) and folds the shard results through :mod:`repro.fleet.merge`
into a :class:`~repro.fleet.report.FleetReport`.

With ``profile=...`` set, each worker runs its host group under its own
:class:`~repro.obs.profiling.Profiler` and ships the ``orthrus-profile/1``
payload home with the shard results; the parent folds worker payloads
with its own (planning + merge scopes) via the same associative merge
discipline the shard results use, and annotates per-worker utilization
plus the straggler.  Profiling never touches the fleet digest — the
parity test runs w1 vs w4 with and without it.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.pool
import pickle

import numpy as np

from repro.determinism import derive_seed
from repro.errors import FleetExecutionError
from repro.fleet.chaos import compile_fleet_chaos
from repro.fleet.merge import (
    fleet_digest,
    merge_audit,
    merge_events,
    merge_registries,
    merge_timelines,
)
from repro.fleet.report import FleetReport
from repro.fleet.ring import mix64
from repro.fleet.shardsim import ShardPlan, simulate_shard
from repro.fleet.streams import host_rng
from repro.fleet.topology import FleetConfig, FleetTopology
from repro.obs.profiling import (
    WallTimer,
    activation,
    make_profiler,
    merge_profiles,
    worker_summary,
)

__all__ = ["plan_fleet", "run_fleet"]


def plan_fleet(topology: FleetTopology) -> list[ShardPlan]:
    """Place the keyspace/user population and draw the fault population;
    returns one self-contained plan per shard, in shard order."""
    config = topology.config
    ring = topology.ring()
    shard_count = len(topology.shards)
    # ring.nodes is sorted; shard names are zero-padded, so node index i
    # is exactly shard_id i — assert rather than assume.
    assert list(ring.nodes) == [s.name for s in topology.shards]

    key_offset = np.uint64(derive_seed(config.seed, "fleet", "keys"))
    user_offset = np.uint64(derive_seed(config.seed, "fleet", "users"))
    with np.errstate(over="ignore"):
        key_hashes = mix64(
            np.arange(config.effective_keys, dtype=np.uint64) + key_offset
        )
        user_hashes = mix64(
            np.arange(config.effective_users, dtype=np.uint64) + user_offset
        )
    keys_per_shard = np.bincount(ring.assign(key_hashes), minlength=shard_count)
    user_owner = ring.assign(user_hashes)
    users_per_shard = np.bincount(user_owner, minlength=shard_count)
    # A zipf-flavored demand skew: ~1% of users are heavy hitters with
    # 20x the op volume (hash-selected, so placement-independent).
    weights = np.where(user_hashes % np.uint64(100) == 0, 20.0, 1.0)
    weight_per_shard = np.bincount(
        user_owner, weights=weights, minlength=shard_count
    )
    total_weight = float(weight_per_shard.sum()) or 1.0
    ops_exact = config.total_ops * weight_per_shard / total_weight
    ops_per_shard = np.floor(ops_exact).astype(np.int64)
    # Deterministic largest-remainder top-up so shard ops sum exactly.
    shortfall = config.total_ops - int(ops_per_shard.sum())
    if shortfall > 0:
        order = np.argsort(-(ops_exact - ops_per_shard), kind="stable")
        ops_per_shard[order[:shortfall]] += 1

    defective_by_host: dict[int, list[int]] = {}
    for host in topology.hosts:
        rng = host_rng(config.seed, host.host_id, "defects")
        defective_by_host[host.host_id] = [
            core for core in range(host.cores)
            if rng.random() < config.mercurial_rate
        ]

    ground_count = max(0, min(config.ground_shards, shard_count))
    stride = max(1, shard_count // ground_count) if ground_count else 1
    ground_ids = {i * stride for i in range(ground_count)}

    plans = []
    for shard in topology.shards:
        host = topology.hosts[shard.host_id]
        cores = set(shard.app_cores) | set(shard.validator_cores)
        plans.append(
            ShardPlan(
                shard_id=shard.shard_id,
                host_id=shard.host_id,
                shard_name=shard.name,
                host_name=host.name,
                app_name=shard.app_name,
                keys=int(keys_per_shard[shard.shard_id]),
                users=int(users_per_shard[shard.shard_id]),
                ops=int(ops_per_shard[shard.shard_id]),
                app_cores=shard.app_cores,
                validator_cores=shard.validator_cores,
                quarantined_at_start=tuple(
                    c for c in host.quarantined if c in cores
                ),
                defective_cores=tuple(
                    c for c in sorted(cores)
                    if c in defective_by_host[shard.host_id]
                ),
                peer_host=topology.peer_host(shard.host_id),
                ground=shard.shard_id in ground_ids,
            )
        )
    # Infrastructure chaos is compiled here, in the parent, into per-shard
    # manifests (repro.fleet.chaos): workers never see the fault plan,
    # only its precomputed consequences, so shards stay pure in
    # (plan, config) and the w1==w4 digest contract survives chaos.
    if config.faults is not None and not config.faults.empty:
        manifests = compile_fleet_chaos(config, topology, plans)
        plans = [
            dataclasses.replace(plan, chaos=manifests[plan.shard_id])
            if plan.shard_id in manifests else plan
            for plan in plans
        ]
    return plans


def _simulate_group(payload):
    """Worker entry point: simulate one host group's shard plans.

    Module-level (picklable under ``spawn``); receives everything it
    needs in the payload, returns ``(results, profile_payload | None)``
    as plain picklable values.
    """
    config, plans, want_profile = payload
    if not want_profile:
        return [simulate_shard(plan, config) for plan in plans], None
    prof = make_profiler(True)
    with activation(prof):
        with prof.scope("fleet.worker"):
            results = [simulate_shard(plan, config) for plan in plans]
    prof.stop()
    return results, prof.to_payload()


def _classify_failure(exc: BaseException) -> str:
    """Supervision taxonomy: what kind of worker failure was this?

    ``timeout`` — the group missed its deadline (includes a hard-killed
    worker process, which a raw ``Pool`` surfaces only as silence);
    ``pickle`` — the payload or result failed (de)serialization;
    ``crash`` — the simulation itself raised.
    """
    if isinstance(exc, multiprocessing.TimeoutError):
        return "timeout"
    if isinstance(
        exc,
        (
            pickle.PicklingError,
            pickle.UnpicklingError,
            multiprocessing.pool.MaybeEncodingError,
        ),
    ):
        return "pickle"
    return "crash"


def _supervised_fan_out(ctx, workers, payloads, group_timeout_s):
    """Fan host groups out under supervision: per-group deadlines,
    failure classification, one bounded in-parent retry per group, and
    partial-result salvage.

    Returns ``(results, profile_payloads, outcomes)`` where ``outcomes``
    is one supervision record per group.  Raises
    :class:`~repro.errors.FleetExecutionError` only when *every* group is
    lost — a partial fleet is salvaged into a degraded report instead.
    """
    results = []
    profile_payloads = []
    outcomes = []
    with ctx.Pool(processes=workers) as pool:
        handles = [
            pool.apply_async(_simulate_group, (payload,))
            for payload in payloads
        ]
        for index, (payload, handle) in enumerate(zip(payloads, handles)):
            config, plans, _want_profile = payload
            record = {
                "group": index,
                "hosts": sorted({plan.host_id for plan in plans}),
                "shards": len(plans),
                "status": "ok",
                "failure": None,
                "error": None,
                "attempts": 1,
            }
            try:
                group_results, prof = handle.get(timeout=group_timeout_s)
            except Exception as exc:  # noqa: BLE001 — classified below
                record["failure"] = _classify_failure(exc)
                record["error"] = f"{type(exc).__name__}: {exc}"[:200]
                record["attempts"] = 2
                try:
                    # The bounded retry runs inline in the parent: immune
                    # to pool breakage and to result-pickling failures
                    # (nothing crosses a process boundary).  Profiling is
                    # off for the retry — it is not digest material.
                    group_results, prof = _simulate_group(
                        (config, plans, False)
                    )
                    record["status"] = "retried"
                except Exception as retry_exc:  # noqa: BLE001
                    record["status"] = "lost"
                    record["error"] += (
                        f"; retry {type(retry_exc).__name__}: {retry_exc}"
                    )[:400]
                    group_results, prof = [], None
            results.extend(group_results)
            if prof is not None:
                profile_payloads.append(prof)
            outcomes.append(record)
    if not results:
        raise FleetExecutionError(
            f"all {len(payloads)} host group(s) failed supervision",
            outcomes,
        )
    return results, profile_payloads, outcomes


def run_fleet(
    config: FleetConfig, workers: int = 1, profile=None,
    group_timeout_s: float | None = None,
) -> FleetReport:
    """Simulate the fleet and merge the shards into one report.

    ``profile``: None = off; True/ProfileConfig = self-profile the run
    (workers and parent), landing the merged ``orthrus-profile/1``
    payload with per-worker utilization on ``FleetReport.profile``.
    ``group_timeout_s``: per-host-group deadline for the supervised
    fan-out (None = no deadline); a group that misses it is classified,
    retried once inline, and salvaged or recorded as lost.
    """
    timer = WallTimer()
    parent_prof = make_profiler(True if profile else None)
    worker_payloads: list[dict] = []
    with activation(parent_prof):
        with parent_prof.scope("fleet.plan"):
            topology = FleetTopology(config)
            plans = plan_fleet(topology)
        workers = max(1, min(workers, config.hosts))
        fan_out: list[dict] = []
        if workers == 1:
            results, payload = _simulate_group(
                (config, plans, parent_prof.enabled)
            )
            if payload is not None:
                worker_payloads.append(payload)
        else:
            # One worker per host group: hosts are dealt round-robin so
            # every group gets a grounded shard's heavier DES work with the
            # same likelihood.  Which worker runs which group cannot matter
            # — the merge re-establishes the total order.
            groups: list[list[ShardPlan]] = [[] for _ in range(workers)]
            for plan in plans:
                groups[plan.host_id % workers].append(plan)
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            ctx = multiprocessing.get_context(method)
            results, extra_payloads, fan_out = _supervised_fan_out(
                ctx, workers,
                [(config, group, parent_prof.enabled) for group in groups],
                group_timeout_s,
            )
            worker_payloads.extend(extra_payloads)

        with parent_prof.scope("fleet.merge"):
            events = merge_events(results)
            digest = fleet_digest(config, events)
            registry = merge_registries(results)
            timeline = merge_timelines(results, cadence=config.epoch_s)
            audit = merge_audit(results)
    parent_prof.stop()

    profile_payload = None
    if parent_prof.enabled:
        wall_s = timer.elapsed_s()
        profile_payload = merge_profiles(
            worker_payloads + [parent_prof.to_payload()], wall_s=wall_s
        )
        # Per-worker utilization + straggler only make sense when the
        # workers actually profiled (they always do when profiling is on).
        profile_payload.update(worker_summary(worker_payloads))

    report = FleetReport(
        config=config,
        topology=topology.describe(),
        digest=digest,
        events=events,
        registry=registry,
        timeline=timeline,
        shards=[r.summary for r in sorted(results, key=lambda r: r.shard_id)],
        grounds=[r.ground for r in results if r.ground is not None],
        ground_metrics=[
            r.ground_metrics for r in sorted(results, key=lambda r: r.shard_id)
            if r.ground_metrics is not None
        ],
        workers=workers,
        wall_s=timer.elapsed_s(),
        profile=profile_payload,
        audit=audit,
        fan_out=fan_out,
    )
    report.finalize()
    return report
