"""Fleet-scale sharded simulation (DESIGN.md §12).

Orthrus is a fleet-wide defense: mercurial cores are a population
phenomenon (Dixit et al.), findable only with fleet-level coverage
accounting.  This package simulates hundreds of hosts / thousands of
cores: a :class:`FleetTopology` places per-host memcached/lsmtree shards,
a capacity-bounded consistent-hash ring shards the versioned keyspace,
each shard runs a validation-plane model (validator pool, degradation
ladder, cross-host RBV spill, canaries), execution fans out across OS
processes, and a deterministic cross-shard merge guarantees the run
digest is byte-identical regardless of worker count.
"""

from repro.fleet.chaos import (
    CrashWindow,
    ShardChaos,
    compile_fleet_chaos,
    failover_drain_schedule,
    remap_fractions,
)
from repro.fleet.merge import (
    FleetTimeline,
    fleet_digest,
    merge_events,
    merge_registries,
    merge_timelines,
)
from repro.fleet.report import FleetReport
from repro.fleet.ring import DEFAULT_VNODES, ConsistentHashRing, mix64, name_token
from repro.fleet.runner import plan_fleet, run_fleet
from repro.fleet.shardsim import ShardPlan, ShardResult, simulate_shard
from repro.fleet.streams import fleet_seed, host_rng, shard_rng
from repro.fleet.topology import (
    FleetConfig,
    FleetConfigError,
    FleetTopology,
    HostView,
    ShardView,
)

__all__ = [
    "ConsistentHashRing",
    "CrashWindow",
    "DEFAULT_VNODES",
    "FleetConfig",
    "FleetConfigError",
    "FleetReport",
    "FleetTimeline",
    "FleetTopology",
    "HostView",
    "ShardChaos",
    "ShardPlan",
    "ShardResult",
    "ShardView",
    "compile_fleet_chaos",
    "failover_drain_schedule",
    "fleet_digest",
    "fleet_seed",
    "host_rng",
    "merge_events",
    "merge_registries",
    "merge_timelines",
    "mix64",
    "name_token",
    "plan_fleet",
    "remap_fractions",
    "run_fleet",
    "shard_rng",
    "simulate_shard",
]
