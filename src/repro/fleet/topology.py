"""Fleet topology: hosts, cores, shards, and startup sanity checks.

A :class:`FleetConfig` is the declarative description of a simulated
fleet — host/shard counts, per-shard core allocations, workload volume,
fault rates, and the validation-plane knobs each shard's degradation
ladder inherits.  :class:`FleetTopology` materializes it: which host owns
each shard, which local cores form each shard's APP set and validator
pool, and the consistent-hash ring that places the versioned keyspace.

Topology construction *fails closed*: every structural violation found is
collected and raised as one structured :class:`FleetConfigError`.  The
checks themselves live in the shared rule engine
(:mod:`repro.obs.audit` — the fleet rule ids double as the violation
codes here), so the ``doctor`` CLI audits the same invariants the
constructor enforces.  The three checks the fleet issue calls out — a
validator pool entirely quarantined, more core demand than usable cores,
and a watchdog deadline that outlives the SLO window — are exactly the
misconfigurations that would make a fleet *silently* under-validate,
which is the failure mode Orthrus exists to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faultinject.fleet_faults import FleetFaultPlan
from repro.fleet.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.obs.audit import (
    audit_fleet_config,
    audit_fleet_topology,
    findings_to_violations,
)
from repro.sim.costs import DEFAULT_COSTS, CostModel

__all__ = ["FleetConfig", "FleetConfigError", "FleetTopology", "HostView", "ShardView"]


class FleetConfigError(ConfigurationError):
    """A fleet topology failed its startup sanity checks.

    ``violations`` is a list of structured records — ``{"code", "subject",
    "message"}`` — one per independent problem, so an operator (or the
    config auditor of ROADMAP item 5) sees every defect in one pass
    instead of fixing them serially.
    """

    def __init__(self, violations: list[dict]):
        self.violations = list(violations)
        lines = [f"fleet config rejected ({len(violations)} violation(s)):"]
        lines += [
            f"  [{v['code']}] {v['subject']}: {v['message']}" for v in violations
        ]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class FleetConfig:
    """Declarative description of a simulated fleet."""

    # --- shape ----------------------------------------------------------
    hosts: int = 8
    shards: int = 16
    cores_per_host: int = 32
    validators_per_shard: int = 4
    app_cores_per_shard: int = 4
    #: ring partitions per shard (the vnode count of the consistent ring)
    vnodes: int = DEFAULT_VNODES

    # --- workload -------------------------------------------------------
    keys: int = 200_000
    users: int = 20_000
    ops_per_user: float = 10.0
    #: multiplier on keys/users — CI smoke runs pass 0.1
    scale: float = 1.0
    #: run length in validation epochs and the epoch span (virtual time)
    epochs: int = 96
    epoch_s: float = 50e-6
    #: demand multiplier vs provisioned validator capacity (overload knob)
    load_factor: float = 1.0

    # --- fault population (Dixit et al.: defects are a fleet phenomenon) -
    #: probability any given core is mercurial (silently defective)
    mercurial_rate: float = 1e-3
    #: per-op probability a defective APP core corrupts a result
    corruption_rate: float = 1e-3
    #: confirmed detections attributed to a core before quarantine
    detection_threshold: int = 3
    #: (host_id, local_core_id) pairs quarantined before the run starts
    quarantined: tuple = ()

    # --- validation plane ----------------------------------------------
    #: fraction of each epoch's logs that is coverage-critical (must
    #: validate; the rest is steady-state resampling the sampler may shed)
    min_coverage: float = 0.05
    queue_capacity: int = 512
    canary_every: int = 8
    watchdog_deadline: float = 500e-6
    slo_window: float = 2e-3
    #: closure-log bytes shipped per remote (cross-host) validation
    spill_bytes: int = 256

    # --- grounding ------------------------------------------------------
    #: shards that additionally run a real DES memcached/lsmtree server
    ground_shards: int = 4
    ground_ops: int = 120

    # --- infrastructure chaos + failover policy -------------------------
    #: deterministic host-crash / link-partition / straggler schedule
    #: (None = healthy infrastructure; see repro.faultinject.fleet_faults)
    faults: FleetFaultPlan | None = None
    #: re-dispatch attempts for a dead host's re-homed backlog
    #: (capped-exponential backoff between attempts, in epochs)
    failover_retry_budget: int = 4
    #: base backoff before the first re-dispatch attempt, in epochs
    failover_backoff_epochs: int = 1
    #: clean epochs a restarted host must idle through before its shards
    #: re-admit (mirrors QuarantineManager probation)
    probation_epochs: int = 4

    seed: int = 1
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    # -- derived ---------------------------------------------------------
    @property
    def effective_keys(self) -> int:
        return max(1, int(self.keys * self.scale))

    @property
    def effective_users(self) -> int:
        return max(1, int(self.users * self.scale))

    @property
    def total_ops(self) -> int:
        return max(1, int(self.effective_users * self.ops_per_user))

    @property
    def horizon_s(self) -> float:
        return self.epochs * self.epoch_s


@dataclass(frozen=True)
class ShardView:
    """One shard's placement: owning host plus its local core sets."""

    shard_id: int
    host_id: int
    name: str
    #: local core ids on the owning host
    app_cores: tuple[int, ...]
    validator_cores: tuple[int, ...]
    #: "memcached" or "lsmtree" — shards alternate, mirroring a mixed fleet
    app_name: str


@dataclass(frozen=True)
class HostView:
    """One host: its shards and pre-quarantined local cores."""

    host_id: int
    name: str
    cores: int
    shard_ids: tuple[int, ...]
    quarantined: tuple[int, ...]


class FleetTopology:
    """Materialized fleet layout (hosts, shard→core maps, the ring)."""

    def __init__(self, config: FleetConfig):
        self.config = config
        violations = self._scalar_violations(config)
        if violations:
            raise FleetConfigError(violations)
        self._build_views()
        violations = self._structural_violations()
        if violations:
            raise FleetConfigError(violations)

    @classmethod
    def unchecked(cls, config: FleetConfig) -> "FleetTopology":
        """Materialize views without raising on structural violations.

        For the auditor: it reports *every* defect in one pass, so it
        needs a topology even when one would be rejected.  Only safe
        once the scalar rules pass (view building assumes positive
        counts), which :func:`repro.obs.audit.audit_fleet` guarantees.
        """
        topology = cls.__new__(cls)
        topology.config = config
        topology._build_views()
        return topology

    def _build_views(self) -> None:
        config = self.config
        self.hosts: list[HostView] = []
        self.shards: list[ShardView] = []
        self._ring: ConsistentHashRing | None = None
        quarantined_by_host: dict[int, list[int]] = {}
        for host_id, core in config.quarantined:
            quarantined_by_host.setdefault(int(host_id), []).append(int(core))
        for host_id in range(config.hosts):
            shard_ids = tuple(
                s for s in range(config.shards) if s % config.hosts == host_id
            )
            self.hosts.append(
                HostView(
                    host_id=host_id,
                    name=f"h{host_id:03d}",
                    cores=config.cores_per_host,
                    shard_ids=shard_ids,
                    quarantined=tuple(sorted(set(quarantined_by_host.get(host_id, ())))),
                )
            )
            next_core = 0
            for shard_id in shard_ids:
                app = tuple(
                    range(next_core, next_core + config.app_cores_per_shard)
                )
                next_core += config.app_cores_per_shard
                pool = tuple(
                    range(next_core, next_core + config.validators_per_shard)
                )
                next_core += config.validators_per_shard
                self.shards.append(
                    ShardView(
                        shard_id=shard_id,
                        host_id=host_id,
                        name=f"s{shard_id:04d}",
                        app_cores=app,
                        validator_cores=pool,
                        app_name="memcached" if shard_id % 2 == 0 else "lsmtree",
                    )
                )
        self.shards.sort(key=lambda s: s.shard_id)

    # -- sanity checks (delegated to the shared rule engine) -------------
    @staticmethod
    def _scalar_violations(config: FleetConfig) -> list[dict]:
        return findings_to_violations(audit_fleet_config(config))

    def _structural_violations(self) -> list[dict]:
        return findings_to_violations(audit_fleet_topology(self))

    # -- derived views ---------------------------------------------------
    def ring(self) -> ConsistentHashRing:
        """The keyspace ring over shard names (fixed partition grid, so
        quarantine-time membership changes compare remap-minimally).
        Cached: the assignment is O(partitions * shards)."""
        if self._ring is None:
            self._ring = ConsistentHashRing(
                [s.name for s in self.shards],
                vnodes=self.config.vnodes,
                salt=self.config.seed,
            )
        return self._ring

    def global_core(self, host_id: int, local_core: int) -> int:
        return host_id * self.config.cores_per_host + local_core

    @property
    def total_cores(self) -> int:
        return self.config.hosts * self.config.cores_per_host

    def peer_host(self, host_id: int) -> int:
        """The spill target for cross-host remote validation: the next
        host on the ring (wraps; a single-host fleet has no peer)."""
        if self.config.hosts == 1:
            return host_id
        return (host_id + 1) % self.config.hosts

    def describe(self) -> dict:
        """A JSON-able structural summary (the shard map of DESIGN §12)."""
        spread = self.ring().load_spread()
        return {
            "hosts": self.config.hosts,
            "shards": self.config.shards,
            "cores": self.total_cores,
            "validators": self.config.shards * self.config.validators_per_shard,
            "app_cores": self.config.shards * self.config.app_cores_per_shard,
            "ring_partitions": self.ring().partitions,
            "ring_spread": [round(spread[0], 4), round(spread[1], 4)],
            "pre_quarantined": len(self.config.quarantined),
        }
