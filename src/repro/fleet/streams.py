"""Per-host / per-shard namespacing of the determinism RNG streams.

Fleet runs fan out across OS processes, so every stochastic draw must be
a pure function of (root seed, host, shard, purpose) — never of worker
count, worker identity, or iteration order.  These helpers pin the label
path: ``shard_rng(seed, 3, 17, "load")`` is the same stream no matter
which worker simulates shard 17, how many workers exist, or how many
*other* shards the fleet has — adding shard 18 never perturbs shard 17's
draws (the off-by-one-seed bug :func:`repro.determinism.derive_seed`
exists to prevent, extended to the fleet dimension).
"""

from __future__ import annotations

import random

from repro.determinism import derive_seed, derived_rng

__all__ = ["fleet_seed", "host_rng", "shard_rng"]


def fleet_seed(root: int | str, host_id: int, shard_id: int, *labels) -> int:
    """The derived seed behind :func:`shard_rng` (for audit tooling)."""
    return derive_seed(
        root, "fleet", f"h{host_id:03d}", f"s{shard_id:04d}", *labels
    )


def host_rng(root: int | str, host_id: int, *labels) -> random.Random:
    """A stream namespaced to one host (fault-population draws)."""
    return derived_rng(root, "fleet", f"h{host_id:03d}", *labels)


def shard_rng(root: int | str, host_id: int, shard_id: int, *labels) -> random.Random:
    """A stream namespaced to one shard on one host."""
    return random.Random(fleet_seed(root, host_id, shard_id, *labels))
