"""Deterministic cross-shard merge: events, digests, metrics, timelines.

The whole point of the fleet runner's process fan-out is that it is an
*implementation detail*: the merged artifact must be byte-identical
whether one worker simulated every host group or sixteen raced each
other.  Three properties deliver that (DESIGN.md §12):

1. **Pure shards** — each shard's events/series/snapshot are a pure
   function of (plan, config); nothing a worker observes about wall
   clocks, PIDs, or sibling shards can leak in.
2. **Total event order** — shard events carry ``(virtual_time, host_id,
   shard_id, local_seq)``; sorting by that tuple is a total order (no two
   events share all four fields: ``local_seq`` is unique per shard), so
   the merged stream — and the global ``seq`` assigned *after* the merge
   — is independent of arrival order.
3. **Associative rollups** — metrics registries, latency histograms and
   time-series buckets all merge associatively; the runner folds them in
   ascending shard order regardless of which worker produced them.

The fleet digest is a sha256 over the canonically-serialized merged
stream plus the config digest, so two runs agree iff their configs *and*
every event of every shard agree.
"""

from __future__ import annotations

import hashlib
import json

from repro.determinism import stable_digest
from repro.obs.audit import AuditReport, Finding, merge_findings
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import active as profiling_active
from repro.obs.timeseries import TimeSeries

__all__ = [
    "merge_events",
    "fleet_digest",
    "merge_audit",
    "merge_registries",
    "FleetTimeline",
    "merge_timelines",
]


def merge_events(results) -> list[dict]:
    """Merge per-shard event streams into one totally-ordered fleet
    stream with a post-merge global ``seq``."""
    with profiling_active().scope("fleet.merge.events"):
        return _merge_events(results)


def _merge_events(results) -> list[dict]:
    events = []
    for result in results:
        events.extend(result.events)
    events.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
    return [
        {
            "seq": seq,
            "t": t,
            "host": host,
            "shard": shard,
            "kind": kind,
            **payload,
        }
        for seq, (t, host, shard, _local, kind, payload) in enumerate(events)
    ]


def fleet_digest(config, merged_events: list[dict]) -> str:
    """sha256 over (config digest, every merged event) — the replay
    identity of a fleet run.  JSON float serialization is the shortest
    round-trip form, so identical virtual times hash identically across
    processes and platforms."""
    hasher = hashlib.sha256()
    hasher.update(stable_digest(config).encode("ascii"))
    for event in merged_events:
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        hasher.update(b"\n")
        hasher.update(line.encode("utf-8"))
    return hasher.hexdigest()


def merge_registries(results) -> MetricsRegistry:
    """Fold shard registry snapshots in ascending shard order."""
    with profiling_active().scope("fleet.merge.registries"):
        merged = MetricsRegistry()
        for result in sorted(results, key=lambda r: r.shard_id):
            merged.merge_snapshot(result.snapshot)
        return merged


def merge_audit(results) -> dict:
    """Fold per-shard drift findings into one ``orthrus-audit/1`` payload.

    ``merge_findings`` dedupes by (rule, subject, message) and sorts by
    severity, so the payload is identical for any worker count or fold
    order — the same argument the registry merge makes.  Two drift rules
    are evaluated per shard (coverage floor, canary liveness), hence
    ``rules_run``.
    """
    shard_results = sorted(results, key=lambda r: r.shard_id)
    findings = merge_findings(*[
        [Finding.from_dict(entry) for entry in result.audit]
        for result in shard_results
    ])
    report = AuditReport(
        findings=findings,
        rules_run=2 * len(shard_results),
        targets=["fleet-drift"],
    )
    return report.to_json()


class FleetTimeline:
    """Fleet-wide timeline: per-shard series merged by name.

    Duck-compatible with :class:`~repro.obs.timeseries.TimeSeriesRecorder`
    where the artifact layer cares (``to_dict`` / ``summary`` /
    ``series``), so ``write_timeline_json`` and the ``timeline`` CLI
    subcommand work on fleet runs unchanged.
    """

    def __init__(self, cadence: float):
        self.cadence = cadence
        self.samples_taken = 0
        self._series: dict[str, TimeSeries] = {}

    def fold(self, series_dicts: dict[str, dict]) -> None:
        """Merge one shard's serialized series in (name-sorted order)."""
        for name in sorted(series_dicts):
            incoming = TimeSeries.from_dict(series_dicts[name])
            mine = self._series.get(name)
            if mine is None:
                self._series[name] = incoming
            else:
                mine.merge(incoming)
            self.samples_taken += incoming.total_samples

    def series(self, name: str) -> TimeSeries | None:
        return self._series.get(name)

    def names(self) -> list[str]:
        return sorted(self._series)

    def to_dict(self) -> dict:
        return {
            "format": "orthrus-timeseries/1",
            "cadence": self.cadence,
            "samples_taken": self.samples_taken,
            "series": [self._series[name].to_dict() for name in self.names()],
        }

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            name: self._series[name].summary()
            for name in self.names()
            if not self._series[name].empty
        }


def merge_timelines(results, cadence: float) -> FleetTimeline:
    """Merge every shard's series rings in ascending shard order."""
    with profiling_active().scope("fleet.merge.timelines"):
        timeline = FleetTimeline(cadence)
        for result in sorted(results, key=lambda r: r.shard_id):
            timeline.fold(result.series)
        return timeline
