"""Seed derivation and config digests for byte-replayable runs.

Every stochastic component in the reproduction — workload generators, the
AIMD sampler's coin flips, fault-injection plans, validator chaos — must
draw from a :class:`random.Random` seeded from one *root* seed, never from
the process-global ``random`` module (a lint test enforces this).  Two
helpers make that discipline compositional:

* :func:`derive_seed` hashes the root seed with a label path, so each
  component gets an independent, stable stream — adding a component never
  perturbs the draws of another (the classic off-by-one-seed bug where a
  new RNG consumer reshuffles every existing trial);
* :func:`stable_digest` canonically hashes a configuration, so a chaos
  run can be re-created — byte-identically — from its config digest alone.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import random
from typing import Any


def _jsonable(obj: Any) -> Any:
    """Canonical JSON rendering for the config types digests cover."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, frozenset):
        return sorted(_jsonable(v) for v in obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a digest")


def stable_digest(payload: Any) -> str:
    """A stable hex digest of ``payload`` (dataclasses/dicts/sequences)."""
    canon = json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def derive_seed(root: int | str, *labels: int | str) -> int:
    """A 63-bit seed derived from ``root`` and a label path.

    ``derive_seed(1, "chaos")`` and ``derive_seed(1, "workload")`` are
    independent streams of the same run.
    """
    hasher = hashlib.sha256(str(root).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") >> 1


def derived_rng(root: int | str, *labels: int | str) -> random.Random:
    """A seeded RNG for one component of a run."""
    return random.Random(derive_seed(root, *labels))
