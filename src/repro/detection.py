"""Detection events and reports.

Both detection mechanisms — checksum verification at the control/data-path
boundary (§3.4) and re-execution mismatch in the validator (§3.3) — emit
:class:`DetectionEvent` records.  The runtime aggregates them into a
:class:`DetectionReport`; in strict safe mode it aborts instead (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class DetectionEvent:
    """One detected silent data corruption."""

    #: ``"checksum"`` (control-path payload corruption), ``"mismatch"``
    #: (data-path re-execution divergence), or ``"rbv"`` (baseline).
    kind: str
    closure: str
    seq: int
    time: float
    detail: str = ""


@dataclass
class DetectionReport:
    """Aggregated detections for one run."""

    events: list[DetectionEvent] = field(default_factory=list)

    def record(self, event: DetectionEvent) -> None:
        self.events.append(event)

    @property
    def detected(self) -> bool:
        return bool(self.events)

    @property
    def first(self) -> DetectionEvent | None:
        return self.events[0] if self.events else None

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind == kind)

    def clear(self) -> None:
        self.events.clear()
