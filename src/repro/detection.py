"""Detection events and reports.

Both detection mechanisms — checksum verification at the control/data-path
boundary (§3.4) and re-execution mismatch in the validator (§3.3) — emit
:class:`DetectionEvent` records.  The runtime aggregates them into a
:class:`DetectionReport`; in strict safe mode it aborts instead (§3.5).

Each event carries the identities of the cores involved (the APP core that
produced the suspect result and, for re-execution mismatches, the
validation core that disagreed) so the incident-response layer
(:mod:`repro.response`) can arbitrate which core is actually faulty and
score its verdicts against fault-injection ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: closures injected by the liveness canary layer (:mod:`repro.obs.canary`)
#: are namespaced so detection accounting can keep canary hits out of the
#: organic coverage numbers.
CANARY_PREFIX = "canary."


def is_canary_closure(name: str) -> bool:
    """True for closures injected by the canary scheduler (never organic
    application work)."""
    return name.startswith(CANARY_PREFIX)


@dataclass(frozen=True, slots=True)
class DetectionEvent:
    """One detected silent data corruption."""

    #: ``"checksum"`` (control-path payload corruption), ``"mismatch"``
    #: (data-path re-execution divergence), or ``"rbv"`` (baseline).
    kind: str
    closure: str
    seq: int
    time: float
    detail: str = ""
    #: id of the application core that executed the suspect closure (or the
    #: control-path hop, for checksum events); -1 when unknown.
    app_core: int = -1
    #: id of the validation core whose re-execution diverged; -1 for
    #: checksum events (no re-execution is involved).
    val_core: int = -1

    @property
    def cores(self) -> tuple[int, ...]:
        """The core ids implicated by this event, unknowns filtered out."""
        return tuple(c for c in (self.app_core, self.val_core) if c >= 0)


@dataclass
class DetectionReport:
    """Aggregated detections for one run."""

    events: list[DetectionEvent] = field(default_factory=list)
    #: telemetry anomaly flags (EWMA + z-score hooks in
    #: :class:`repro.obs.slo.SloMonitor`): dicts with ``time``, ``series``,
    #: ``regime`` (e.g. ``validator-starvation``), ``value``, ``zscore``.
    anomalies: list[dict] = field(default_factory=list)

    def record(self, event: DetectionEvent) -> None:
        self.events.append(event)

    def flag_anomaly(
        self, time: float, series: str, regime: str, value: float, zscore: float
    ) -> None:
        """Attach one telemetry anomaly (validator starvation, lag/depth
        spikes) to the run's detection record."""
        self.anomalies.append(
            {
                "time": time,
                "series": series,
                "regime": regime,
                "value": value,
                "zscore": zscore,
            }
        )

    def anomaly_regimes(self) -> dict[str, int]:
        """Anomaly counts keyed by flagged regime."""
        counts: dict[str, int] = {}
        for anomaly in self.anomalies:
            counts[anomaly["regime"]] = counts.get(anomaly["regime"], 0) + 1
        return counts

    @property
    def detected(self) -> bool:
        return bool(self.events)

    @property
    def first(self) -> DetectionEvent | None:
        return self.events[0] if self.events else None

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind == kind)

    def organic_events(self) -> list[DetectionEvent]:
        """Detections of real application work — canary probe hits and
        ``canary.missed`` liveness alarms excluded."""
        return [e for e in self.events if not is_canary_closure(e.closure)]

    def count_organic(self) -> int:
        return len(self.organic_events())

    def by_kind(self) -> dict[str, int]:
        """Event counts keyed by detection mechanism."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def by_closure(self) -> dict[str, int]:
        """Event counts keyed by the closure (or control hop) that fired."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.closure] = counts.get(event.closure, 0) + 1
        return counts

    def by_app_core(self) -> dict[int, int]:
        """Event counts keyed by the implicated application core."""
        counts: dict[int, int] = {}
        for event in self.events:
            counts[event.app_core] = counts.get(event.app_core, 0) + 1
        return counts

    def summary(self) -> dict:
        """JSON-able rollup of the run's detections.

        Keys: ``detected``, ``total``, ``by_kind``, ``by_closure``,
        ``by_app_core`` (core ids stringified for JSON), ``first_time``;
        plus ``anomalies`` (count + per-regime rollup) whenever the
        telemetry anomaly hooks flagged anything.
        """
        first = self.first
        summary = {
            "detected": self.detected,
            "total": len(self.events),
            "by_kind": self.by_kind(),
            "by_closure": self.by_closure(),
            "by_app_core": {str(core): n for core, n in self.by_app_core().items()},
            "first_time": first.time if first is not None else None,
        }
        organic = self.count_organic()
        if organic != len(self.events):
            summary["organic"] = organic
        if self.anomalies:
            summary["anomalies"] = {
                "total": len(self.anomalies),
                "by_regime": self.anomaly_regimes(),
            }
        return summary

    def clear(self) -> None:
        self.events.clear()
        self.anomalies.clear()
