"""Discrete-event simulation substrate: engine, metrics, cost model."""

from repro.sim.costs import CPU_FREQ_HZ, DEFAULT_COSTS, CostModel, cycles_to_seconds
from repro.sim.events import Environment, Event, Process, SimClock, Store, Timeout
from repro.sim.metrics import Histogram, RunMetrics, slowdown

__all__ = [
    "CPU_FREQ_HZ",
    "CostModel",
    "DEFAULT_COSTS",
    "Environment",
    "Event",
    "Histogram",
    "Process",
    "RunMetrics",
    "SimClock",
    "Store",
    "Timeout",
    "cycles_to_seconds",
    "slowdown",
]
