"""Cycle- and time-cost model for the virtual-time experiments.

The absolute numbers do not need to match the paper's testbed — the
*relative* structure does.  The model separates exactly the cost sources
the paper attributes overhead to:

* data-path computation — cycles traced by the simulated machine;
* control-path work — a per-request cycle budget (parsing, dispatch; the
  control path is ~20× the data-path code, §2.2);
* Orthrus bookkeeping — per-closure log creation plus per-version logging
  and OrthrusPtr indirection (the ~4% time overhead of §4.2);
* checksum generation/verification — a few dozen cycles per object (§3.4,
  <1% overhead);
* RBV costs — request serialization, 100 Gbps-class network transfer, and
  dependency-ordered replica execution (§4.1 baselines).

All knobs live in one dataclass so the ablation benchmarks can switch
individual terms off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Xeon Gold 6342-class clock (2.8 GHz).
CPU_FREQ_HZ = 2.8e9


def cycles_to_seconds(cycles: float, freq_hz: float = CPU_FREQ_HZ) -> float:
    return cycles / freq_hz


@dataclass(frozen=True)
class CostModel:
    """Knobs for the virtual-time accounting."""

    freq_hz: float = CPU_FREQ_HZ

    # --- application structure ----------------------------------------
    #: control-path cycles per request (parse/dispatch/respond); the
    #: control path dominates instruction count in real servers.
    control_path_cycles: int = 4000

    # --- Orthrus overheads ---------------------------------------------
    #: per-closure log creation and bookkeeping (cache-locality-aware log
    #: allocator, §3.1)
    log_base_cycles: int = 60
    #: per-version logging (out-of-place copy + log entry)
    log_per_version_cycles: int = 35
    #: OrthrusPtr indirection per tracked load/store
    pointer_indirection_cycles: int = 2
    #: CRC generation/verification: base + per-byte (SSE4.2-class)
    checksum_base_cycles: int = 24
    checksum_cycles_per_byte: float = 0.15

    # --- validator -------------------------------------------------------
    #: dequeue/dispatch per validated log
    validation_dispatch_cycles: int = 1500
    #: extra cycles when the validation core sits on a different NUMA node
    #: than the APP core that produced the log: the closure log and its
    #: versions miss the shared L3 and cross the interconnect (§3.5's
    #: rationale for same-socket placement)
    cross_numa_penalty_cycles: int = 1200
    #: result comparison per output byte (bitwise memcmp)
    compare_cycles_per_byte: float = 0.12
    #: sampler decision for a skipped log
    skip_cycles: int = 40

    # --- RBV baseline -----------------------------------------------------
    #: one-way network latency between primary and replica (InfiniBand-class)
    network_latency_s: float = 5e-6
    #: network bandwidth for forwarded requests/results
    network_bandwidth_bps: float = 100e9
    #: serialization cycles per byte forwarded to the replica
    serialize_cycles_per_byte: float = 0.8
    #: per-request replication bookkeeping on the primary (batching,
    #: ordering, ack tracking) — RBV burns ~43% of CPU on communication
    rbv_primary_overhead_cycles: int = 2400
    #: requests per replication batch
    rbv_batch_size: int = 16
    #: maximum primary-to-replica lag (requests) before the primary stalls
    #: (bounded replication queue: the backpressure that creates RBV's
    #: 1000x tail latencies)
    rbv_max_lag: int = 256

    # ------------------------------------------------------------------
    def seconds(self, cycles: float) -> float:
        return cycles / self.freq_hz

    def network_transfer_s(self, payload_bytes: int) -> float:
        return self.network_latency_s + payload_bytes * 8 / self.network_bandwidth_bps

    def checksum_cycles(self, payload_bytes: int) -> float:
        return self.checksum_base_cycles + self.checksum_cycles_per_byte * payload_bytes

    def without_checksums(self) -> "CostModel":
        return replace(self, checksum_base_cycles=0, checksum_cycles_per_byte=0.0)


#: Default model used by the benchmark harness.
DEFAULT_COSTS = CostModel()
