"""A minimal discrete-event simulation engine.

The paper's performance results (Figs 6–8) are wall-clock measurements on a
Xeon cluster.  Measuring a Python reimplementation with wall clocks would
say more about CPython than about Orthrus, so the benchmark harness runs
application threads, validator threads, and the RBV replica as *processes*
in virtual time on this engine (see DESIGN.md §2).

The engine is a deliberately small simpy-like core:

* :class:`Environment` — the event loop and virtual clock;
* :class:`Event` / :class:`Timeout` — one-shot triggers;
* :class:`Process` — a generator that yields events to wait on;
* :class:`Store` — an unbounded FIFO channel with blocking ``get``.

Determinism: ties in time are broken by schedule order, so a seeded
workload always produces the same trace.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_triggered", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiters."""
        if self._triggered or self._scheduled:
            raise SimulationError("event triggered twice")
        self._value = value
        self.env._schedule(self, delay=0.0)
        return self

    # internal: called by the environment when the event fires
    def _fire(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(env)
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Drives a generator; itself an event that fires when the generator
    returns (with the return value as the event value)."""

    __slots__ = ("_generator",)

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        self._generator = generator
        # Bootstrap on the next tick so creation order is fair.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        env._schedule(bootstrap, delay=0.0)

    def _resume(self, trigger: Event) -> None:
        try:
            target = self._generator.send(trigger.value)
        except StopIteration as stop:
            self._value = stop.value
            self.env._schedule(self, delay=0.0)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}; processes must "
                "yield Event/Timeout/Store.get objects"
            )
        if target.triggered:
            # Already fired: resume immediately on the next tick.
            immediate = Event(self.env)
            immediate._value = target.value
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate, delay=0.0)
        else:
            target.callbacks.append(self._resume)


class Store:
    """Unbounded FIFO channel between processes."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Environment:
    """The virtual clock and event queue."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._eid = 0
        #: engine events retired by step(); feeds the wall-clock
        #: events/sec throughput meter (repro.obs.profiling)
        self.events_processed = 0
        #: optional self-profiler set by a driver; the engine stays
        #: dependency-free — anything with now()/lap() works, None is off
        self.profiler = None

    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        self._eid += 1
        prof = self.profiler
        if prof is not None:
            t0 = prof.now()
            heapq.heappush(self._heap, (self.now + delay, self._eid, event))
            prof.lap("sim.queue.push", t0)
        else:
            heapq.heappush(self._heap, (self.now + delay, self._eid, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def store(self) -> Store:
        return Store(self)

    # ------------------------------------------------------------------
    def step(self) -> None:
        prof = self.profiler
        if prof is not None:
            t0 = prof.now()
            when, _, event = heapq.heappop(self._heap)
            prof.lap("sim.queue.pop", t0)
        else:
            when, _, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time ran backwards")
        self.now = when
        self.events_processed += 1
        event._fire()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap empties, time passes ``until``, or the given
        event fires (returning its value)."""
        if isinstance(until, Event):
            target = until
            while not target.triggered:
                if not self._heap:
                    raise SimulationError(
                        "simulation deadlocked before target event fired"
                    )
                self.step()
            return target.value
        horizon = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        if until is not None:
            self.now = max(self.now, horizon) if self.now < horizon else self.now
        return None

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every given event has fired."""
        events = list(events)
        done = self.event()
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        results: list[Any] = [None] * remaining

        def make_callback(index: int):
            def callback(event: Event) -> None:
                nonlocal remaining
                results[index] = event.value
                remaining -= 1
                if remaining == 0:
                    done.succeed(results)

            return callback

        for index, event in enumerate(events):
            if event.triggered:
                results[index] = event.value
                remaining -= 1
            else:
                event.callbacks.append(make_callback(index))
        if remaining == 0 and not done.triggered and not done._scheduled:
            done.succeed(results)
        return done


class SimClock:
    """Adapts an :class:`Environment` to the :class:`repro.clock.Clock`
    protocol so the heap, sampler, and validator see virtual time."""

    def __init__(self, env: Environment):
        self._env = env

    def now(self) -> float:
        return self._env.now
