"""Measurement helpers for the benchmark harness.

Latency distributions (Fig 7's p95, Fig 8's validation-latency CDFs) and
throughput counters, kept dependency-light (numpy only for percentiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


class Histogram:
    """Accumulates samples; answers mean/percentile/min/max queries."""

    def __init__(self):
        self._values: list[float] = []

    def add(self, value: float) -> None:
        self._values.append(value)

    def extend(self, values) -> None:
        self._values.extend(values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return float(np.mean(self._values))

    def percentile(self, p: float) -> float:
        """The p-th percentile (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, p))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass
class RunMetrics:
    """Everything one simulated run reports."""

    #: completed operations (requests / tasks)
    operations: int = 0
    #: virtual seconds elapsed
    duration: float = 0.0
    #: per-request latency (virtual seconds)
    request_latency: Histogram = field(default_factory=Histogram)
    #: closure-validation latency: closure completion → validation done
    validation_latency: Histogram = field(default_factory=Histogram)
    #: peak versioned-heap footprint in bytes (Orthrus memory accounting)
    peak_versioned_bytes: int = 0
    #: peak vanilla (live-only) footprint in bytes
    peak_live_bytes: int = 0
    #: logs validated / skipped by the sampler
    validated: int = 0
    skipped: int = 0
    #: SDC detections flagged during the run
    detections: int = 0

    @property
    def throughput(self) -> float:
        """Operations per virtual second."""
        if self.duration <= 0:
            return 0.0
        return self.operations / self.duration

    @property
    def memory_overhead(self) -> float:
        """Peak versioned footprint relative to the vanilla footprint."""
        if self.peak_live_bytes == 0:
            return 0.0
        return self.peak_versioned_bytes / self.peak_live_bytes - 1.0

    @property
    def sampling_fraction(self) -> float:
        total = self.validated + self.skipped
        if total == 0:
            return 1.0
        return self.validated / total


def slowdown(vanilla_throughput: float, system_throughput: float) -> float:
    """Relative time overhead of a system versus vanilla (0.04 = 4%)."""
    if system_throughput <= 0:
        return math.inf
    return vanilla_throughput / system_throughput - 1.0
